"""Tests for wrapper JSON persistence."""

import json

import pytest

from repro.annotation.annotator import annotate_page
from repro.errors import WrapperError, WrapperSchemaError
from repro.sod.dsl import parse_sod
from repro.wrapper.extraction import extract_objects
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.serialize import wrapper_from_dict, wrapper_to_dict

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


@pytest.fixture()
def wrapped(figure3_pages, figure3_recognizers):
    for page in figure3_pages:
        annotate_page(page, figure3_recognizers)
    wrapper = generate_wrapper("figure3", figure3_pages, SOD, WrapperConfig(support=2))
    return wrapper, figure3_pages


class TestRoundtrip:
    def test_json_serializable(self, wrapped):
        wrapper, __ = wrapped
        payload = json.dumps(wrapper_to_dict(wrapper))
        assert "figure3" in payload

    def test_roundtrip_preserves_template(self, wrapped):
        wrapper, __ = wrapped
        restored = wrapper_from_dict(
            json.loads(json.dumps(wrapper_to_dict(wrapper)))
        )
        assert restored.template.describe() == wrapper.template.describe()
        assert restored.record_tag == wrapper.record_tag
        assert restored.record_path == wrapper.record_path
        assert restored.match.entity_to_slots == wrapper.match.entity_to_slots

    def test_restored_wrapper_extracts_identically(self, wrapped):
        wrapper, pages = wrapped
        restored = wrapper_from_dict(wrapper_to_dict(wrapper))
        original_objects = extract_objects(wrapper, pages)
        restored_objects = extract_objects(restored, pages)
        assert [o.values for o in original_objects] == [
            o.values for o in restored_objects
        ]

    def test_sod_roundtrips(self, wrapped):
        wrapper, __ = wrapped
        restored = wrapper_from_dict(wrapper_to_dict(wrapper))
        assert str(restored.sod) == str(wrapper.sod)

    def test_annotation_stats_preserved(self, wrapped):
        wrapper, __ = wrapped
        restored = wrapper_from_dict(wrapper_to_dict(wrapper))
        original_slots = {s.slot_id: s for s in wrapper.template.field_slots()}
        for slot in restored.template.field_slots():
            original = original_slots[slot.slot_id]
            assert slot.annotation_counts == original.annotation_counts
            assert slot.dominant_annotation() == original.dominant_annotation()


class TestVersioning:
    def test_unknown_version_rejected(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        data["version"] = 999
        with pytest.raises(WrapperError):
            wrapper_from_dict(data)

    def test_unknown_node_kind_rejected(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        data["template"]["roots"][0] = {"kind": "mystery"}
        with pytest.raises(WrapperError):
            wrapper_from_dict(data)


class TestMalformedInput:
    """wrapper_from_dict raises typed schema errors, never bare KeyError."""

    def test_non_object_rejected(self):
        with pytest.raises(WrapperSchemaError):
            wrapper_from_dict(["not", "a", "dict"])

    def test_missing_version_rejected(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        del data["version"]
        with pytest.raises(WrapperSchemaError):
            wrapper_from_dict(data)

    def test_missing_top_level_field_is_schema_error(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        del data["template"]
        with pytest.raises(WrapperSchemaError) as excinfo:
            wrapper_from_dict(data)
        assert "template" in str(excinfo.value)

    def test_missing_node_field_is_schema_error(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        del data["template"]["roots"][0]["tag"]
        with pytest.raises(WrapperSchemaError):
            wrapper_from_dict(data)

    def test_non_dict_node_is_schema_error(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        data["template"]["roots"][0] = "not a node"
        with pytest.raises(WrapperSchemaError):
            wrapper_from_dict(data)

    def test_schema_error_is_a_wrapper_error(self):
        assert issubclass(WrapperSchemaError, WrapperError)


class TestUnknownKeys:
    """Forward-schema drift is surfaced, naming every unknown key."""

    def test_unknown_top_level_keys_all_named(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        data["zz_later"] = 1
        data["aa_earlier"] = 2
        with pytest.raises(WrapperSchemaError) as excinfo:
            wrapper_from_dict(data)
        message = str(excinfo.value)
        assert "'aa_earlier'" in message and "'zz_later'" in message
        assert message.index("'aa_earlier'") < message.index("'zz_later'")

    @pytest.mark.parametrize("section", ["template", "match", "record"])
    def test_unknown_section_keys_rejected(self, wrapped, section):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        data[section]["mystery"] = True
        with pytest.raises(WrapperSchemaError) as excinfo:
            wrapper_from_dict(data)
        assert "mystery" in str(excinfo.value)
        assert section in str(excinfo.value)

    def test_unknown_node_keys_rejected_per_kind(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        node = data["template"]["roots"][0]
        node["mystery_attr"] = "x"
        with pytest.raises(WrapperSchemaError) as excinfo:
            wrapper_from_dict(data)
        assert "mystery_attr" in str(excinfo.value)
        assert f"{node['kind']} node" in str(excinfo.value)

    def test_clean_payload_still_roundtrips(self, wrapped):
        wrapper, __ = wrapped
        data = wrapper_to_dict(wrapper)
        restored = wrapper_from_dict(json.loads(json.dumps(data)))
        assert wrapper_to_dict(restored) == data
