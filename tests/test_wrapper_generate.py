"""Tests for wrapper generation end to end (Figure 3 and gates)."""

import pytest

from repro.annotation.annotator import annotate_page
from repro.errors import SourceDiscardedError
from repro.htmlkit.tidy import tidy
from repro.sod.dsl import parse_sod
from repro.wrapper.generate import WrapperConfig, generate_wrapper


CONCERT_SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


@pytest.fixture()
def annotated_figure3(figure3_pages, figure3_recognizers):
    for page in figure3_pages:
        annotate_page(page, figure3_recognizers)
    return figure3_pages


class TestFigure3Wrapper:
    def test_record_identity(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        assert wrapper.record_tag == "li"
        assert wrapper.record_single_element

    def test_sod_fully_matched(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        assert wrapper.match.matched
        assert set(wrapper.match.entity_to_slots) == {
            "artist",
            "date",
            "theater",
            "address",
        }

    def test_template_mirrors_figure3b(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        description = wrapper.template.describe()
        assert 'type="artist"' in description
        assert 'type="date"' in description
        assert 'type="theater"' in description
        # City/state are constants of the template.
        assert "'New York City'" in description

    def test_address_spans_merged(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        assert len(wrapper.match.entity_to_slots["address"]) == 2  # street + zip

    def test_annotation_types_recorded(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        assert {"artist", "date", "theater", "address"} <= wrapper.annotation_types_seen

    def test_segment_page_finds_all_records(self, annotated_figure3):
        wrapper = generate_wrapper(
            "figure3", annotated_figure3, CONCERT_SOD, WrapperConfig(support=2)
        )
        counts = [len(wrapper.segment_page(page)) for page in annotated_figure3]
        assert counts == [1, 1, 2]


class TestGates:
    def test_unstructured_source_discarded(self):
        pages = [
            tidy("<body><p>just prose, nothing structured</p></body>"),
            tidy("<body><div><span>something else entirely</span></div></body>"),
        ]
        with pytest.raises(SourceDiscardedError) as excinfo:
            generate_wrapper("blog", pages, CONCERT_SOD, WrapperConfig(support=2))
        assert excinfo.value.stage == "wrapper"

    def test_unmatchable_sod_discarded(self, figure3_pages):
        # Structured pages but zero annotations: no partial matching can
        # ever complete.
        with pytest.raises(SourceDiscardedError):
            generate_wrapper(
                "figure3", figure3_pages, CONCERT_SOD, WrapperConfig(support=2)
            )

    def test_annotation_blind_mode_skips_gate(self, figure3_pages):
        wrapper = generate_wrapper(
            "figure3",
            figure3_pages,
            CONCERT_SOD,
            WrapperConfig(support=2, use_annotations=False),
        )
        assert wrapper.template.field_slots()  # structure inferred anyway

    def test_enforce_match_raises_on_partial(self, figure3_pages, figure3_recognizers):
        # Annotate with only the artist recognizer: theater/date missing.
        for page in figure3_pages:
            annotate_page(page, figure3_recognizers[:1])
        with pytest.raises(SourceDiscardedError):
            generate_wrapper(
                "figure3",
                figure3_pages,
                CONCERT_SOD,
                WrapperConfig(support=2, enforce_match=True),
            )
