"""Outputs are byte-identical across PYTHONHASHSEED values.

Set and dict iteration order over strings depends on the interpreter's
hash seed, so any code path that lets a bare set ordering leak into its
output produces different bytes run-to-run.  The reprolint D103 rule
catches these statically; this test catches them dynamically by running
the audited modules — the synthetic site generator and the simulated
Turk selection — in subprocesses with different hash seeds and comparing
digests of everything they produce.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DIGEST_SCRIPT = """
import hashlib

from repro.datasets import domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.turk.selection import select_catalog_sources

digest = hashlib.sha256()

spec = SiteSpec(
    name="seedcheck-albums",
    domain="albums",
    archetype="mixed_structure",
    total_objects=40,
    seed=("seedcheck", 1),
)
source = generate_source(spec, domain_spec("albums"))
for page in source.pages:
    digest.update(page.encode("utf-8"))
for gold in source.gold:
    digest.update(str(gold.page_index).encode("utf-8"))
    for key in sorted(gold.flat):
        digest.update(f"{key}={gold.flat[key]}".encode("utf-8"))

selected, campaign = select_catalog_sources("albums", scale=0.05, workers=5)
for entry in selected:
    digest.update(entry.spec.name.encode("utf-8"))
for name in campaign.selected:
    digest.update(name.encode("utf-8"))

print(digest.hexdigest())
"""


def run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_sites_and_turk_selection_stable_across_hash_seeds():
    digests = {run_with_hashseed(seed) for seed in ("0", "1", "4242")}
    assert len(digests) == 1, f"hash-seed dependent output: {digests}"
