"""Outputs are byte-identical across PYTHONHASHSEED values.

Set and dict iteration order over strings depends on the interpreter's
hash seed, so any code path that lets a bare set ordering leak into its
output produces different bytes run-to-run.  The reprolint D103 rule
catches these statically; this test catches them dynamically by running
the audited modules — the synthetic site generator and the simulated
Turk selection — in subprocesses with different hash seeds and comparing
digests of everything they produce.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DIGEST_SCRIPT = """
import hashlib

from repro.datasets import domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.turk.selection import select_catalog_sources

digest = hashlib.sha256()

spec = SiteSpec(
    name="seedcheck-albums",
    domain="albums",
    archetype="mixed_structure",
    total_objects=40,
    seed=("seedcheck", 1),
)
source = generate_source(spec, domain_spec("albums"))
for page in source.pages:
    digest.update(page.encode("utf-8"))
for gold in source.gold:
    digest.update(str(gold.page_index).encode("utf-8"))
    for key in sorted(gold.flat):
        digest.update(f"{key}={gold.flat[key]}".encode("utf-8"))

selected, campaign = select_catalog_sources("albums", scale=0.05, workers=5)
for entry in selected:
    digest.update(entry.spec.name.encode("utf-8"))
for name in campaign.selected:
    digest.update(name.encode("utf-8"))

print(digest.hexdigest())
"""


WRAPPER_ROUNDTRIP_SCRIPT = """
import hashlib
import json
from collections import Counter

from repro.sod.dsl import parse_sod
from repro.wrapper.generate import Wrapper
from repro.wrapper.matching import MatchResult
from repro.wrapper.serialize import wrapper_from_dict, wrapper_to_dict
from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
    Template,
)

# One wrapper exercising every node kind (field, static, iterator,
# element) plus the set/Counter-typed fields whose iteration order is
# hash-seed sensitive.
title = FieldSlot(slot_id=0)
title.annotation_counts = Counter({"title": 3, "artist": 1})
title.occurrences = 7
title.examples = ["Kind of Blue", "A Love Supreme"]
artist = FieldSlot(slot_id=1)
artist.annotation_counts = Counter({"artist": 5})
artist.optional = True
row = ElementTemplate(
    tag="li",
    attr_class="row",
    children=[StaticSlot(text="by "), artist],
)
template = Template(
    roots=[title, IteratorSlot(slot_id=2, unit=row, max_repeats=4)],
    conflicts=1,
    sample_records=9,
)
wrapper = Wrapper(
    source="hashseed-check",
    sod=parse_sod("album(title, artist<kind=predefined>?)"),
    template=template,
    match=MatchResult(
        entity_to_slots={"title": [0], "artist": [1]},
        set_to_iterator={"tracks": 2},
        matched=True,
    ),
    record_tag="li",
    record_path="html/body/ul/li",
    record_class_attr="row",
    record_single_element=False,
    is_list_source=True,
    support=3,
    annotation_types_seen={"title", "artist", "date"},
)

once = json.dumps(wrapper_to_dict(wrapper))
twice = json.dumps(wrapper_to_dict(wrapper_from_dict(json.loads(once))))
assert once == twice, "wrapper -> dict -> wrapper -> dict is not a fixpoint"
print(hashlib.sha256(once.encode("utf-8")).hexdigest())
"""


SHARDED_RUN_SCRIPT = """
import hashlib
import json
import tempfile
from pathlib import Path

from repro.core import ObjectRunner, RunParams, ShardSpec
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.metrics import MetricsObserver
from repro.metrics.bench import (
    BenchConfig,
    BenchSession,
    bench_digest,
    merge_documents,
)
from repro.registry.store import WrapperRegistry

digest = hashlib.sha256()
domain = domain_spec("albums")
knowledge = build_knowledge(domain, coverage=0.25)
sources = {}
for index in range(4):
    spec = SiteSpec(
        name=f"hs-{index}",
        domain="albums",
        archetype="clean",
        total_objects=8,
        seed=("hashseed-shard", index),
    )
    sources[spec.name] = generate_source(spec, domain).pages


def run(backend, workers, shard=None, root=None):
    observer = MetricsObserver()
    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(max_workers=workers, backend=backend, shard=shard),
        observers=(observer,),
        wrapper_registry=WrapperRegistry(root) if root else None,
    )
    return runner.run_sources(sources), observer


def values(outcome):
    return {
        name: [o.values for o in result.objects]
        for name, result in outcome.results.items()
    }


with tempfile.TemporaryDirectory() as tmp:
    # Every backend leaves identical objects, counters and registry bytes.
    for label, backend, workers in (
        ("serial", "thread", 1),
        ("thread", "thread", 4),
        ("process", "process", 4),
    ):
        root = Path(tmp) / label
        outcome, observer = run(backend, workers, root=root)
        digest.update(json.dumps(values(outcome), sort_keys=True).encode())
        digest.update(
            json.dumps(
                observer.merged_registry().counters_snapshot(),
                sort_keys=True,
            ).encode()
        )
        digest.update((root / "index.json").read_bytes())

# A 2-way shard split covers the batch exactly once and reproduces it.
full, __ = run("thread", 1)
union = {}
for index in range(2):
    part, __ = run("thread", 1, shard=ShardSpec(index=index, count=2))
    for name in union:
        assert name not in values(part), "shard overlap"
    union.update(values(part))
assert union == values(full), "shard union differs from full run"
digest.update(json.dumps(union, sort_keys=True).encode())

# Sharded bench captures merge digest-identically to the unsharded one.
base = dict(scale=0.02, systems=("objectrunner",))
unsharded = BenchSession(BenchConfig(**base)).capture()
parts = [
    BenchSession(
        BenchConfig(shard=ShardSpec(index=index, count=2), **base)
    ).capture()
    for index in range(2)
]
merged = merge_documents(parts)
assert bench_digest(merged) == bench_digest(unsharded), "merge digest drift"
digest.update(bench_digest(unsharded).encode())

print(digest.hexdigest())
"""


def run_with_hashseed(seed: str, script: str = DIGEST_SCRIPT) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_sites_and_turk_selection_stable_across_hash_seeds():
    digests = {run_with_hashseed(seed) for seed in ("0", "1", "4242")}
    assert len(digests) == 1, f"hash-seed dependent output: {digests}"


def test_wrapper_roundtrip_bytes_stable_across_hash_seeds():
    """to_dict∘from_dict∘to_dict is a byte-level fixpoint, any hash seed.

    The wrapper covers all four template node kinds; the in-process
    fixpoint assertion runs inside each subprocess, and the digests of
    the serialized bytes must agree across seeds.
    """
    digests = {
        run_with_hashseed(seed, WRAPPER_ROUNDTRIP_SCRIPT)
        for seed in ("0", "1", "4242")
    }
    assert len(digests) == 1, f"hash-seed dependent wrapper bytes: {digests}"


def test_sharded_runs_byte_identical_across_hash_seeds():
    """The full sharding contract holds under every hash seed.

    Each subprocess asserts in-process that serial, thread and process
    backends produce identical objects, metrics counters and registry
    index bytes; that a 2-way shard split reproduces the full run; and
    that merged per-shard bench captures digest-equal the unsharded
    capture.  The subprocess digests must then agree across seeds, so
    none of those bytes depend on PYTHONHASHSEED either.
    """
    digests = {
        run_with_hashseed(seed, SHARDED_RUN_SCRIPT)
        for seed in ("0", "1", "4242")
    }
    assert len(digests) == 1, f"hash-seed dependent sharded run: {digests}"
