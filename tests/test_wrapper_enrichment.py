"""Tests for dictionary enrichment (Eq. 4)."""

import pytest

from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.sod.dsl import parse_sod
from repro.wrapper.enrichment import enrich_dictionary, wrapper_score
from repro.wrapper.generate import Wrapper
from repro.wrapper.matching import MatchResult
from repro.wrapper.template import ElementTemplate, FieldSlot, Template


def make_wrapper(conflicts=0, slots=4):
    fields = [FieldSlot(slot_id=i) for i in range(slots)]
    template = Template(
        roots=[ElementTemplate(tag="li", children=list(fields))],
        conflicts=conflicts,
    )
    return Wrapper(
        source="s",
        sod=parse_sod("t(x)"),
        template=template,
        match=MatchResult(matched=True),
        record_tag="li",
        record_path="html/body/li",
        record_class_attr="",
        record_single_element=True,
        is_list_source=True,
        support=3,
        conflicts=conflicts,
    )


class TestWrapperScore:
    def test_clean_wrapper_scores_one(self):
        assert wrapper_score(make_wrapper(conflicts=0)) == 1.0

    def test_conflicts_lower_score(self):
        assert wrapper_score(make_wrapper(conflicts=2, slots=4)) == 0.5

    def test_never_negative(self):
        assert wrapper_score(make_wrapper(conflicts=10, slots=2)) == 0.0


class TestEnrichment:
    def test_new_values_added_with_good_wrapper(self):
        gazetteer = GazetteerRecognizer("artist", {"Muse": 0.9})
        result = enrich_dictionary(
            gazetteer, ["Muse", "Coldplay", "Radiohead"], make_wrapper()
        )
        assert "Coldplay" in gazetteer
        assert "Radiohead" in gazetteer
        assert set(result.added) == {"Coldplay", "Radiohead"}

    def test_overlap_raises_confidence(self):
        gazetteer = GazetteerRecognizer("artist", {"Muse": 0.9, "Blur": 0.9})
        result = enrich_dictionary(
            gazetteer, ["Muse", "Blur", "New Act"], make_wrapper()
        )
        assert result.overlap > 0.5

    def test_bad_wrapper_no_overlap_blocks_additions(self):
        gazetteer = GazetteerRecognizer("artist", {})
        bad = make_wrapper(conflicts=4, slots=4)  # wrapper score 0
        result = enrich_dictionary(
            gazetteer, ["Mystery Value"], bad, min_confidence=0.4
        )
        assert result.added == {}
        assert "Mystery Value" not in gazetteer

    def test_existing_values_updated(self):
        gazetteer = GazetteerRecognizer("artist", {"Muse": 0.4})
        result = enrich_dictionary(gazetteer, ["Muse"], make_wrapper())
        assert gazetteer.confidence_of("Muse") > 0.4
        assert "Muse" in result.updated

    def test_empty_values_noop(self):
        gazetteer = GazetteerRecognizer("artist", {"Muse": 0.9})
        result = enrich_dictionary(gazetteer, ["", "  "], make_wrapper())
        assert result.added == {}
        assert len(gazetteer) == 1

    def test_scores_bounded(self):
        gazetteer = GazetteerRecognizer("artist", {"A": 1.0})
        result = enrich_dictionary(gazetteer, ["A", "B"], make_wrapper())
        assert 0.0 <= result.score <= 1.0
        for confidence in gazetteer.entries().values():
            assert 0.0 < confidence <= 1.0
