"""Unit tests for the resilience layer: retry policy, fault injection.

Everything here runs on tiny hand-built pipelines with an injected fake
sleep — the suite never spends wall-clock time on a backoff.
"""

import io
import json

import pytest

from repro.core.faults import (
    CRASH,
    DELAY,
    FAIL_FAST,
    FAILURE_POLICIES,
    ISOLATE,
    TRANSIENT,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    SourceFailure,
)
from repro.core.params import RunParams
from repro.core.pipeline import (
    Pipeline,
    PipelineContext,
    Stage,
    StageEventCollector,
    TraceObserver,
)
from repro.errors import InjectedFaultError, TransientSourceError


class FakeSleep:
    """Records requested delays instead of sleeping."""

    def __init__(self):
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(seconds)


class CountingStage(Stage):
    name = "counting"

    def __init__(self):
        self.runs = 0

    def run(self, ctx):
        self.runs += 1
        ctx.count("stage_runs")


class FlakyStage(Stage):
    """Raises TransientSourceError on the first ``failures`` attempts."""

    name = "flaky"

    def __init__(self, failures):
        self.failures = failures
        self.runs = 0

    def run(self, ctx):
        self.runs += 1
        if self.runs <= self.failures:
            raise TransientSourceError(f"flaky attempt {self.runs}")
        ctx.count("flaky_done")


def make_ctx(source="unit", **params):
    return PipelineContext(source=source, params=RunParams(**params), sod={})


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=0.1, backoff_factor=2.0,
            max_delay=0.5, jitter=0.0,
        )
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.1, jitter=0.25, seed=9)
        first = [policy.delay(a, "src", "wrapping") for a in (1, 2, 3)]
        second = [policy.delay(a, "src", "wrapping") for a in (1, 2, 3)]
        assert first == second
        for attempt, delay in zip((1, 2, 3), first):
            base = min(0.1 * 2.0 ** (attempt - 1), policy.max_delay)
            assert base * 0.75 <= delay <= base * 1.25

    def test_jitter_varies_by_source_and_stage(self):
        policy = RetryPolicy(max_retries=1, jitter=0.5)
        assert policy.delay(1, "a", "s") != policy.delay(1, "b", "s")
        assert policy.delay(1, "a", "s") != policy.delay(1, "a", "t")

    def test_max_attempts_counts_first_try(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(max_retries=2).max_attempts == 3

    def test_from_params(self):
        policy = RetryPolicy.from_params(RunParams(max_retries=4))
        assert policy.max_retries == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(base_delay=-0.1),
            dict(backoff_factor=0.5),
            dict(jitter=1.5),
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestFailurePolicies:
    def test_policy_constants(self):
        assert FAIL_FAST in FAILURE_POLICIES
        assert ISOLATE in FAILURE_POLICIES

    def test_run_params_validates_policy(self):
        with pytest.raises(ValueError, match="failure_policy"):
            RunParams(failure_policy="retry-forever")


class TestSourceFailure:
    def test_from_marked_exception(self):
        exc = RuntimeError("boom")
        exc.repro_stage = "wrapping"
        exc.repro_attempts = 3
        failure = SourceFailure.from_exception("siteA", exc)
        assert failure.source == "siteA"
        assert failure.stage == "wrapping"
        assert failure.error == "RuntimeError: boom"
        assert failure.attempts == 3
        assert failure.exception is exc

    def test_from_unmarked_exception(self):
        failure = SourceFailure.from_exception("siteA", ValueError("bad"))
        assert failure.stage == ""
        assert failure.attempts == 1


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(stage="wrapping", kind="explode")

    def test_rejects_empty_stage(self):
        with pytest.raises(ValueError, match="stage"):
            FaultSpec(stage="")

    def test_source_wildcard(self):
        spec = FaultSpec(stage="wrapping")
        assert spec.matches("anything", "wrapping")
        assert not spec.matches("anything", "annotation")
        pinned = FaultSpec(stage="wrapping", source="siteA")
        assert pinned.matches("siteA", "wrapping")
        assert not pinned.matches("siteB", "wrapping")


class TestPipelineRetries:
    def test_transient_failure_retried_to_success(self):
        stage = FlakyStage(failures=1)
        sleep = FakeSleep()
        collector = StageEventCollector()
        pipeline = Pipeline(
            stages=[stage], observers=(collector,), sleep=sleep
        )
        result = pipeline.run(make_ctx(max_retries=1))
        assert stage.runs == 2
        assert not result.discarded
        assert collector.stage_retries("flaky") == 1
        assert len(sleep.calls) == 1

    def test_retry_delays_follow_policy(self):
        stage = FlakyStage(failures=2)
        sleep = FakeSleep()
        policy = RetryPolicy(max_retries=2, base_delay=0.1, jitter=0.2, seed=4)
        pipeline = Pipeline(stages=[stage], retry_policy=policy, sleep=sleep)
        pipeline.run(make_ctx(source="flaky-src"))
        expected = [
            policy.delay(a, source="flaky-src", stage="flaky") for a in (1, 2)
        ]
        assert sleep.calls == expected

    def test_exhausted_retries_raise_with_stamps(self):
        stage = FlakyStage(failures=5)
        sleep = FakeSleep()
        pipeline = Pipeline(stages=[stage], sleep=sleep)
        with pytest.raises(TransientSourceError) as excinfo:
            pipeline.run(make_ctx(max_retries=2))
        assert stage.runs == 3
        assert excinfo.value.repro_stage == "flaky"
        assert excinfo.value.repro_attempts == 3
        assert len(sleep.calls) == 2

    def test_zero_retries_is_the_default(self):
        stage = FlakyStage(failures=1)
        pipeline = Pipeline(stages=[stage], sleep=FakeSleep())
        with pytest.raises(TransientSourceError):
            pipeline.run(make_ctx())
        assert stage.runs == 1

    def test_retry_events_in_trace(self):
        sink = io.StringIO()
        stage = FlakyStage(failures=1)
        pipeline = Pipeline(
            stages=[stage], observers=(TraceObserver(sink),), sleep=FakeSleep()
        )
        pipeline.run(make_ctx(max_retries=1))
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        [retry] = [e for e in events if e["event"] == "stage_retry"]
        assert retry["stage"] == "flaky"
        assert retry["attempt"] == 1
        assert retry["retry_delay_s"] > 0
        assert "flaky attempt 1" in retry["error"]
        # The run still closes normally after the successful retry.
        assert events[-1]["event"] == "pipeline_end"
        assert "error" not in events[-1]


class TestFaultInjector:
    def run_pipeline(self, injector, stage=None, **params):
        stage = stage or CountingStage()
        pipeline = Pipeline(
            stages=injector.wrap_all([stage]),
            observers=(injector,),
            sleep=FakeSleep(),
        )
        return stage, pipeline.run(make_ctx(**params))

    def test_crash_fault_raises_injected_error(self):
        injector = FaultInjector(
            [FaultSpec(stage="counting", kind=CRASH)], sleep=FakeSleep()
        )
        stage = CountingStage()
        pipeline = Pipeline(
            stages=injector.wrap_all([stage]), sleep=FakeSleep()
        )
        with pytest.raises(InjectedFaultError):
            pipeline.run(make_ctx())
        assert stage.runs == 0  # fault fires before the stage body
        assert injector.fired == [("unit", "counting", "crash", 1)]

    def test_transient_fault_consumed_by_retry(self):
        injector = FaultInjector(
            [FaultSpec(stage="counting", kind=TRANSIENT, times=1)],
            sleep=FakeSleep(),
        )
        stage, result = self.run_pipeline(injector, max_retries=1)
        assert stage.runs == 1
        assert not result.discarded
        assert [e.attempt for e in injector.retries_observed] == [1]

    def test_delay_fault_uses_injected_sleep(self):
        sleep = FakeSleep()
        injector = FaultInjector(
            [FaultSpec(stage="counting", kind=DELAY, delay=9.5)], sleep=sleep
        )
        stage, result = self.run_pipeline(injector)
        assert stage.runs == 1
        assert sleep.calls == [9.5]

    def test_times_budget_limits_firing(self):
        injector = FaultInjector(
            [FaultSpec(stage="counting", kind=TRANSIENT, times=2)],
            sleep=FakeSleep(),
        )
        stage, result = self.run_pipeline(injector, max_retries=5)
        assert stage.runs == 1
        assert injector.attempts("unit", "counting") == 3
        assert len(injector.fired) == 2

    def test_seeded_probability_is_reproducible(self):
        def fired_pattern(seed):
            injector = FaultInjector(
                [
                    FaultSpec(
                        stage="counting",
                        kind=TRANSIENT,
                        times=50,
                        probability=0.5,
                    )
                ],
                seed=seed,
                sleep=FakeSleep(),
            )
            pipeline = Pipeline(
                stages=injector.wrap_all([CountingStage()]),
                sleep=FakeSleep(),
            )
            try:
                pipeline.run(make_ctx(max_retries=30))
            except TransientSourceError:
                pass
            return [entry[3] for entry in injector.fired]

        assert fired_pattern(7) == fired_pattern(7)
        assert fired_pattern(7) != fired_pattern(8)

    def test_wrapper_preserves_stage_surface(self):
        stage = CountingStage()
        stage.timing_field = "annotation"
        stage.reads = ("pages",)
        stage.writes = ("result",)
        wrapped = FaultInjector(sleep=FakeSleep()).wrap(stage)
        assert wrapped.name == "counting"
        assert wrapped.timing_field == "annotation"
        assert wrapped.reads == ("pages",)
        assert wrapped.writes == ("result",)
