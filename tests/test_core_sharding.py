"""Deterministic hash-mod sharding of the source-id space."""

import pytest

from repro.core.sharding import ShardSpec, stable_shard


class TestStableShard:
    def test_pinned_values(self):
        # sha256-based, so these are platform- and seed-independent
        # constants; a change here is a wire-format break.
        assert stable_shard("zvents-detail", 4) == 2
        assert stable_shard("zvents-list", 4) == 3
        assert stable_shard("amazon-books", 4) == 2

    def test_single_shard_takes_everything(self):
        assert stable_shard("anything", 1) == 0

    def test_range(self):
        names = [f"src-{i}" for i in range(200)]
        for count in (1, 2, 3, 7):
            assert all(0 <= stable_shard(name, count) < count for name in names)

    def test_all_shards_populated(self):
        names = [f"src-{i}" for i in range(200)]
        for count in (2, 4, 8):
            hit = {stable_shard(name, count) for name in names}
            assert hit == set(range(count))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            stable_shard("x", 0)
        with pytest.raises(ValueError):
            stable_shard("x", -1)


class TestShardSpec:
    def test_contains_matches_stable_shard(self):
        spec = ShardSpec(index=1, count=3)
        for name in ("a", "b", "zvents-detail", "src-42"):
            assert spec.contains(name) == (stable_shard(name, 3) == 1)

    def test_partition_is_disjoint_and_exhaustive(self):
        names = [f"src-{i}" for i in range(100)]
        shards = [ShardSpec(index=i, count=4) for i in range(4)]
        parts = [shard.partition(names) for shard in shards]
        assert sorted(name for part in parts for name in part) == sorted(names)
        seen = set()
        for part in parts:
            assert not (set(part) & seen)
            seen.update(part)

    def test_partition_preserves_input_order(self):
        names = [f"src-{i}" for i in range(50)]
        part = ShardSpec(index=0, count=2).partition(names)
        assert part == [name for name in names if name in set(part)]

    def test_parse_round_trip(self):
        spec = ShardSpec.parse("2/5")
        assert spec == ShardSpec(index=2, count=5)
        assert str(spec) == "2/5"
        assert ShardSpec.parse(str(spec)) == spec

    @pytest.mark.parametrize(
        "text", ["", "1", "1/", "/2", "a/b", "2/2", "3/2", "-1/2", "0/0"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=0, count=0)
        with pytest.raises(ValueError):
            ShardSpec(index=2, count=2)
        with pytest.raises(ValueError):
            ShardSpec(index=-1, count=2)

    def test_full_shard_contains_everything(self):
        spec = ShardSpec(index=0, count=1)
        assert all(spec.contains(f"src-{i}") for i in range(20))
