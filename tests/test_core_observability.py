"""Observer protocol: event sequences, timings, traces, collectors."""

import io
import json

import pytest

from repro.core import (
    ObjectRunner,
    ObjectRunnerSystem,
    StageEventCollector,
    TraceObserver,
)
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec


@pytest.fixture(scope="module")
def albums_setup():
    domain = domain_spec("albums")
    spec = SiteSpec(
        name="observe-albums",
        domain="albums",
        archetype="clean",
        total_objects=30,
        seed=("observe", "albums"),
    )
    source = generate_source(spec, domain)
    knowledge = build_knowledge(domain, coverage=0.2)
    return domain, source, knowledge


def make_runner(domain, knowledge, observers=()):
    return ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        observers=observers,
    )


class TestTimingObserver:
    def test_timings_populated_via_events(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source("observe-albums", source.pages)
        assert result.timings.preprocess > 0
        assert result.timings.annotation > 0
        assert result.timings.wrapping > 0
        assert result.timings.extraction > 0
        assert result.timings.enrichment == 0.0  # stage disabled

    def test_stage_timings_sum_to_pipeline_total(self, albums_setup):
        domain, source, knowledge = albums_setup
        collector = StageEventCollector()
        runner = make_runner(domain, knowledge, observers=(collector,))
        result = runner.run_source("observe-albums", source.pages)
        assert result.ok
        [end_event] = collector.completed
        stage_sum = sum(collector.elapsed.values())
        # The stages account for the run total within dispatch noise.
        assert stage_sum <= end_event.elapsed
        assert stage_sum > end_event.elapsed * 0.8


class TestTraceObserver:
    def test_jsonl_trace_one_line_per_event(self, albums_setup, tmp_path):
        domain, source, knowledge = albums_setup
        trace_path = tmp_path / "trace.jsonl"
        with TraceObserver(trace_path) as trace:
            runner = make_runner(domain, knowledge, observers=(trace,))
            result = runner.run_source("observe-albums", source.pages)
        assert result.ok
        lines = trace_path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "pipeline_start"
        assert kinds[-1] == "pipeline_end"
        stage_ends = [e for e in events if e["event"] == "stage_end"]
        assert [e["stage"] for e in stage_ends] == [
            "preprocess", "segmentation", "annotation", "wrapping", "extraction",
        ]
        # Per-stage elapsed sums to the run elapsed within noise.
        total = next(e for e in events if e["event"] == "pipeline_end")["elapsed_s"]
        stage_sum = sum(e["elapsed_s"] for e in stage_ends)
        assert stage_sum <= total
        assert stage_sum > total * 0.8

    def test_trace_counters_match_result(self, albums_setup):
        domain, source, knowledge = albums_setup
        sink = io.StringIO()
        trace = TraceObserver(sink)
        runner = make_runner(domain, knowledge, observers=(trace,))
        result = runner.run_source("observe-albums", source.pages)
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        summary = next(e for e in events if e["event"] == "pipeline_end")
        assert summary["counters"]["objects_extracted"] == len(result.objects)
        assert summary["counters"]["pages_prepared"] == len(source.pages)

    def test_trace_records_discard(self, tmp_path):
        domain = domain_spec("albums")
        knowledge = build_knowledge(domain, coverage=0.2)
        sink = io.StringIO()
        runner = make_runner(domain, knowledge, observers=(TraceObserver(sink),))
        result = runner.run_source(
            "junk", ["<html><body><p>nothing</p></body></html>"] * 3
        )
        assert result.discarded
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        summary = next(e for e in events if e["event"] == "pipeline_end")
        assert summary["discarded"] is True
        assert summary["discard_stage"] == result.discard_stage


class TestStageEventCollector:
    def test_collects_across_multiple_sources(self, albums_setup):
        domain, source, knowledge = albums_setup
        collector = StageEventCollector()
        runner = make_runner(domain, knowledge, observers=(collector,))
        runner.run_sources(
            {"a": source.pages, "b": source.pages}
        )
        assert len(collector.completed) == 2
        assert collector.stage_seconds("wrapping") > 0
        assert collector.counters["objects_extracted"] > 0

    def test_add_observer_after_construction(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        collector = StageEventCollector()
        runner.add_observer(collector)
        runner.run_source("observe-albums", source.pages)
        assert collector.completed


class TestSystemAdapterEvents:
    def test_wrap_seconds_comes_from_stage_events(self, albums_setup):
        domain, source, knowledge = albums_setup
        extra = StageEventCollector()
        system = ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            observers=(extra,),
        )
        pages = make_runner(domain, knowledge).prepare_pages(source.pages)
        output = system.run("observe-albums", pages, domain.sod)
        assert not output.failed
        assert output.wrap_seconds > 0
        # The injected observer saw the same wrapping time the adapter used.
        assert extra.stage_seconds("wrapping") == pytest.approx(
            output.wrap_seconds
        )

    def test_adapter_reports_discard_from_events(self, albums_setup):
        domain, __, knowledge = albums_setup
        system = ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        )
        runner = make_runner(domain, knowledge)
        pages = runner.prepare_pages(
            ["<html><body><p>nothing</p></body></html>"] * 3
        )
        output = system.run("junk", pages, domain.sod)
        assert output.failed
        assert output.failure_reason


class TestTraceObserverFailure:
    """The trace sink stays coherent when a stage raises mid-pipeline."""

    def _failing_pipeline(self, trace):
        from repro.core.params import RunParams
        from repro.core.pipeline import Pipeline, PipelineContext, Stage

        class BoomStage(Stage):
            name = "boom"

            def run(self, ctx):
                raise RuntimeError("kaput")

        ctx = PipelineContext(source="doomed", params=RunParams(), sod={})
        return Pipeline(stages=[BoomStage()], observers=(trace,)), ctx

    def test_terminal_event_flushed_before_propagation(self, tmp_path):
        trace_path = tmp_path / "crash.jsonl"
        trace = TraceObserver(trace_path)
        pipeline, ctx = self._failing_pipeline(trace)
        with pytest.raises(RuntimeError, match="kaput"):
            pipeline.run(ctx)
        # Every line is already on disk *without* an explicit close: the
        # observer flushes per event, so a crashing run leaves no torn tail.
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == [
            "pipeline_start", "stage_start", "pipeline_end",
        ]
        terminal = events[-1]
        assert terminal["error"] == "RuntimeError: kaput"
        assert terminal["stage"] == "boom"
        assert terminal["source"] == "doomed"
        trace.close()

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        trace_path = tmp_path / "crash.jsonl"
        trace = TraceObserver(trace_path)
        pipeline, ctx = self._failing_pipeline(trace)
        with pytest.raises(RuntimeError):
            pipeline.run(ctx)
        trace.close()
        trace.close()  # second close must not raise
        before = trace_path.read_text()
        with pytest.raises(RuntimeError):
            pipeline.run(ctx)  # observer is closed: no further writes
        assert trace_path.read_text() == before

    def test_context_manager_closes_on_failure(self, tmp_path):
        trace_path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError):
            with TraceObserver(trace_path) as trace:
                pipeline, ctx = self._failing_pipeline(trace)
                pipeline.run(ctx)
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert events[-1]["event"] == "pipeline_end"
        assert "kaput" in events[-1]["error"]
