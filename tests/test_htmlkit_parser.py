"""Tests for the tolerant tree builder."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmlkit.dom import Element, Text
from repro.htmlkit.parser import parse_html


def body_of(source):
    document = parse_html(source)
    html = document.find("html")
    return (html or document).find("body") or document


class TestWellFormed:
    def test_nested_structure(self):
        document = parse_html("<div><span>a</span><span>b</span></div>")
        div = document.find("div")
        assert div is not None
        assert [c.tag for c in div.children if isinstance(c, Element)] == [
            "span",
            "span",
        ]

    def test_text_nodes_attached(self):
        document = parse_html("<p>hello <b>world</b></p>")
        p = document.find("p")
        assert isinstance(p.children[0], Text)
        assert p.children[0].text == "hello "

    def test_attributes_preserved(self):
        document = parse_html('<div id="main" class="x y"></div>')
        div = document.find("div")
        assert div.attributes == {"id": "main", "class": "x y"}

    def test_void_elements_have_no_children(self):
        document = parse_html("<div><br>text</div>")
        div = document.find("div")
        br = div.find("br")
        assert br.children == []
        assert "text" in div.text_content()


class TestTagSoupRecovery:
    def test_unclosed_li_auto_closes(self):
        document = parse_html("<ul><li>a<li>b<li>c</ul>")
        ul = document.find("ul")
        items = [c for c in ul.children if isinstance(c, Element) and c.tag == "li"]
        assert len(items) == 3
        assert [i.text_content() for i in items] == ["a", "b", "c"]

    def test_unclosed_p_auto_closes(self):
        document = parse_html("<div><p>one<p>two</div>")
        div = document.find("div")
        paragraphs = div.find_all("p")
        assert [p.text_content() for p in paragraphs] == ["one", "two"]

    def test_td_closes_td(self):
        document = parse_html("<tr><td>a<td>b</tr>")
        tr = document.find("tr")
        assert len(tr.find_all("td")) == 2

    def test_stray_end_tag_ignored(self):
        document = parse_html("<div>a</span>b</div>")
        div = document.find("div")
        assert div.find("span") is None
        assert div.text_content() == "a b"  # both texts stay inside the div

    def test_unclosed_elements_closed_at_eof(self):
        document = parse_html("<div><span>deep")
        span = document.find("span")
        assert span is not None
        assert span.text_content() == "deep"

    def test_mismatched_close_through_inline(self):
        # </div> closes the still-open <span> too.
        document = parse_html("<div><span>x</div>after")
        div = document.find("div")
        assert div.text_content() == "x"

    def test_never_raises_on_soup(self):
        for nasty in [
            "<div></div></div>",
            "<a><b><c></a>",
            "</html>",
            "<li></ul><li>",
        ]:
            parse_html(nasty)

    @given(st.text(alphabet="<>/abspan divli ", max_size=200))
    def test_arbitrary_soup_never_raises(self, source):
        parse_html(source)

    @given(st.text(max_size=300))
    def test_arbitrary_text_roundtrips_content(self, source):
        document = parse_html(source)
        assert document.tag == "#document"


class TestParentPointers:
    def test_parents_consistent(self):
        document = parse_html("<div><p><b>x</b></p></div>")
        for node in document.iter():
            if isinstance(node, Element):
                for child in node.children:
                    assert child.parent is node
