"""Tests for DOM serialization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmlkit.dom import Element, Text
from repro.htmlkit.parser import parse_html
from repro.htmlkit.serialize import to_html
from repro.htmlkit.tidy import tidy


class TestSerialize:
    def test_simple_roundtrip(self):
        source = "<div class=\"x\"><span>hi</span></div>"
        html = to_html(parse_html(source))
        assert html == '<div class="x"><span>hi</span></div>'

    def test_void_elements(self):
        assert to_html(Element("br")) == "<br/>"

    def test_text_escaped(self):
        node = Element("p", children=[Text("a < b & c")])
        assert to_html(node) == "<p>a &lt; b &amp; c</p>"

    def test_attribute_escaped(self):
        node = Element("a", {"title": 'say "hi"'})
        assert 'title="say &quot;hi&quot;"' in to_html(node)

    def test_pretty_indents(self):
        node = Element("div", children=[Element("p", children=[Text("x")])])
        pretty = to_html(node, pretty=True)
        assert pretty.splitlines()[0] == "<div>"
        assert pretty.splitlines()[1].startswith("  <p>")

    def test_document_root_transparent(self):
        document = parse_html("<p>x</p>")
        assert to_html(document) == "<p>x</p>"


class TestRoundtripStability:
    @given(st.text(alphabet="<>/ab divspanli clsx=\"' ", max_size=150))
    def test_parse_serialize_parse_fixpoint(self, source):
        first = tidy(source)
        serialized = to_html(first)
        second = tidy(serialized)
        assert to_html(second) == serialized

    def test_entities_roundtrip(self):
        source = "<p>a &amp; b &lt; c</p>"
        once = to_html(parse_html(source))
        twice = to_html(parse_html(once))
        assert once == twice
