"""Golden byte-equality guarantees for the tokenize -> EQ -> fixpoint hot path.

The hot-path rewrite (interned role ids, pushed-down DOM paths,
preallocated occurrence arrays, memoized role refinement, hoisted SOD
early-abort) must be a pure performance change: every observable artifact
— token sequences, occurrence vectors, equivalence classes, induced
templates, extracted objects — stays identical to the straightforward
reference semantics, under any ``PYTHONHASHSEED``.  The reference
implementations in this module are deliberately naive transliterations of
the pre-rewrite code paths; any divergence from them is a correctness bug
in the optimization, never a tuning matter.
"""

import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.annotation.annotator import annotate_page
from repro.htmlkit.dom import Element, Text
from repro.sod.dsl import parse_sod
from repro.utils.text import tokenize_words
from repro.wrapper.equivalence import find_equivalence_classes
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.occurrence import OccurrenceVector, occurrence_vectors
from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
)
from repro.wrapper.tokens import tokenize_element

REPO_ROOT = Path(__file__).resolve().parents[1]

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


def reference_tokens(element, include_words=True):
    """The seed tokenizer's output: per-node ``dom_path()`` walks.

    The rewrite pushes paths down the recursion instead of re-walking the
    ancestor chain per node; this reference recomputes every token's path
    from scratch, so the two must agree token-for-token.
    """
    out = []

    def visit(node):
        path = node.dom_path()
        attr_class = node.attributes.get("class", "")
        annotations = frozenset(node.annotations)
        out.append(("open", node.tag, path, attr_class, annotations))
        for child in node.children:
            if isinstance(child, Text):
                if not include_words:
                    continue
                for word in tokenize_words(child.text):
                    out.append(
                        ("word", word, path, "", frozenset(child.annotations))
                    )
                continue
            visit(child)
        out.append(("close", node.tag, path, attr_class, annotations))

    visit(element)
    return out


def reference_vectors(pages, min_support=3):
    """Per-role ``Counter`` occurrence vectors (the pre-rewrite shape)."""
    min_support = min(min_support, len(pages)) if pages else min_support
    counters = [Counter(token.role_key for token in page.tokens) for page in pages]
    roles = set()
    for counter in counters:
        roles.update(counter)
    vectors = {}
    for role in roles:
        counts = tuple(counter.get(role, 0) for counter in counters)
        if sum(1 for count in counts if count > 0) >= min_support:
            vectors[role] = OccurrenceVector(counts)
    return vectors


class TestTokenizerEquivalence:
    def test_token_stream_matches_reference(self, figure3_pages):
        for page in figure3_pages:
            fast = tokenize_element(page)
            observed = [
                (t.kind, t.value, t.path, t.attr_class, t.annotations)
                for t in fast.tokens
            ]
            assert observed == reference_tokens(page)

    def test_token_stream_matches_reference_without_words(self, figure3_pages):
        for page in figure3_pages:
            fast = tokenize_element(page, include_words=False)
            observed = [
                (t.kind, t.value, t.path, t.attr_class, t.annotations)
                for t in fast.tokens
            ]
            assert observed == reference_tokens(page, include_words=False)

    def test_annotations_survive_tokenization(
        self, figure3_pages, figure3_recognizers
    ):
        for page in figure3_pages:
            annotate_page(page, figure3_recognizers)
        for page in figure3_pages:
            fast = tokenize_element(page)
            observed = [
                (t.kind, t.value, t.path, t.attr_class, t.annotations)
                for t in fast.tokens
            ]
            assert observed == reference_tokens(page)

    def test_role_ids_are_first_appearance_document_order(self, figure3_pages):
        page = tokenize_element(figure3_pages[0])
        seen = {}
        for token in page.tokens:
            if token.role_key not in seen:
                seen[token.role_key] = token.role_id
            assert token.role_id == seen[token.role_key]
        # Ids count up from zero in the order roles first appear.
        assert sorted(seen.values()) == list(range(len(seen)))


class TestOccurrenceEquivalence:
    def test_vectors_match_reference_counters(self, figure3_pages):
        pages = [
            tokenize_element(page, page_index=index)
            for index, page in enumerate(figure3_pages)
        ]
        assert occurrence_vectors(pages) == reference_vectors(pages)

    def test_private_tables_are_normalized(self, figure3_pages):
        # Pages tokenized one-by-one (each with its own table) must yield
        # the same vectors as pages sharing a table from the start.
        private = [tokenize_element(page) for page in figure3_pages]
        from repro.wrapper.tokens import TokenTable

        table = TokenTable()
        shared = [
            tokenize_element(page, table=table) for page in figure3_pages
        ]
        assert occurrence_vectors(private) == occurrence_vectors(shared)


class TestEquivalenceClassEquivalence:
    def test_classes_identical_for_private_and_shared_tables(
        self, figure3_pages
    ):
        from repro.wrapper.tokens import TokenTable

        private = [tokenize_element(page) for page in figure3_pages]
        table = TokenTable()
        shared = [
            tokenize_element(page, table=table) for page in figure3_pages
        ]
        a = find_equivalence_classes(private, min_support=2)
        b = find_equivalence_classes(shared, min_support=2)
        assert [
            (eq.roles, eq.ordered_roles, eq.vector, eq.valid) for eq in a
        ] == [
            (eq.roles, eq.ordered_roles, eq.vector, eq.valid) for eq in b
        ]

    def test_ordered_roles_follow_first_occurrence(self, figure3_pages):
        pages = [tokenize_element(page) for page in figure3_pages]
        for eq in find_equivalence_classes(pages, min_support=2):
            if not eq.valid:
                continue
            reference = None
            for page in pages:
                firsts = {}
                for index, token in enumerate(page.tokens):
                    if (
                        token.role_key in eq.roles
                        and token.role_key not in firsts
                    ):
                        firsts[token.role_key] = index
                if len(firsts) != len(eq.roles):
                    continue
                ordered = [
                    role for __, role in sorted(
                        (firsts[role], role) for role in eq.roles
                    )
                ]
                if reference is None:
                    reference = ordered
                assert ordered == reference
            assert reference is not None
            assert list(eq.ordered_roles) == reference


def _genre_page(records):
    """One page of concert records with a varying-length genre list.

    The varying ``<span class=genre>`` repetition induces an IteratorSlot,
    the constant "Tickets available" label a StaticSlot, artist/date
    FieldSlots, and the containers ElementTemplates — all four template
    node kinds from one source.
    """
    body = ""
    for artist, date, genres in records:
        spans = "".join(f"<span class='genre'>{g}</span>" for g in genres)
        body += (
            f"<li><div class='artist'>{artist}</div>"
            f"<div class='label'>Tickets available</div>"
            f"<div class='date'>{date}</div>"
            f"<ul class='genres'>{spans}</ul></li>"
        )
    return f"<html><body><ul class='list'>{body}</ul></body></html>"


GENRE_RAW = [
    _genre_page(
        [
            ("Muse", "May 5, 2011", ["rock"]),
            ("Coldplay", "June 1, 2011", ["pop", "rock"]),
        ]
    ),
    _genre_page(
        [
            ("Madonna", "July 2, 2011", ["pop", "dance", "electro"]),
            ("Muse", "May 9, 2011", ["rock"]),
        ]
    ),
    _genre_page(
        [
            ("Coldplay", "June 8, 2011", ["pop"]),
            ("Madonna", "August 3, 2011", ["pop", "dance"]),
        ]
    ),
]

GENRE_SOD = parse_sod("concert(artist, date<kind=predefined>)")


def induce_genre_wrapper():
    from repro.htmlkit.tidy import tidy
    from repro.recognizers import GazetteerRecognizer, predefined_recognizer

    pages = [tidy(raw) for raw in GENRE_RAW]
    recognizers = [
        GazetteerRecognizer("artist", ["Muse", "Coldplay", "Madonna"]),
        predefined_recognizer("date", type_name="date"),
    ]
    for page in pages:
        annotate_page(page, recognizers)
    return generate_wrapper(
        "genre-demo", pages, GENRE_SOD, WrapperConfig(support=2)
    )


class TestTemplateNodeKinds:
    def test_induced_template_covers_all_four_kinds(self):
        wrapper = induce_genre_wrapper()
        kinds = {type(node) for node in wrapper.template.iter_nodes()}
        assert {FieldSlot, StaticSlot, ElementTemplate, IteratorSlot} <= kinds

    def test_figure3_template_kinds(self, figure3_pages, figure3_recognizers):
        # The running example exercises everything but iteration.
        for page in figure3_pages:
            annotate_page(page, figure3_recognizers)
        wrapper = generate_wrapper(
            "figure3", figure3_pages, SOD, WrapperConfig(support=2)
        )
        kinds = {type(node) for node in wrapper.template.iter_nodes()}
        assert {FieldSlot, StaticSlot, ElementTemplate} <= kinds


HASHSEED_SCRIPT = """
import hashlib
import json

from repro.annotation.annotator import annotate_page
from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.htmlkit import tidy
from repro.recognizers import RecognizerRegistry
from repro.sod.dsl import parse_sod
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.serialize import wrapper_to_dict
from tests.conftest import FIGURE3_P1, FIGURE3_P2, FIGURE3_P3

digest = hashlib.sha256()

# Channel 1: the running example, induced directly (all four node kinds).
from repro.recognizers import GazetteerRecognizer, predefined_recognizer

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)
pages = [tidy(raw) for raw in (FIGURE3_P1, FIGURE3_P2, FIGURE3_P3)]
recognizers = [
    GazetteerRecognizer("artist", ["Metallica", "Coldplay", "Madonna", "Muse"]),
    GazetteerRecognizer(
        "theater",
        [
            "Madison Square Garden",
            "Bowery Ballroom",
            "The Town Hall",
            "B.B King Blues and Grill",
        ],
    ),
    predefined_recognizer("date", type_name="date"),
    predefined_recognizer("address", type_name="address"),
]
for page in pages:
    annotate_page(page, recognizers)
wrapper = generate_wrapper("figure3", pages, SOD, WrapperConfig(support=2))
digest.update(
    json.dumps(wrapper_to_dict(wrapper), sort_keys=True).encode("utf-8")
)

# Channel 2: the varying-repetition source covering all four template
# node kinds (FieldSlot, StaticSlot, ElementTemplate, IteratorSlot).
from tests.test_wrapper_hotpath import induce_genre_wrapper

digest.update(
    json.dumps(
        wrapper_to_dict(induce_genre_wrapper()), sort_keys=True
    ).encode("utf-8")
)

# Channel 3: a synthetic source through the full pipeline, extraction
# values included.
domain = domain_spec("albums")
knowledge = build_knowledge(domain, coverage=0.25)
spec = SiteSpec(
    name="hotpath-golden",
    domain="albums",
    archetype="mixed_structure",
    total_objects=24,
    seed=("hotpath", 1),
)
source = generate_source(spec, domain)
runner = ObjectRunner(
    domain.sod,
    ontology=knowledge.ontology,
    corpus=knowledge.corpus,
    gazetteer_classes=domain.gazetteer_classes,
    params=RunParams(),
)
result = runner.run_source(spec.name, source.pages)
digest.update(json.dumps(wrapper_to_dict(result.wrapper), sort_keys=True).encode("utf-8"))
for instance in result.objects:
    digest.update(str(instance.page_index).encode("utf-8"))
    digest.update(
        json.dumps(instance.values, sort_keys=True, default=str).encode("utf-8")
    )

print(digest.hexdigest())
"""


def run_with_hashseed(seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
    proc = subprocess.run(
        [sys.executable, "-c", HASHSEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_induction_and_extraction_stable_across_hash_seeds():
    """Wrapper bytes and extracted objects match at seeds 0, 1 and 4242."""
    digests = {run_with_hashseed(seed) for seed in ("0", "1", "4242")}
    assert len(digests) == 1, f"hash-seed dependent output: {digests}"
