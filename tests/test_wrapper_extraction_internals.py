"""Tests for extraction internals: level walking, iterators, fallbacks."""

from repro.annotation.annotator import annotate_page
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.sod.dsl import parse_sod
from repro.wrapper.alignment import TemplateBuilder
from repro.wrapper.extraction import extract_record
from repro.wrapper.generate import WrapperConfig, generate_wrapper


def li_records(sources, recognizers=None):
    records = []
    for source in sources:
        root = tidy(source)
        if recognizers:
            annotate_page(root, recognizers)
        records.append([root.find("li")])
    return records


class TestExtractRecord:
    def test_field_values_read_back(self):
        training = li_records(
            ["<li><div class='a'>one</div></li>", "<li><div class='a'>two</div></li>"]
        )
        template = TemplateBuilder().build(training)
        fresh = li_records(["<li><div class='a'>three</div></li>"])[0]
        values = extract_record(template, fresh)
        assert list(values.fields.values()) == [["three"]]

    def test_static_text_not_extracted(self):
        training = li_records(
            ["<li><span>In Stock</span><div>x</div></li>",
             "<li><span>In Stock</span><div>y</div></li>"]
        )
        template = TemplateBuilder().build(training)
        fresh = li_records(["<li><span>In Stock</span><div>z</div></li>"])[0]
        values = extract_record(template, fresh)
        extracted = [v for vs in values.fields.values() for v in vs]
        assert extracted == ["z"]

    def test_optional_column_absent(self):
        training = li_records(
            [
                "<li><div class='a'>x1</div><div class='b'>y1</div></li>",
                "<li><div class='a'>x2</div><div class='b'>y2</div></li>",
                "<li><div class='a'>x3</div></li>",
            ]
        )
        template = TemplateBuilder().build(training)
        short = li_records(["<li><div class='a'>solo</div></li>"])[0]
        values = extract_record(template, short)
        assert ["solo"] in values.fields.values()

    def test_iterator_units_extracted(self):
        training = li_records(
            [
                "<li><span class='a'>A</span></li>",
                "<li><span class='a'>B</span><span class='a'>C</span></li>",
                "<li><span class='a'>D</span><span class='a'>E</span>"
                "<span class='a'>F</span></li>",
            ]
        )
        template = TemplateBuilder().build(training)
        fresh = li_records(
            ["<li><span class='a'>P</span><span class='a'>Q</span></li>"]
        )[0]
        values = extract_record(template, fresh)
        (units,) = values.iterators.values()
        flattened = [v for unit in units for vs in unit.fields.values() for v in vs]
        assert flattened == ["P", "Q"]

    def test_whole_content_field_grabs_everything(self):
        # Chaotic inner structure collapses to one field; extraction must
        # concatenate the full level text.
        artist = GazetteerRecognizer("author", ["Jane Austen", "Mary Frey",
                                                "Abe Verghese", "Kim Stone"])
        training = li_records(
            [
                "<li><span>by <a>Jane Austen</a> and Fiona Stafford</span></li>",
                "<li><span>by Mary Frey</span></li>",
                "<li><span>by <a>Abe Verghese</a></span></li>",
                "<li><span>by Kim Stone, Ada Lively and Joe Crisp</span></li>",
            ],
            [artist],
        )
        template = TemplateBuilder().build(training)
        fresh = li_records(
            ["<li><span>by <a>New Author</a> and Friend</span></li>"]
        )[0]
        values = extract_record(template, fresh)
        extracted = " ".join(v for vs in values.fields.values() for v in vs)
        assert "New Author" in extracted
        assert "Friend" in extracted


class TestSegmentPageStyles:
    def test_sibling_run_segmentation(self):
        # Records without a wrapper element: runs of sibling divs delimited
        # by the opening role.
        page_html = (
            "<body><div id='m'>"
            + "".join(
                f"<div class='head'>title {i}</div><p>detail {i}</p>"
                for i in range(4)
            )
            + "</div></body>"
        )
        pages = [tidy(page_html) for __ in range(3)]
        gazetteer = GazetteerRecognizer(
            "title", [f"title {i}" for i in range(4)]
        )
        for page in pages:
            annotate_page(page, [gazetteer])
        sod = parse_sod("t(title)")
        wrapper = generate_wrapper("siblings", pages, sod, WrapperConfig(support=2))
        segments = wrapper.segment_page(pages[0])
        assert len(segments) == 4
        # Each record holds the heading and its detail paragraph.
        assert all(len(record) == 2 for record in segments)

    def test_single_element_segmentation(self, figure3_pages, figure3_recognizers):
        for page in figure3_pages:
            annotate_page(page, figure3_recognizers)
        sod = parse_sod(
            "concert(artist, date<kind=predefined>, location(theater))"
        )
        wrapper = generate_wrapper("fig3", figure3_pages, sod, WrapperConfig(support=2))
        assert wrapper.record_single_element
        for page in figure3_pages:
            for record in wrapper.segment_page(page):
                assert len(record) == 1
                assert record[0].tag == "li"
