"""Tests for page tokenization."""

from repro.htmlkit.tidy import tidy
from repro.wrapper.tokens import (
    KIND_CLOSE,
    KIND_OPEN,
    KIND_WORD,
    tokenize_element,
)


def tokens_of(source, include_words=True):
    root = tidy(source)
    body = root.find("body")
    return tokenize_element(body, include_words=include_words).tokens


class TestTokenization:
    def test_tags_and_words_interleaved(self):
        tokens = tokens_of("<body><div>hello world</div></body>")
        kinds = [t.kind for t in tokens]
        assert kinds == [KIND_OPEN, KIND_OPEN, KIND_WORD, KIND_WORD, KIND_CLOSE, KIND_CLOSE]

    def test_word_values(self):
        tokens = tokens_of("<body><p>May 11, 8:00pm</p></body>")
        words = [t.value for t in tokens if t.kind == KIND_WORD]
        assert words == ["May", "11", "8", "00pm"]

    def test_paths_recorded(self):
        tokens = tokens_of("<body><div><span>x</span></div></body>")
        span_open = next(
            t for t in tokens if t.kind == KIND_OPEN and t.value == "span"
        )
        assert span_open.path == "html/body/div/span"

    def test_word_path_is_parent_path(self):
        tokens = tokens_of("<body><div>word</div></body>")
        word = next(t for t in tokens if t.kind == KIND_WORD)
        assert word.path == "html/body/div"

    def test_class_in_role_key(self):
        tokens = tokens_of(
            "<body><div class='a'>x</div><div class='b'>y</div></body>"
        )
        opens = [t for t in tokens if t.kind == KIND_OPEN and t.value == "div"]
        assert opens[0].role_key != opens[1].role_key

    def test_same_markup_same_role(self):
        tokens = tokens_of("<body><div>x</div><div>y</div></body>")
        opens = [t for t in tokens if t.kind == KIND_OPEN and t.value == "div"]
        assert opens[0].role_key == opens[1].role_key

    def test_annotations_carried(self):
        root = tidy("<body><div>Muse</div></body>")
        div = root.find("div")
        div.annotations.add("artist")
        next(div.iter_text_nodes()).annotations.add("artist")
        page = tokenize_element(root.find("body"))
        open_token = next(t for t in page.tokens if t.value == "div")
        word_token = next(t for t in page.tokens if t.kind == KIND_WORD)
        assert "artist" in open_token.annotations
        assert "artist" in word_token.annotations

    def test_words_excluded_when_disabled(self):
        tokens = tokens_of("<body><div>hello</div></body>", include_words=False)
        assert all(t.is_tag for t in tokens)

    def test_element_backlink(self):
        root = tidy("<body><div>x</div></body>")
        page = tokenize_element(root.find("body"))
        open_token = next(t for t in page.tokens if t.value == "div")
        assert open_token.element is root.find("div")

    def test_word_backlink_to_text_node(self):
        root = tidy("<body><div>word</div></body>")
        page = tokenize_element(root.find("body"))
        word = next(t for t in page.tokens if t.kind == KIND_WORD)
        assert word.text_node is next(root.find("div").iter_text_nodes())

    def test_display(self):
        tokens = tokens_of("<body><div>x</div></body>")
        assert tokens[1].display() == "<div>"
        assert tokens[-2].display() == "</div>"
        word = next(t for t in tokens if t.kind == KIND_WORD)
        assert word.display() == "x"
