"""Tests for the synthetic corpus generator."""

from repro.corpus.generator import CorpusGenerator, CorpusSpec
from repro.corpus.hearst import find_matches
from repro.corpus.scoring import score_candidates


def build(spec):
    return CorpusGenerator(spec).build()


class TestGenerator:
    def test_deterministic(self):
        spec = CorpusSpec(type_instances={"Band": ["Muse"]}, seed=42)
        a = build(spec)
        b = build(spec)
        assert list(a.sentences()) == list(b.sentences())

    def test_different_seeds_differ(self):
        base = {"Band": ["Muse", "Coldplay"]}
        a = build(CorpusSpec(type_instances=base, seed=1, noise=30))
        b = build(CorpusSpec(type_instances=base, seed=2, noise=30))
        assert list(a.sentences()) != list(b.sentences())

    def test_instances_discoverable_via_hearst(self):
        spec = CorpusSpec(
            type_instances={"Band": ["Muse", "Coldplay"]}, pattern_rate=4, seed=3
        )
        corpus = build(spec)
        found = {m.instance for m in find_matches(corpus, "Band")}
        assert {"Muse", "Coldplay"} <= found

    def test_scores_rank_true_instances(self):
        # Enough true instances for the count25 threshold of Eq. 1 to damp
        # the lone false pair.
        spec = CorpusSpec(
            type_instances={"Band": ["Muse", "Coldplay", "Oasis Clone", "Blur Twin"]},
            false_pairs=[("Randomword", "Band")],
            pattern_rate=4,
            seed=4,
        )
        corpus = build(spec)
        scores = score_candidates(corpus, find_matches(corpus, "Band"))["Band"]
        assert scores["Muse"] >= scores.get("Randomword", 0.0)

    def test_noise_sentences_present(self):
        spec = CorpusSpec(type_instances={}, noise=25, seed=5)
        corpus = build(spec)
        assert len(corpus) == 25

    def test_plain_mentions_raise_instance_count(self):
        spec = CorpusSpec(
            type_instances={"Band": ["Muse"]},
            pattern_rate=1,
            mention_rate=5,
            noise=0,
            seed=6,
        )
        corpus = build(spec)
        assert corpus.count_phrase("Muse") >= 5
