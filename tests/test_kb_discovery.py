"""Tests for instance-based type discovery (set expansion)."""

import pytest

from repro.kb.discovery import discover_classes, expand_instances
from repro.kb.ontology import Ontology


@pytest.fixture()
def ontology():
    onto = Ontology()
    for band in ("Metallica", "Muse", "Coldplay", "Radiohead"):
        onto.add_instance(band, "Band", 0.9)
    for singer in ("Madonna", "Prince Clone"):
        onto.add_instance(singer, "Singer", 0.9)
    # A huge general class containing everything (the 'Entity' trap).
    for name in (
        "Metallica", "Muse", "Coldplay", "Radiohead", "Madonna",
        "Prince Clone", "Paris", "Hamlet", "Toyota", "October",
    ):
        onto.add_instance(name, "Entity", 1.0)
    onto.add_subclass("Band", "Artist")
    onto.add_subclass("Singer", "Artist")
    return onto


class TestDiscoverClasses:
    def test_specific_class_beats_general(self, ontology):
        candidates = discover_classes(ontology, ["Metallica", "Muse"])
        assert candidates
        assert candidates[0].class_name == "band"

    def test_coverage_threshold(self, ontology):
        candidates = discover_classes(
            ontology, ["Metallica", "Nobody Knows This"], min_coverage=0.9
        )
        # Band only covers half the examples -> filtered at 0.9.
        assert all(c.class_name != "band" for c in candidates)

    def test_case_insensitive_matching(self, ontology):
        candidates = discover_classes(ontology, ["metallica", "MUSE"])
        assert candidates[0].class_name == "band"

    def test_empty_examples(self, ontology):
        assert discover_classes(ontology, ["", "  "]) == []

    def test_top_k_limits(self, ontology):
        candidates = discover_classes(ontology, ["Metallica"], top_k=1)
        assert len(candidates) == 1

    def test_candidate_statistics(self, ontology):
        (best, *_rest) = discover_classes(ontology, ["Metallica", "Muse"])
        assert best.covered == 2
        assert best.class_size == 4
        assert 0 < best.score <= 1.0


class TestExpandInstances:
    def test_examples_always_kept(self, ontology):
        expanded = expand_instances(ontology, ["Metallica", "Muse"])
        assert expanded["Metallica"] == 1.0
        assert expanded["Muse"] == 1.0

    def test_class_mates_added(self, ontology):
        expanded = expand_instances(ontology, ["Metallica", "Muse"])
        assert "Coldplay" in expanded
        assert "Radiohead" in expanded

    def test_unrelated_entities_not_flooding_in(self, ontology):
        expanded = expand_instances(ontology, ["Metallica", "Muse"])
        # The Entity class loses to Band on specificity, and with radius 1
        # from Band, Toyota and Paris stay out.
        assert "Toyota" not in expanded or expanded["Toyota"] < expanded["Coldplay"]

    def test_expansion_confidences_bounded(self, ontology):
        expanded = expand_instances(ontology, ["Metallica"])
        assert all(0 < confidence <= 1.0 for confidence in expanded.values())

    def test_unknown_examples_passthrough(self, ontology):
        expanded = expand_instances(ontology, ["Completely Unknown Act"])
        assert expanded == {"Completely Unknown Act": 1.0}

    def test_feeds_a_gazetteer(self, ontology):
        from repro.recognizers.gazetteer import GazetteerRecognizer

        expanded = expand_instances(ontology, ["Metallica", "Muse"])
        gazetteer = GazetteerRecognizer("artist", expanded)
        assert gazetteer.find("Radiohead plays tonight")
