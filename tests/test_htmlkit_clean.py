"""Tests for the page cleaner."""

from repro.htmlkit.clean import CleanerConfig, clean_tree
from repro.htmlkit.tidy import tidy


def cleaned(source, config=None):
    return clean_tree(tidy(source), config)


class TestDropTags:
    def test_scripts_removed(self):
        html = cleaned("<body><script>var x;</script><p>keep</p></body>")
        assert html.find("script") is None
        assert html.find("p") is not None

    def test_styles_and_iframes_removed(self):
        html = cleaned("<body><style>p{}</style><iframe></iframe><p>x</p></body>")
        assert html.find("style") is None
        assert html.find("iframe") is None

    def test_images_removed(self):
        html = cleaned("<body><p><img src='x.png'>text</p></body>")
        assert html.find("img") is None
        assert html.find("p").text_content() == "text"

    def test_images_kept_when_configured(self):
        config = CleanerConfig(drop_images=False, keep_attributes=frozenset({"src"}))
        html = cleaned("<body><img src='x.png'></body>", config)
        assert html.find("img") is not None


class TestHiddenAndEmpty:
    def test_hidden_attribute_removed(self):
        html = cleaned("<body><div hidden>secret</div><div>shown</div></body>")
        divs = html.find_all("div")
        assert len(divs) == 1
        assert divs[0].text_content() == "shown"

    def test_display_none_removed(self):
        html = cleaned('<body><div style="display: none">x</div><p>y</p></body>')
        assert html.find("div") is None

    def test_visibility_hidden_removed(self):
        html = cleaned('<body><div style="visibility:hidden">x</div><p>y</p></body>')
        assert html.find("div") is None

    def test_empty_elements_removed(self):
        html = cleaned("<body><div></div><div>full</div></body>")
        assert len(html.find_all("div")) == 1

    def test_recursively_empty_removed(self):
        html = cleaned("<body><div><span></span></div><p>x</p></body>")
        assert html.find("div") is None

    def test_body_never_removed(self):
        html = cleaned("<body></body>")
        assert html.find("body") is not None

    def test_whitespace_only_text_dropped(self):
        html = cleaned("<body><div>  </div><p>x</p></body>")
        assert html.find("div") is None


class TestAttributes:
    def test_non_whitelisted_attributes_stripped(self):
        html = cleaned(
            '<body><div onclick="evil()" style="color:red" data-x="1" '
            'class="keep">x</div></body>'
        )
        div = html.find("div")
        assert div.attributes == {"class": "keep"}

    def test_unwrap_font(self):
        html = cleaned("<body><p><font>inner</font></p></body>")
        assert html.find("font") is None
        assert html.find("p").text_content() == "inner"


class TestFigure3Cleaning:
    def test_footer_script_removed(self):
        source = (
            "<body><div id='main'><li>data</li></div>"
            "<footer>c 2010 <script>track()</script></footer></body>"
        )
        html = cleaned(source)
        assert html.find("script") is None
        assert html.find("footer") is not None  # footer text itself stays
        assert html.find("li").text_content() == "data"
