"""Tests for YAGO-style TSV ontology I/O."""

import pytest

from repro.errors import ReproError
from repro.kb.io import dump_ontology, load_corpus_file, load_ontology, parse_facts
from repro.kb.ontology import Ontology


class TestParseFacts:
    def test_basic_rows(self):
        facts, __ = parse_facts(
            [
                "Metallica\tisInstanceOf\tBand\t0.95",
                "Band\tsubClassOf\tArtist",
            ]
        )
        assert len(facts) == 2
        assert facts[0].confidence == 0.95
        assert facts[1].confidence == 1.0

    def test_comments_and_blanks_skipped(self):
        facts, __ = parse_facts(["# header", "", "  ", "A\tisInstanceOf\tB"])
        assert len(facts) == 1

    def test_term_frequency_rows(self):
        __, frequencies = parse_facts(["Metallica\ttermFrequency\t2.5"])
        assert frequencies == {"Metallica": 2.5}

    def test_bad_field_count(self):
        with pytest.raises(ReproError, match="line 1"):
            parse_facts(["only two\tfields"])

    def test_bad_confidence(self):
        with pytest.raises(ReproError, match="confidence"):
            parse_facts(["A\tisInstanceOf\tB\tnotanumber"])

    def test_empty_field(self):
        with pytest.raises(ReproError, match="empty field"):
            parse_facts(["\tisInstanceOf\tB"])


class TestFileRoundtrip:
    def test_dump_and_load(self, tmp_path):
        ontology = Ontology()
        ontology.add_instance("Metallica", "Band", 0.95)
        ontology.add_subclass("Band", "Artist")
        ontology.add_related("Band", "MusicGroup")
        path = tmp_path / "facts.tsv"
        dump_ontology(ontology, path)
        restored = load_ontology(path)
        assert restored.instances_of("Band") == {"Metallica": 0.95}
        assert restored.superclasses_of("Band") == {"artist"}
        assert "musicgroup" in restored.related_classes("Band")

    def test_load_with_term_frequencies(self, tmp_path):
        path = tmp_path / "facts.tsv"
        path.write_text(
            "Metallica\tisInstanceOf\tBand\t0.9\n"
            "Metallica\ttermFrequency\t3.0\n",
            encoding="utf-8",
        )
        ontology = load_ontology(path)
        assert ontology.term_frequency("Metallica") == 3.0

    def test_loaded_ontology_drives_recognizers(self, tmp_path):
        from repro.recognizers.build import build_gazetteer

        path = tmp_path / "facts.tsv"
        path.write_text(
            "Metallica\tisInstanceOf\tBand\t0.9\n"
            "Band\tsubClassOf\tArtist\t1.0\n",
            encoding="utf-8",
        )
        gazetteer = build_gazetteer("Artist", ontology=load_ontology(path))
        assert "Metallica" in gazetteer


class TestCorpusFile:
    def test_load_corpus(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text(
            "Bands such as Muse played.\n\nAnother sentence.\n", encoding="utf-8"
        )
        corpus = load_corpus_file(path)
        assert len(corpus) == 2
        assert corpus.count_phrase("Muse") == 1
