"""Tests for single-file wrapper persistence with fingerprint checks."""

import json

import pytest

from repro.annotation.annotator import annotate_page
from repro.errors import WrapperSchemaError
from repro.htmlkit import pages_fingerprint
from repro.registry import (
    fingerprint_matches,
    load_wrapper_file,
    save_wrapper_file,
)
from repro.sod.dsl import parse_sod
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.serialize import wrapper_to_dict

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


@pytest.fixture()
def induced(figure3_pages, figure3_recognizers):
    for page in figure3_pages:
        annotate_page(page, figure3_recognizers)
    wrapper = generate_wrapper(
        "figure3", figure3_pages, SOD, WrapperConfig(support=2)
    )
    return wrapper, figure3_pages


class TestSaveLoad:
    def test_round_trip_with_fingerprint(self, tmp_path, induced):
        wrapper, pages = induced
        fingerprint = pages_fingerprint(pages)
        path = tmp_path / "wrapper.json"
        save_wrapper_file(path, wrapper, fingerprint)
        loaded, loaded_fingerprint = load_wrapper_file(path)
        assert loaded_fingerprint == fingerprint
        assert wrapper_to_dict(loaded) == wrapper_to_dict(wrapper)

    def test_legacy_file_without_fingerprint_loads(self, tmp_path, induced):
        wrapper, __ = induced
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(wrapper_to_dict(wrapper)))
        loaded, fingerprint = load_wrapper_file(path)
        assert fingerprint is None
        assert wrapper_to_dict(loaded) == wrapper_to_dict(wrapper)

    def test_corrupt_json_is_schema_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WrapperSchemaError):
            load_wrapper_file(path)

    def test_non_object_is_schema_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(WrapperSchemaError):
            load_wrapper_file(path)


class TestFingerprintMatches:
    def test_matching_pages(self, induced):
        __, pages = induced
        assert fingerprint_matches(pages_fingerprint(pages), pages) is True

    def test_mismatched_pages(self, induced):
        __, pages = induced
        assert fingerprint_matches("0" * 64, pages) is False

    def test_unknown_fingerprint_is_none(self, induced):
        __, pages = induced
        assert fingerprint_matches(None, pages) is None

    def test_no_pages_is_none(self):
        assert fingerprint_matches("abc", []) is None
