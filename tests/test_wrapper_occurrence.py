"""Tests for occurrence vectors."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmlkit.tidy import tidy
from repro.wrapper.occurrence import (
    OccurrenceVector,
    group_by_vector,
    occurrence_vectors,
)
from repro.wrapper.tokens import tokenize_element


def pages_from(sources):
    return [
        tokenize_element(tidy(source).find("body"), page_index=i)
        for i, source in enumerate(sources)
    ]


class TestOccurrenceVector:
    def test_total_and_support(self):
        vector = OccurrenceVector((3, 0, 6))
        assert vector.total == 9
        assert vector.support == 2

    def test_constant(self):
        assert OccurrenceVector((2, 2, 2)).constant
        assert not OccurrenceVector((2, 3, 2)).constant
        assert not OccurrenceVector((2, 0, 2)).constant

    def test_per_page_mean(self):
        assert OccurrenceVector((2, 4)).per_page_mean == 3.0
        assert OccurrenceVector(()).per_page_mean == 0.0

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=10))
    def test_invariants(self, counts):
        vector = OccurrenceVector(tuple(counts))
        assert vector.total == sum(counts)
        assert 0 <= vector.support <= len(counts)


class TestOccurrenceVectors:
    def test_paper_div_example(self):
        # The running example: <div> occurs 3, 3, 6 times across pages.
        pages = pages_from(
            [
                "<body><li><div>a</div><div>b</div><div>c</div></li></body>",
                "<body><li><div>a</div><div>b</div><div>c</div></li></body>",
                "<body><li><div>a</div><div>b</div><div>c</div></li>"
                "<li><div>a</div><div>b</div><div>c</div></li></body>",
            ]
        )
        vectors = occurrence_vectors(pages, min_support=3)
        div_role = next(
            role for role in vectors if role[0] == "open" and role[1] == "div"
        )
        assert vectors[div_role].counts == (3, 3, 6)

    def test_support_filter(self):
        pages = pages_from(
            [
                "<body><p>rare</p></body>",
                "<body><div>x</div></body>",
                "<body><div>x</div></body>",
            ]
        )
        vectors = occurrence_vectors(pages, min_support=2)
        assert not any(role[1] == "p" for role in vectors)
        assert any(role[1] == "div" for role in vectors)

    def test_support_clamped_to_page_count(self):
        pages = pages_from(["<body><div>x</div></body>"])
        vectors = occurrence_vectors(pages, min_support=5)
        assert any(role[1] == "div" for role in vectors)

    def test_word_roles_counted(self):
        pages = pages_from(
            ["<body><div>by word</div></body>"] * 3
        )
        vectors = occurrence_vectors(pages, min_support=3)
        assert any(role[0] == "word" and role[1] == "by" for role in vectors)


class TestGroupByVector:
    def test_same_vector_grouped(self):
        pages = pages_from(
            ["<body><li><div>a</div></li></body>"] * 3
        )
        vectors = occurrence_vectors(pages, min_support=3)
        groups = group_by_vector(vectors)
        # li and div open/close all occur once per page: one joint group.
        ones = groups[OccurrenceVector((1, 1, 1))]
        tags = {role[1] for role in ones if role[0] == "open"}
        assert {"li", "div"} <= tags

    def test_groups_sorted_roles(self):
        pages = pages_from(["<body><li><div>a</div></li></body>"] * 3)
        groups = group_by_vector(occurrence_vectors(pages, min_support=3))
        for roles in groups.values():
            assert roles == sorted(roles)
