"""The public API surface: every documented entry point imports and exists."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.annotation",
    "repro.baselines",
    "repro.core",
    "repro.corpus",
    "repro.datasets",
    "repro.errors",
    "repro.eval",
    "repro.htmlkit",
    "repro.kb",
    "repro.metrics",
    "repro.recognizers",
    "repro.registry",
    "repro.service",
    "repro.sod",
    "repro.turk",
    "repro.utils",
    "repro.vision",
    "repro.wrapper",
]


class TestImports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()


class TestTopLevelApi:
    def test_headline_names(self):
        import repro

        for name in (
            "ObjectRunner",
            "parse_sod",
            "RunParams",
            "SourceResult",
            "ObjectInstance",
            "SourceDiscardedError",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_version(self):
        import repro

        assert repro.__version__

    def test_public_callables_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(Exception)):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
