"""The reprolint CLI: exit codes, JSON output, and the baseline workflow."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import PLACEHOLDER_REASON
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

# Both fixtures export their symbols so A501 reachability stays quiet
# and each test isolates the signal it actually cares about.
CLEAN = '__all__ = ["double"]\n\nVALUE = 1\n\n\ndef double(x):\n    return VALUE * x\n'
DIRTY = '__all__ = ["roll"]\n\nimport random\n\n\ndef roll():\n    return random.random()\n'


def project(tmp_path, source=DIRTY):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(source, encoding="utf-8")
    return src


def run(tmp_path, src, *extra, baseline="bl.json"):
    argv = [str(src), "--root", str(tmp_path), "--baseline",
            str(tmp_path / baseline), *extra]
    return main(argv)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src) == 0
        assert "— clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src) == 1
        assert "D101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src, "--rules", "XYZ9") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        (tmp_path / "bl.json").write_text("{not json", encoding="utf-8")
        assert run(tmp_path, src) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "D101", "D102", "D103", "D104", "D105", "D106",
            "C201", "C202", "T301", "E401", "A501",
        ):
            assert rule_id in out

    def test_rules_subset_filters(self, tmp_path):
        src = project(tmp_path)  # D101 violation only
        assert run(tmp_path, src, "--rules", "D104") == 0


class TestJsonOutput:
    def test_json_format_parses_and_reports(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["open"] >= 1
        assert payload["findings"][0]["rule"] == "D101"
        assert payload["findings"][0]["path"] == "src/mod.py"


class TestBaselineWorkflow:
    """The full add → justify → expire → prune lifecycle."""

    def test_lifecycle(self, tmp_path, capsys):
        src = project(tmp_path)
        baseline = tmp_path / "bl.json"

        # 1. Dirty tree, no baseline: fails.
        assert run(tmp_path, src) == 1

        # 2. Record the baseline: exits 0 and stamps the placeholder.
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert [e["reason"] for e in data["entries"]] == [
            PLACEHOLDER_REASON
        ] * len(data["entries"])

        # 3. Placeholder reasons are not a free pass: still fails.
        capsys.readouterr()
        assert run(tmp_path, src) == 1
        assert "needs a real" in capsys.readouterr().out

        # 4. A human writes real reasons: now clean.
        for entry in data["entries"]:
            entry["reason"] = "legacy shim, tracked in issue 7"
        baseline.write_text(json.dumps(data), encoding="utf-8")
        assert run(tmp_path, src) == 0

        # 5. The code gets fixed: entries expire and fail the run again.
        (src / "mod.py").write_text(CLEAN, encoding="utf-8")
        capsys.readouterr()
        assert run(tmp_path, src) == 1
        assert "expired" in capsys.readouterr().out

        # 6. Updating prunes the expired entries; clean from then on.
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["entries"] == []
        assert run(tmp_path, src) == 0

    def test_update_preserves_existing_reasons(self, tmp_path):
        src = project(tmp_path)
        baseline = tmp_path / "bl.json"
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["entries"]:
            entry["reason"] = "kept on purpose"
        baseline.write_text(json.dumps(data), encoding="utf-8")

        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert {e["reason"] for e in data["entries"]} == {"kept on purpose"}

    def test_no_baseline_flag_ignores_file(self, tmp_path):
        src = project(tmp_path)
        assert run(tmp_path, src, "--update-baseline") == 0
        assert run(tmp_path, src, "--no-baseline") == 1


class TestBaselineExpiry:
    """Entries can carry an `expires` date enforced via --today."""

    def _baselined(self, tmp_path, expires):
        src = project(tmp_path)
        assert run(tmp_path, src, "--update-baseline") == 0
        baseline = tmp_path / "bl.json"
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["entries"]:
            entry["reason"] = "deadline-tracked debt"
            entry["expires"] = expires
        baseline.write_text(json.dumps(data), encoding="utf-8")
        return src, baseline

    def test_overdue_entry_fails_the_run(self, tmp_path, capsys):
        src, __ = self._baselined(tmp_path, "2026-01-01")
        capsys.readouterr()
        assert run(tmp_path, src, "--today", "2026-06-01") == 1
        out = capsys.readouterr().out
        assert "past its expiry" in out
        assert "2026-01-01" in out

    def test_future_deadline_still_clean(self, tmp_path):
        src, __ = self._baselined(tmp_path, "2027-01-01")
        assert run(tmp_path, src, "--today", "2026-06-01") == 0

    def test_without_today_expires_is_inert(self, tmp_path):
        src, __ = self._baselined(tmp_path, "2026-01-01")
        assert run(tmp_path, src) == 0

    def test_bad_today_format_exits_two(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src, "--today", "June 1st") == 2
        assert "--today" in capsys.readouterr().err

    def test_update_baseline_carries_expires(self, tmp_path):
        src, baseline = self._baselined(tmp_path, "2027-01-01")
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["entries"]
        assert {e["expires"] for e in data["entries"]} == {"2027-01-01"}

    def test_overdue_count_in_json_summary(self, tmp_path, capsys):
        src, __ = self._baselined(tmp_path, "2026-01-01")
        capsys.readouterr()
        code = run(
            tmp_path, src, "--today", "2026-06-01", "--format", "json"
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["overdue_baseline"] >= 1
        assert payload["overdue_baseline"]


class TestRepoIsClean:
    """Acceptance: the committed tree passes its own linter."""

    def test_src_tree_clean_under_committed_baseline(self, capsys):
        code = main(
            [
                str(REPO_ROOT / "src"),
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(REPO_ROOT / "reprolint-baseline.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 open" in out

    def test_committed_baseline_reasons_are_real(self):
        data = json.loads(
            (REPO_ROOT / "reprolint-baseline.json").read_text(encoding="utf-8")
        )
        for entry in data["entries"]:
            reason = entry["reason"].strip()
            assert reason and reason != PLACEHOLDER_REASON, entry


class TestExplain:
    def test_known_rule_prints_doc(self, capsys):
        assert main(["--explain", "D106"]) == 0
        out = capsys.readouterr().out
        assert "D106" in out
        assert "Rationale:" in out
        assert "Example (fires the rule):" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--explain", "Z999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err and "D101" in err

    def test_catalog_is_complete(self, capsys):
        """Every registered rule explains itself: doc, rationale, example."""
        from repro.analysis.engine import rule_registry

        for rule_id, cls in sorted(rule_registry().items()):
            assert cls.title, f"{rule_id} has no title"
            assert cls.__doc__, f"{rule_id} has no docstring"
            assert cls.rationale, f"{rule_id} has no rationale"
            assert cls.example, f"{rule_id} has no example"
            assert main(["--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert "Rationale:" in out
            assert "Example (fires the rule):" in out


class TestSarifOutput:
    def test_sarif_document_shape(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src, "--format", "sarif") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (sarif_run,) = doc["runs"]
        assert sarif_run["tool"]["driver"]["name"] == "reprolint"
        results = [
            r for r in sarif_run["results"] if r["ruleId"] == "D101"
        ]
        assert results
        (location,) = results[0]["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "src/mod.py"
        rule_ids = [r["id"] for r in sarif_run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "D101" in rule_ids

    def test_clean_tree_emits_empty_results(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src, "--format", "sarif") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_baselined_findings_are_not_results(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src, "--update-baseline") == 0
        capsys.readouterr()
        baseline = json.loads(
            (tmp_path / "bl.json").read_text(encoding="utf-8")
        )
        for entry in baseline["entries"]:
            entry["reason"] = "seeded for the SARIF reporter test"
        (tmp_path / "bl.json").write_text(
            json.dumps(baseline), encoding="utf-8"
        )
        assert run(tmp_path, src, "--format", "sarif") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestIncrementalCli:
    def test_cold_and_warm_cache_output_byte_identical(
        self, tmp_path, capsys
    ):
        src = project(tmp_path)
        cache = tmp_path / "cache.json"
        argv = ["--format", "json", "--cache", str(cache)]
        assert run(tmp_path, src, *argv) == 1
        cold = capsys.readouterr().out
        assert cache.exists()
        assert run(tmp_path, src, *argv) == 1
        assert capsys.readouterr().out == cold
        assert run(tmp_path, src, "--format", "json") == 1
        assert capsys.readouterr().out == cold  # and identical to no-cache


def _git(cwd, *argv):
    import subprocess

    subprocess.run(
        ["git", "-C", str(cwd), *argv],
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.com",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.com",
            "HOME": str(cwd),
        },
    )


class TestChangedOnly:
    def _repo(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "stable.py").write_text(DIRTY, encoding="utf-8")
        (src / "touched.py").write_text(CLEAN, encoding="utf-8")
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-qm", "seed")
        return src

    def test_scans_only_files_the_diff_names(self, tmp_path, capsys):
        src = self._repo(tmp_path)
        (src / "touched.py").write_text(
            CLEAN + "\n\n_extra = double(2)\n", encoding="utf-8"
        )
        assert run(tmp_path, src, "--changed-only") == 0
        out = capsys.readouterr().out
        # stable.py's D101 violation is out of scope: only 1 file scanned.
        assert "1 files" in out
        assert "D101" not in out

    def test_untracked_files_are_in_scope(self, tmp_path, capsys):
        src = self._repo(tmp_path)
        (src / "fresh.py").write_text(DIRTY, encoding="utf-8")
        assert run(tmp_path, src, "--changed-only") == 1
        out = capsys.readouterr().out
        assert "src/fresh.py" in out and "src/stable.py" not in out

    def test_matches_scripted_git_diff(self, tmp_path):
        from repro.analysis.cli import _changed_relpaths

        src = self._repo(tmp_path)
        (src / "touched.py").write_text("TOUCHED = 1\n", encoding="utf-8")
        (src / "fresh.py").write_text("FRESH = 1\n", encoding="utf-8")
        changed = _changed_relpaths(tmp_path, "HEAD")
        assert changed == {"src/touched.py", "src/fresh.py"}

    def test_unchanged_baseline_entries_survive_partial_scan(
        self, tmp_path, capsys
    ):
        src = self._repo(tmp_path)
        # Baseline stable.py's findings, then change only touched.py: the
        # partial run must neither expire nor re-match stable.py's entry,
        # and --update-baseline must carry it over verbatim.
        assert run(tmp_path, src, "--update-baseline") == 0
        baseline = tmp_path / "bl.json"
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["entries"]:
            entry["reason"] = "kept"
        baseline.write_text(json.dumps(data), encoding="utf-8")

        (src / "touched.py").write_text(
            CLEAN + "\n\n_extra = double(2)\n", encoding="utf-8"
        )
        capsys.readouterr()
        assert run(tmp_path, src, "--changed-only") == 0
        assert "expired" not in capsys.readouterr().out

        assert run(tmp_path, src, "--changed-only", "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["entries"], "out-of-scope entries must be carried over"
        assert {e["reason"] for e in data["entries"]} == {"kept"}

    def test_no_git_repo_exits_two(self, tmp_path, capsys, monkeypatch):
        src = project(tmp_path, CLEAN)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nope"))
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        assert run(tmp_path, src, "--changed-only") == 2
        assert "--changed-only" in capsys.readouterr().err
