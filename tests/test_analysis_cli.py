"""The reprolint CLI: exit codes, JSON output, and the baseline workflow."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import PLACEHOLDER_REASON
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

CLEAN = "VALUE = 1\n\n\ndef double(x):\n    return 2 * x\n"
DIRTY = "import random\n\n\ndef roll():\n    return random.random()\n"


def project(tmp_path, source=DIRTY):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(source, encoding="utf-8")
    return src


def run(tmp_path, src, *extra, baseline="bl.json"):
    argv = [str(src), "--root", str(tmp_path), "--baseline",
            str(tmp_path / baseline), *extra]
    return main(argv)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src) == 0
        assert "— clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src) == 1
        assert "D101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        assert run(tmp_path, src, "--rules", "XYZ9") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        src = project(tmp_path, CLEAN)
        (tmp_path / "bl.json").write_text("{not json", encoding="utf-8")
        assert run(tmp_path, src) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D101", "D102", "D103", "D104", "C201", "T301"):
            assert rule_id in out

    def test_rules_subset_filters(self, tmp_path):
        src = project(tmp_path)  # D101 violation only
        assert run(tmp_path, src, "--rules", "D104") == 0


class TestJsonOutput:
    def test_json_format_parses_and_reports(self, tmp_path, capsys):
        src = project(tmp_path)
        assert run(tmp_path, src, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["open"] >= 1
        assert payload["findings"][0]["rule"] == "D101"
        assert payload["findings"][0]["path"] == "src/mod.py"


class TestBaselineWorkflow:
    """The full add → justify → expire → prune lifecycle."""

    def test_lifecycle(self, tmp_path, capsys):
        src = project(tmp_path)
        baseline = tmp_path / "bl.json"

        # 1. Dirty tree, no baseline: fails.
        assert run(tmp_path, src) == 1

        # 2. Record the baseline: exits 0 and stamps the placeholder.
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert [e["reason"] for e in data["entries"]] == [
            PLACEHOLDER_REASON
        ] * len(data["entries"])

        # 3. Placeholder reasons are not a free pass: still fails.
        capsys.readouterr()
        assert run(tmp_path, src) == 1
        assert "needs a real" in capsys.readouterr().out

        # 4. A human writes real reasons: now clean.
        for entry in data["entries"]:
            entry["reason"] = "legacy shim, tracked in issue 7"
        baseline.write_text(json.dumps(data), encoding="utf-8")
        assert run(tmp_path, src) == 0

        # 5. The code gets fixed: entries expire and fail the run again.
        (src / "mod.py").write_text(CLEAN, encoding="utf-8")
        capsys.readouterr()
        assert run(tmp_path, src) == 1
        assert "expired" in capsys.readouterr().out

        # 6. Updating prunes the expired entries; clean from then on.
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["entries"] == []
        assert run(tmp_path, src) == 0

    def test_update_preserves_existing_reasons(self, tmp_path):
        src = project(tmp_path)
        baseline = tmp_path / "bl.json"
        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["entries"]:
            entry["reason"] = "kept on purpose"
        baseline.write_text(json.dumps(data), encoding="utf-8")

        assert run(tmp_path, src, "--update-baseline") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert {e["reason"] for e in data["entries"]} == {"kept on purpose"}

    def test_no_baseline_flag_ignores_file(self, tmp_path):
        src = project(tmp_path)
        assert run(tmp_path, src, "--update-baseline") == 0
        assert run(tmp_path, src, "--no-baseline") == 1


class TestRepoIsClean:
    """Acceptance: the committed tree passes its own linter."""

    def test_src_tree_clean_under_committed_baseline(self, capsys):
        code = main(
            [
                str(REPO_ROOT / "src"),
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(REPO_ROOT / "reprolint-baseline.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 open" in out

    def test_committed_baseline_reasons_are_real(self):
        data = json.loads(
            (REPO_ROOT / "reprolint-baseline.json").read_text(encoding="utf-8")
        )
        for entry in data["entries"]:
            reason = entry["reason"].strip()
            assert reason and reason != PLACEHOLDER_REASON, entry
