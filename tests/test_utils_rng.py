"""Tests for the deterministic RNG helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_same_parts_same_seed(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_different_parts_different_seed(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_returns_64_bit_int(self):
        seed = derive_seed("anything")
        assert 0 <= seed < 2**64

    @given(st.text(), st.integers())
    def test_stable_for_arbitrary_parts(self, text, number):
        assert derive_seed(text, number) == derive_seed(text, number)


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_string_seed_supported(self):
        a = DeterministicRng("hello")
        b = DeterministicRng("hello")
        assert a.randint(0, 1000) == b.randint(0, 1000)

    def test_tuple_seed_supported(self):
        a = DeterministicRng(("x", 1))
        b = DeterministicRng(("x", 1))
        assert a.random() == b.random()

    def test_fork_independent_of_parent_consumption(self):
        parent_a = DeterministicRng(7)
        parent_b = DeterministicRng(7)
        parent_a.random()  # consume from one parent only
        assert parent_a.fork("child").random() == parent_b.fork("child").random()

    def test_forks_with_different_names_differ(self):
        parent = DeterministicRng(7)
        assert parent.fork("a").random() != parent.fork("b").random()

    def test_sample_clamps_k(self):
        rng = DeterministicRng(1)
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffled_leaves_input_untouched(self):
        rng = DeterministicRng(3)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffled(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_choice_and_weighted_choice(self):
        rng = DeterministicRng(5)
        assert rng.choice([9]) == 9
        assert rng.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_coin_extremes(self):
        rng = DeterministicRng(11)
        assert not any(rng.coin(0.0) for _ in range(20))
        assert all(rng.coin(1.0) for _ in range(20))

    @given(st.integers(min_value=0, max_value=2**32))
    def test_randint_bounds(self, seed):
        rng = DeterministicRng(seed)
        value = rng.randint(3, 9)
        assert 3 <= value <= 9
