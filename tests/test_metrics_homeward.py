"""Every worker-mutated metrics field survives pickle -> adopt.

The process backend's metrics story rests on one invariant: anything a
worker mutates on a :class:`MetricsRegistry` or :class:`MetricsObserver`
reaches the parent through the explicit homeward surface — pickled
per-source registries adopted with ``adopt_source``, plus the
``adopt_cache_stats`` dict.  reprolint's P602 rule checks this statically;
these tests check it dynamically, property-style: drive randomized (but
seeded) workloads, diff the mutated ``__dict__`` fields against a fresh
instance, and assert each one either crosses the pickle boundary intact
or is explicitly accounted for by a documented side channel.

A new field added to either class without a homeward path fails here
with a message naming the field — the same regression shape P602 flags
at lint time.
"""

import pickle
import random

import pytest

from repro.core.cache import PreprocessCache
from repro.core.pipeline import PipelineEvent
from repro.metrics import MetricsObserver, MetricsRegistry

#: Observer fields that deliberately do NOT ship through pickle->adopt,
#: each with the side channel that carries its information instead.  A
#: field missing from here *and* from the adopt surface is a bug.
OBSERVER_SIDE_CHANNELS = {
    # Live cache handles cannot cross the boundary; their counters ship
    # as a plain dict through adopt_cache_stats (summed on the parent).
    "_caches": "adopt_cache_stats",
}

#: Fields that exist for intra-process safety only and carry no data.
TRANSPORT_EXEMPT = {"_lock"}


def _mutated_fields(instance, fresh) -> set[str]:
    """Names of ``__dict__`` entries differing from a fresh instance."""
    mutated = set()
    for name, value in instance.__dict__.items():
        if name in TRANSPORT_EXEMPT:
            continue
        if name not in fresh.__dict__ or fresh.__dict__[name] != value:
            mutated.add(name)
    return mutated


def _drive_registry(registry: MetricsRegistry, seed: int) -> None:
    """A randomized-but-seeded workload touching every registry field."""
    rng = random.Random(seed)
    for index in range(rng.randint(3, 12)):
        registry.count(f"counter.{index % 4}", rng.randint(1, 9))
        registry.gauge(f"gauge.{index % 3}", rng.random())
        registry.observe(f"timer.{index % 2}", rng.random())


def _drive_observer(observer: MetricsObserver, seed: int) -> list[str]:
    """Feed pipeline events for a few sources; returns the source order."""
    rng = random.Random(seed)
    sources = [f"src-{index}" for index in range(rng.randint(2, 4))]
    observer.note_source_order(sources)
    for source in sources:
        for stage in ("preprocess", "annotate", "wrapping"):
            observer.on_stage_end(
                PipelineEvent(
                    kind="stage_end",
                    source=source,
                    stage=stage,
                    elapsed=rng.random(),
                    counters={"objects_extracted": rng.randint(0, 5)},
                ),
                None,
            )
        if rng.random() < 0.5:
            observer.on_stage_retry(
                PipelineEvent(
                    kind="stage_retry", source=source, stage="annotate"
                ),
                None,
            )
        observer.on_pipeline_end(
            PipelineEvent(
                kind="pipeline_end",
                source=source,
                elapsed=rng.random(),
                discarded=rng.random() < 0.3,
            ),
            None,
        )
    return sources


class TestRegistryHomeward:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_mutated_field_is_in_getstate(self, seed):
        registry = MetricsRegistry()
        _drive_registry(registry, seed)
        mutated = _mutated_fields(registry, MetricsRegistry())
        assert mutated, "workload must touch at least one field"
        shipped = {f"_{key}" for key in registry.__getstate__()}
        missing = mutated - shipped
        assert not missing, (
            f"MetricsRegistry fields {sorted(missing)} are mutated but "
            "absent from __getstate__ — worker-side updates would be "
            "lost on merge (add them to __getstate__/__setstate__)"
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_pickle_roundtrip_preserves_observations(self, seed):
        registry = MetricsRegistry()
        _drive_registry(registry, seed)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        # The full per-field state matches, not just the summary.
        assert clone.__getstate__() == registry.__getstate__()


class TestObserverHomeward:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_mutated_field_has_a_homeward_path(self, seed):
        observer = MetricsObserver()
        _drive_observer(observer, seed)
        cache = PreprocessCache()
        observer.observe_cache(cache)
        mutated = _mutated_fields(observer, MetricsObserver())
        # Fields whose contents ride the pickle->adopt path.
        adopted = {"_per_source", "_source_order", "_adopted_cache_stats"}
        unaccounted = mutated - adopted - set(OBSERVER_SIDE_CHANNELS)
        assert not unaccounted, (
            f"MetricsObserver fields {sorted(unaccounted)} are mutated "
            "during a run but have no homeward path — route them through "
            "adopt_* or document a side channel in OBSERVER_SIDE_CHANNELS"
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_pickle_adopt_reproduces_worker_snapshot(self, seed):
        # The exact parent-side merge the process backend performs:
        # note the order, adopt pickled per-source registries, adopt the
        # worker's cache stats as a dict.
        worker = MetricsObserver()
        sources = _drive_observer(worker, seed)
        worker.adopt_cache_stats({"hits": 3, "misses": 2, "races": 0,
                                  "entries": 1})
        parent = MetricsObserver()
        parent.note_source_order(sources)
        for source in worker.sources():
            shipped = pickle.loads(
                pickle.dumps(worker.source_registry(source))
            )
            parent.adopt_source(source, shipped)
        parent.adopt_cache_stats(worker.cache_stats())
        assert parent.snapshot() == worker.snapshot()

    def test_side_channel_names_are_real_methods(self):
        for field, channel in OBSERVER_SIDE_CHANNELS.items():
            assert field in MetricsObserver().__dict__
            assert callable(getattr(MetricsObserver, channel))
