"""Tests for the YAGO-like ontology store."""

from repro.kb.ontology import Fact, Ontology


class TestFacts:
    def test_instance_lookup(self):
        ontology = Ontology()
        ontology.add_instance("Metallica", "Band", 0.9)
        assert ontology.instances_of("Band") == {"Metallica": 0.9}

    def test_class_names_case_insensitive(self):
        ontology = Ontology()
        ontology.add_instance("Metallica", "Band")
        assert "Metallica" in ontology.instances_of("band")
        assert "Metallica" in ontology.instances_of("BAND")

    def test_entity_surface_case_preserved(self):
        ontology = Ontology()
        ontology.add_instance("Metallica", "Band")
        assert ontology.classes_of("Metallica") == {"band"}
        assert ontology.classes_of("metallica") == set()

    def test_duplicate_instance_keeps_max_confidence(self):
        ontology = Ontology()
        ontology.add_instance("X", "C", 0.5)
        ontology.add_instance("X", "C", 0.9)
        ontology.add_instance("X", "C", 0.3)
        assert ontology.instances_of("C")["X"] == 0.9

    def test_subclass_edges(self):
        ontology = Ontology()
        ontology.add_subclass("Band", "Artist")
        assert ontology.superclasses_of("Band") == {"artist"}
        assert ontology.subclasses_of("Artist") == {"band"}

    def test_related_is_undirected(self):
        ontology = Ontology()
        ontology.add_related("Band", "Artist")
        assert ontology.related_classes("Artist") == {"band"}
        assert ontology.related_classes("Band") == {"artist"}

    def test_bulk_load_and_len(self):
        ontology = Ontology()
        ontology.bulk_load(
            [
                Fact("A", "isInstanceOf", "C"),
                Fact("C", "subClassOf", "D"),
            ]
        )
        assert len(ontology) == 2
        assert len(list(ontology.facts())) == 2

    def test_classes_union(self):
        ontology = Ontology()
        ontology.add_instance("A", "C1")
        ontology.add_subclass("C2", "C3")
        ontology.add_related("C4", "C5")
        assert {"c1", "c2", "c3", "c4", "c5"} <= ontology.classes()

    def test_term_frequency_default(self):
        ontology = Ontology()
        assert ontology.term_frequency("unknown") == 1.0
        ontology.set_term_frequency("common", 5.0)
        assert ontology.term_frequency("common") == 5.0

    def test_unknown_class_empty(self):
        assert Ontology().instances_of("Nothing") == {}
