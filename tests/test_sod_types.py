"""Tests for the SOD type algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SodError
from repro.sod.types import (
    DisjunctionType,
    EntityType,
    Multiplicity,
    SetType,
    TupleType,
    arity,
    entity_types,
    iter_types,
    required_entity_types,
)


class TestMultiplicity:
    def test_shorthands(self):
        assert str(Multiplicity.star()) == "*"
        assert str(Multiplicity.plus()) == "+"
        assert str(Multiplicity.optional()) == "?"
        assert str(Multiplicity.exactly_one()) == "1"
        assert str(Multiplicity.range(2, 5)) == "2-5"

    def test_admits(self):
        assert Multiplicity.star().admits(0)
        assert Multiplicity.star().admits(100)
        assert not Multiplicity.plus().admits(0)
        assert Multiplicity.optional().admits(1)
        assert not Multiplicity.optional().admits(2)
        assert Multiplicity.range(2, 4).admits(3)
        assert not Multiplicity.range(2, 4).admits(5)

    def test_invalid_bounds(self):
        with pytest.raises(SodError):
            Multiplicity(-1, 2)
        with pytest.raises(SodError):
            Multiplicity(3, 2)

    def test_optional_allowed(self):
        assert Multiplicity.star().optional_allowed
        assert not Multiplicity.plus().optional_allowed

    @given(st.integers(0, 10), st.integers(0, 10), st.integers(0, 20))
    def test_admits_consistent_with_bounds(self, low, span, count):
        multiplicity = Multiplicity(low, low + span)
        assert multiplicity.admits(count) == (low <= count <= low + span)


class TestEntityType:
    def test_defaults(self):
        entity = EntityType("artist")
        assert entity.recognizer == "artist"
        assert entity.kind == "isInstanceOf"
        assert not entity.optional

    def test_empty_name_rejected(self):
        with pytest.raises(SodError):
            EntityType("")

    def test_bad_kind_rejected(self):
        with pytest.raises(SodError):
            EntityType("x", kind="magic")


class TestTupleType:
    def test_needs_components(self):
        with pytest.raises(SodError):
            TupleType("t", ())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SodError):
            TupleType("t", (EntityType("a"), EntityType("a")))

    def test_str(self):
        t = TupleType("concert", (EntityType("artist"), EntityType("date")))
        assert str(t) == "concert(artist, date)"


class TestTraversal:
    def concert_sod(self):
        return TupleType(
            "concert",
            (
                EntityType("artist"),
                EntityType("date", kind="predefined"),
                TupleType(
                    "location",
                    (
                        EntityType("theater"),
                        EntityType("address", kind="predefined", optional=True),
                    ),
                ),
            ),
        )

    def test_iter_types_preorder(self):
        names = [getattr(t, "name", "?") for t in iter_types(self.concert_sod())]
        assert names == ["concert", "artist", "date", "location", "theater", "address"]

    def test_entity_types(self):
        assert [e.name for e in entity_types(self.concert_sod())] == [
            "artist",
            "date",
            "theater",
            "address",
        ]

    def test_arity(self):
        assert arity(self.concert_sod()) == 4

    def test_required_excludes_optional(self):
        required = {e.name for e in required_entity_types(self.concert_sod())}
        assert required == {"artist", "date", "theater"}

    def test_required_excludes_optional_set_members(self):
        sod = TupleType(
            "book",
            (
                EntityType("title"),
                SetType("authors", EntityType("author"), Multiplicity.star()),
            ),
        )
        required = {e.name for e in required_entity_types(sod)}
        assert required == {"title"}

    def test_required_keeps_mandatory_set_members(self):
        sod = TupleType(
            "book",
            (
                EntityType("title"),
                SetType("authors", EntityType("author"), Multiplicity.plus()),
            ),
        )
        required = {e.name for e in required_entity_types(sod)}
        assert required == {"title", "author"}

    def test_disjunction_members_optional(self):
        sod = DisjunctionType("either", EntityType("a"), EntityType("b"))
        assert required_entity_types(sod) == []

    def test_entity_types_deduplicated(self):
        sod = DisjunctionType("either", EntityType("a"), EntityType("a"))
        assert len(entity_types(sod)) == 1
