"""Tests for equivalence classes and validity."""

from repro.htmlkit.tidy import tidy
from repro.wrapper.equivalence import (
    find_equivalence_classes,
    record_class_candidates,
)
from repro.wrapper.tokens import tokenize_element


def pages_from(sources):
    return [
        tokenize_element(tidy(source).find("body"), page_index=i)
        for i, source in enumerate(sources)
    ]


LIST_PAGES = [
    "<body><ul>"
    + "".join(
        f"<li><div class='a'>x{i}</div><div class='b'>y{i}</div></li>"
        for i in range(n)
    )
    + "</ul></body>"
    for n in (3, 4, 5)
]


class TestEquivalenceClasses:
    def test_record_roles_share_class(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        record_class = next(
            eq
            for eq in classes
            if any(role[1] == "li" for role in eq.roles)
        )
        tags = {(role[1], role[3]) for role in record_class.roles}
        assert ("li", "") in tags
        assert ("div", "a") in tags
        assert ("div", "b") in tags

    def test_vector_matches_record_counts(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        record_class = next(
            eq for eq in classes if any(role[1] == "li" for role in eq.roles)
        )
        assert record_class.vector.counts == (3, 4, 5)

    def test_valid_class_is_ordered(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        record_class = next(
            eq for eq in classes if any(role[1] == "li" for role in eq.roles)
        )
        assert record_class.valid
        # Document order: li open comes before div.a open.
        li_index = record_class.ordered_roles.index(("open", "li", record_class.ordered_roles[0][2], ""))
        assert li_index == 0

    def test_inconsistent_order_invalid(self):
        # Two roles that swap order between pages cannot share a class.
        pages = pages_from(
            [
                "<body><i>x</i><b>y</b></body>",
                "<body><b>y</b><i>x</i></body>",
            ]
        )
        classes = find_equivalence_classes(pages, min_support=2)
        mixed = [
            eq
            for eq in classes
            if {role[1] for role in eq.roles} >= {"i", "b"}
        ]
        assert all(not eq.valid for eq in mixed)

    def test_spans_tile_records(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        record_class = next(
            eq for eq in classes if any(role[1] == "li" for role in eq.roles)
        )
        spans = record_class.spans(pages[0])
        assert len(spans) == 3  # three records on the first page
        # Spans are disjoint and ordered.
        for (s1, e1), (s2, __) in zip(spans, spans[1:]):
            assert s1 < e1 <= s2

    def test_sorting_valid_first(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        validity = [eq.valid for eq in classes]
        assert validity == sorted(validity, reverse=True)


class TestRecordCandidates:
    def test_candidates_require_open_tag(self):
        pages = pages_from(LIST_PAGES)
        classes = find_equivalence_classes(pages, min_support=3)
        for candidate in record_class_candidates(classes):
            assert any(role[0] == "open" for role in candidate.roles)

    def test_candidates_all_valid(self):
        pages = pages_from(LIST_PAGES)
        candidates = record_class_candidates(
            find_equivalence_classes(pages, min_support=3)
        )
        assert all(eq.valid for eq in candidates)
