"""Tests for SOD instance trees and validation."""

from repro.sod.dsl import parse_sod
from repro.sod.instances import ObjectInstance, validate_instance


def concert_sod():
    return parse_sod(
        "concert(artist, date<kind=predefined>, "
        "location(theater, address<kind=predefined>?))"
    )


def book_sod():
    return parse_sod("book(title, price<kind=predefined>, authors:{author}+)")


class TestFlatten:
    def test_flat_view(self):
        instance = ObjectInstance(
            values={
                "artist": "Muse",
                "date": "May 11",
                "location": {"theater": "MSG", "address": "4 Penn Plaza"},
            }
        )
        assert instance.flat() == {
            "artist": ["Muse"],
            "date": ["May 11"],
            "theater": ["MSG"],
            "address": ["4 Penn Plaza"],
        }

    def test_set_values_flatten_under_set_name(self):
        instance = ObjectInstance(values={"authors": ["A B", "C D"]})
        assert instance.flat() == {"authors": ["A B", "C D"]}

    def test_normalized_flat(self):
        instance = ObjectInstance(values={"price": "$12.99"})
        assert instance.normalized_flat() == {"price": ["12.99"]}


class TestValidation:
    def test_valid_concert(self):
        instance = ObjectInstance(
            values={
                "artist": "Muse",
                "date": "May 11",
                "location": {"theater": "MSG", "address": "4 Penn Plaza"},
            }
        )
        assert validate_instance(concert_sod(), instance).ok

    def test_optional_attribute_may_be_absent(self):
        instance = ObjectInstance(
            values={
                "artist": "Muse",
                "date": "May 11",
                "location": {"theater": "MSG"},
            }
        )
        assert validate_instance(concert_sod(), instance).ok

    def test_missing_required_entity(self):
        instance = ObjectInstance(
            values={"date": "May 11", "location": {"theater": "MSG"}}
        )
        report = validate_instance(concert_sod(), instance)
        assert not report.ok
        assert any("artist" in issue.message for issue in report.issues)

    def test_empty_string_invalid(self):
        instance = ObjectInstance(
            values={"artist": " ", "date": "May 11", "location": {"theater": "M"}}
        )
        assert not validate_instance(concert_sod(), instance).ok

    def test_set_multiplicity_enforced(self):
        instance = ObjectInstance(
            values={"title": "T", "price": "$5", "authors": []}
        )
        report = validate_instance(book_sod(), instance)
        assert not report.ok  # authors multiplicity is +

    def test_valid_book_with_authors(self):
        instance = ObjectInstance(
            values={"title": "T", "price": "$5", "authors": ["A", "B"]}
        )
        assert validate_instance(book_sod(), instance).ok

    def test_set_must_be_list(self):
        instance = ObjectInstance(
            values={"title": "T", "price": "$5", "authors": "A"}
        )
        assert not validate_instance(book_sod(), instance).ok

    def test_unexpected_field_flagged(self):
        instance = ObjectInstance(
            values={
                "title": "T",
                "price": "$5",
                "authors": ["A"],
                "mystery": "x",
            }
        )
        report = validate_instance(book_sod(), instance)
        assert any("mystery" in issue.message for issue in report.issues)

    def test_bounded_multiplicity(self):
        sod = parse_sod("t(tags:{tag}1-2)")
        too_many = ObjectInstance(values={"tags": ["a", "b", "c"]})
        assert not validate_instance(sod, too_many).ok
        just_right = ObjectInstance(values={"tags": ["a", "b"]})
        assert validate_instance(sod, just_right).ok

    def test_disjunction_either_branch(self):
        sod = parse_sod("t(choice(a | b))")
        as_a = ObjectInstance(values={"choice": "value"})
        assert validate_instance(sod, as_a).ok

    def test_issue_paths_reported(self):
        instance = ObjectInstance(values={"artist": "M", "date": "D"})
        report = validate_instance(concert_sod(), instance)
        assert all(issue.path for issue in report.issues)
