"""HTML entities must survive the full pipeline.

Values containing ``&``, quotes and angle brackets get entity-encoded by
any real template engine; extraction must return the decoded surface form.
"""

from repro.annotation.annotator import annotate_page
from repro.htmlkit import clean_tree, tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer
from repro.sod.dsl import parse_sod
from repro.wrapper import extract_objects, generate_wrapper
from repro.wrapper.generate import WrapperConfig

ARTISTS = [
    "Foxes & Wolves",
    "The \"Quiet\" Ones",
    "Less < More",
    "Salt & Stone",
]


def page(artist, price):
    import html

    return (
        "<html><body><div id='m'>"
        f"<li><div class='a'>{html.escape(artist)}</div>"
        f"<div class='p'>{price}</div></li>"
        "<li><div class='a'>Filler Act</div><div class='p'>$1.00</div></li>"
        "</div></body></html>"
    )


class TestEntityRoundtrip:
    def test_ampersand_value_extracted_decoded(self):
        pages = [
            clean_tree(tidy(page(artist, f"${i + 2}.00")))
            for i, artist in enumerate(ARTISTS)
        ]
        gazetteer = GazetteerRecognizer("artist", ARTISTS + ["Filler Act"])
        price = predefined_recognizer("price", type_name="price")
        for p in pages:
            annotate_page(p, [gazetteer, price])
        sod = parse_sod("t(artist, price<kind=predefined>)")
        wrapper = generate_wrapper("entities", pages, sod, WrapperConfig(support=2))
        objects = extract_objects(wrapper, pages)
        artists = {o.values["artist"] for o in objects}
        assert "Foxes & Wolves" in artists
        assert 'The "Quiet" Ones' in artists
        assert "Less < More" in artists

    def test_gazetteer_matches_encoded_page_text(self):
        # The page carries &amp;; after tidy the DOM holds '&' and the
        # dictionary entry matches.
        root = clean_tree(tidy(page("Foxes & Wolves", "$3.00")))
        gazetteer = GazetteerRecognizer("artist", ["Foxes & Wolves"])
        text = root.text_content()
        assert "Foxes & Wolves" in text
        assert gazetteer.find(text)
