"""Tests for Match and overlap pruning."""

import pytest

from repro.recognizers.base import Match, prune_overlaps


def m(start, end, type_name="t", confidence=1.0, value=None):
    return Match(
        start=start,
        end=end,
        value=value or "x" * (end - start),
        type_name=type_name,
        confidence=confidence,
    )


class TestMatch:
    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Match(start=5, end=3, value="x", type_name="t")
        with pytest.raises(ValueError):
            Match(start=-1, end=3, value="x", type_name="t")

    def test_length(self):
        assert m(2, 7).length == 5

    def test_overlaps(self):
        assert m(0, 5).overlaps(m(4, 8))
        assert not m(0, 5).overlaps(m(5, 8))  # touching is not overlapping
        assert m(2, 3).overlaps(m(0, 10))


class TestPruneOverlaps:
    def test_longest_wins_within_type(self):
        kept = prune_overlaps([m(0, 4), m(0, 10)])
        assert kept == [m(0, 10)]

    def test_confidence_breaks_length_ties(self):
        a = m(0, 5, confidence=0.5)
        b = m(0, 5, confidence=0.9)
        assert prune_overlaps([a, b]) == [b]

    def test_disjoint_matches_all_kept(self):
        kept = prune_overlaps([m(0, 3), m(5, 8), m(10, 12)])
        assert len(kept) == 3

    def test_different_types_never_pruned(self):
        a = m(0, 10, type_name="artist")
        b = m(0, 5, type_name="date")
        kept = prune_overlaps([a, b])
        assert len(kept) == 2

    def test_output_sorted_by_position(self):
        kept = prune_overlaps([m(10, 12), m(0, 3)])
        assert [k.start for k in kept] == [0, 10]

    def test_empty(self):
        assert prune_overlaps([]) == []

    def test_chain_of_overlaps(self):
        # 0-6 beats 4-8; 4-8 out; 7-9 survives (no overlap with 0-6).
        kept = prune_overlaps([m(0, 6), m(4, 8), m(7, 9)])
        assert [(k.start, k.end) for k in kept] == [(0, 6), (7, 9)]
