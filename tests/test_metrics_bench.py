"""BENCH artifacts: sequencing, capture schema, regression comparison, CLI."""

import copy
import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.metrics.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    BenchSession,
    bench_files,
    compare_documents,
    latest_bench,
    load_bench,
    next_seq,
    write_bench,
)


def fixture_document(scale=0.1, pc=0.8, pp=0.9, wrap_mean=0.02, stage_mean=0.01):
    """A minimal but schema-complete BENCH document for compare tests."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": "2026-01-01T00:00:00+00:00",
        "python": "3.11.0",
        "platform": "linux",
        "config": {
            "scale": scale,
            "coverage": 0.2,
            "systems": ["objectrunner"],
            "sources": 49,
            "seed": {"sampling_seed": 7, "pythonhashseed": ""},
        },
        "process": {"peak_rss_bytes": 100_000_000},
        "cache": {"hits": 10, "misses": 5, "races": 0, "entries": 5},
        "systems": {
            "objectrunner": {
                "domains": {
                    "concerts": {
                        "pc": pc,
                        "pp": pp,
                        "objects_total": 100,
                        "objects_correct": int(pc * 100),
                        "objects_partial": 0,
                        "objects_incorrect": 10,
                        "sources": 9,
                        "sources_discarded": 0,
                    }
                },
                "wrap_seconds": {
                    "count": 9, "total": wrap_mean * 9, "min": wrap_mean,
                    "max": wrap_mean, "mean": wrap_mean, "p50": wrap_mean,
                    "p95": wrap_mean,
                },
                "metrics": {
                    "counters": {"runs": 9},
                    "gauges": {},
                    "timers": {
                        "stage.wrapping": {
                            "count": 9, "total": stage_mean * 9,
                            "min": stage_mean, "max": stage_mean,
                            "mean": stage_mean, "p50": stage_mean,
                            "p95": stage_mean,
                        }
                    },
                },
                "cache": {"hits": 10, "misses": 5, "races": 0, "entries": 5},
            }
        },
    }


class TestSequencing:
    def test_empty_dir_starts_at_zero(self, tmp_path):
        assert next_seq(tmp_path) == 0
        assert latest_bench(tmp_path) is None
        assert bench_files(tmp_path) == []

    def test_sequence_numbers_sort_numerically(self, tmp_path):
        for seq in (0, 2, 10):
            write_bench(tmp_path / f"BENCH_{seq}.json", fixture_document())
        (tmp_path / "BENCH_junk.json").write_text("{}")
        files = bench_files(tmp_path)
        assert [seq for seq, __ in files] == [0, 2, 10]
        assert next_seq(tmp_path) == 11
        assert latest_bench(tmp_path).name == "BENCH_10.json"
        assert latest_bench(tmp_path, before=10).name == "BENCH_2.json"

    def test_write_and_load_round_trip(self, tmp_path):
        document = fixture_document()
        path = tmp_path / "BENCH_0.json"
        write_bench(path, document)
        assert load_bench(path) == document
        # Stable serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(document, indent=2, sort_keys=True) + "\n"


class TestCompare:
    def test_identical_documents_are_clean(self):
        document = fixture_document()
        comparison = compare_documents(document, copy.deepcopy(document))
        assert comparison.ok
        assert "no regressions" in comparison.render()

    def test_pc_drop_flags_regression(self):
        old = fixture_document(pc=0.8)
        new = fixture_document(pc=0.7)
        comparison = compare_documents(old, new)
        assert not comparison.ok
        assert any("Pc dropped" in r for r in comparison.regressions)

    def test_pc_drop_within_threshold_passes(self):
        old = fixture_document(pc=0.8)
        new = fixture_document(pc=0.79)
        assert compare_documents(old, new, quality_threshold=0.02).ok

    def test_pp_drop_flags_regression(self):
        comparison = compare_documents(
            fixture_document(pp=0.9), fixture_document(pp=0.5)
        )
        assert any("Pp dropped" in r for r in comparison.regressions)

    def test_timing_growth_flags_regression_at_same_scale(self):
        old = fixture_document(stage_mean=0.01)
        new = fixture_document(stage_mean=0.03)
        comparison = compare_documents(old, new, timing_threshold=0.5)
        assert any("stage.wrapping" in r for r in comparison.regressions)

    def test_wrap_growth_flags_regression(self):
        old = fixture_document(wrap_mean=0.02)
        new = fixture_document(wrap_mean=0.2)
        comparison = compare_documents(old, new)
        assert any("wrap_seconds" in r for r in comparison.regressions)

    def test_scale_mismatch_skips_timings_with_note(self):
        old = fixture_document(scale=0.1, stage_mean=0.01)
        new = fixture_document(scale=0.02, stage_mean=10.0)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any("scale differs" in note for note in comparison.notes)

    def test_quality_still_compared_across_scales(self):
        # 0.1 and 0.02 both run the same 49-source catalog (scale only
        # shrinks per-source volume), so the quality gate still fires.
        old = fixture_document(scale=0.1, pc=0.8)
        new = fixture_document(scale=0.02, pc=0.5)
        comparison = compare_documents(old, new)
        assert not comparison.ok

    def test_quality_across_scale_tiers_is_a_note(self):
        # The replica tier measures a different source population than
        # the base catalog; its rates cannot regress the catalog's.
        old = fixture_document(scale=0.1, pc=0.8)
        new = fixture_document(scale=1.0, pc=0.5)
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any(
            "source populations differ" in note for note in comparison.notes
        )
        assert any("Pc dropped" in note for note in comparison.notes)

    def test_quality_within_replica_tier_still_gates(self):
        old = fixture_document(scale=1.0, pc=0.8)
        new = fixture_document(scale=1.0, pc=0.5)
        comparison = compare_documents(old, new)
        assert not comparison.ok

    def test_quality_across_shard_slices_is_a_note(self):
        old = fixture_document(pc=0.8)
        new = fixture_document(pc=0.5)
        new["config"]["shard"] = "0/2"
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any(
            "source populations differ" in note for note in comparison.notes
        )

    def test_object_volume_drop_flags_regression(self):
        old = fixture_document()
        new = fixture_document()
        new["systems"]["objectrunner"]["domains"]["concerts"]["objects_total"] = 50
        comparison = compare_documents(old, new)
        assert any("objects_total fell" in r for r in comparison.regressions)

    def test_registry_mode_mismatch_skips_timings_with_note(self):
        # A cold capture vs a warm (registry-first) capture: induction is
        # skipped on hits, so timing and volume diffs are meaningless.
        old = fixture_document(stage_mean=0.05)
        new = fixture_document(stage_mean=0.001)
        new["config"]["registry"] = True
        new["registry"] = {
            "hits": 48, "misses": 1, "stores": 1, "races": 0, "demotions": 0
        }
        new["systems"]["objectrunner"]["domains"]["concerts"]["objects_total"] = 100
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any("registry mode differs" in note for note in comparison.notes)

    def test_registry_stats_in_one_document_only_is_a_note(self):
        old = fixture_document()
        new = fixture_document()
        new["registry"] = {
            "hits": 48, "misses": 1, "stores": 1, "races": 0, "demotions": 0
        }
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any(
            "registry stats present in only one document" in note
            for note in comparison.notes
        )

    def test_registry_miss_growth_flags_regression(self):
        old = fixture_document()
        new = fixture_document()
        for document in (old, new):
            document["config"]["registry"] = True
        old["registry"] = {
            "hits": 49, "misses": 0, "stores": 0, "races": 0, "demotions": 0
        }
        new["registry"] = {
            "hits": 46, "misses": 3, "stores": 3, "races": 0, "demotions": 0
        }
        comparison = compare_documents(old, new)
        assert any("misses grew" in r for r in comparison.regressions)

    def test_rss_growth_is_a_note_not_a_regression(self):
        old = fixture_document()
        new = fixture_document()
        new["process"]["peak_rss_bytes"] = 10 * old["process"]["peak_rss_bytes"]
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert any("peak RSS grew" in note for note in comparison.notes)


class TestCli:
    def write_pair(self, tmp_path):
        old = tmp_path / "BENCH_0.json"
        new = tmp_path / "BENCH_1.json"
        write_bench(old, fixture_document(pc=0.8))
        write_bench(new, fixture_document(pc=0.5))
        return old, new

    def test_compare_files_exits_nonzero_on_regression(self, tmp_path, capsys):
        old, new = self.write_pair(tmp_path)
        code = main(["bench", "--compare-files", str(old), str(new)])
        assert code == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_files_warn_only_exits_zero(self, tmp_path):
        old, new = self.write_pair(tmp_path)
        code = main(
            ["bench", "--compare-files", str(old), str(new), "--warn-only"]
        )
        assert code == 0

    def test_compare_files_clean_pair_exits_zero(self, tmp_path):
        old = tmp_path / "a.json"
        new = tmp_path / "b.json"
        write_bench(old, fixture_document())
        write_bench(new, fixture_document())
        assert main(["bench", "--compare-files", str(old), str(new)]) == 0


class TestCapture:
    @pytest.fixture(scope="class")
    def tiny_capture(self, tmp_path_factory):
        """One real (tiny) capture: ObjectRunner over the catalog."""
        session = BenchSession(
            BenchConfig(scale=0.01, systems=("objectrunner", "roadrunner"))
        )
        return session.capture()

    def test_document_schema(self, tiny_capture):
        document = tiny_capture
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert document["config"]["scale"] == 0.01
        assert document["config"]["sources"] == 49
        assert document["process"]["peak_rss_bytes"] > 0
        assert set(document["systems"]) == {"objectrunner", "roadrunner"}
        json.dumps(document)  # fully JSON-serializable

    def test_objectrunner_section_has_stage_timers_and_cache(self, tiny_capture):
        section = tiny_capture["systems"]["objectrunner"]
        assert set(section["domains"]) == {
            "concerts", "albums", "books", "publications", "cars",
        }
        concerts = section["domains"]["concerts"]
        assert 0.0 <= concerts["pc"] <= concerts["pp"] <= 1.0
        assert concerts["sources"] == 9
        timers = section["metrics"]["timers"]
        assert "stage.wrapping" in timers
        # Discarded sources abort mid-stage, so the stage timer may record
        # slightly fewer runs than the catalog has sources.
        discarded = sum(
            d["sources_discarded"] for d in section["domains"].values()
        )
        assert timers["stage.wrapping"]["count"] >= 49 - discarded - 1
        assert section["metrics"]["counters"]["runs"] == 49
        assert section["wrap_seconds"]["count"] == 49
        assert section["cache"]["misses"] > 0

    def test_baseline_section_has_no_pipeline_metrics(self, tiny_capture):
        section = tiny_capture["systems"]["roadrunner"]
        assert section["metrics"] is None
        assert section["cache"] is None
        assert section["wrap_seconds"]["count"] == 49

    def test_session_cache_serves_second_system_from_hits(self, tiny_capture):
        cache = tiny_capture["cache"]
        assert cache["misses"] > 0
        assert cache["hits"] >= cache["misses"]  # second sweep hit the cache

    def test_cli_capture_writes_sequenced_artifact(self, tmp_path):
        code = main(
            [
                "bench",
                "--scale", "0.01",
                "--systems", "roadrunner",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        artifact = tmp_path / "BENCH_0.json"
        assert artifact.exists()
        document = load_bench(artifact)
        assert document["config"]["systems"] == ["roadrunner"]
        # A second capture gets the next sequence number. Two real runs
        # jitter, so keep the comparison advisory here.
        code = main(
            [
                "bench",
                "--scale", "0.01",
                "--systems", "roadrunner",
                "--out", str(tmp_path),
                "--compare",
                "--warn-only",
            ]
        )
        assert code == 0
        assert (tmp_path / "BENCH_1.json").exists()


class TestProvenanceIsolation:
    """The D106 baseline's justification, kept honest by a test.

    ``generated_at`` and ``config.seed.pythonhashseed`` are wall-clock /
    environment provenance recorded in every BENCH document; the
    comparison layer must never read them, or artifact diffs would
    depend on when and where the capture ran.
    """

    def test_compare_ignores_provenance_header(self):
        old = fixture_document()
        new = copy.deepcopy(old)
        new["generated_at"] = "2099-01-01T00:00:00+00:00"
        new["python"] = "9.9.9"
        new["platform"] = "plan9"
        new["config"]["seed"]["pythonhashseed"] = "12345"
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert comparison.notes == []
