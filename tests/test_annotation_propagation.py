"""Tests for upward annotation propagation."""

from repro.htmlkit.dom import Element, Text
from repro.annotation.propagation import clear_annotations, propagate_annotations


def annotated_text(text, *annotations):
    node = Text(text)
    node.annotations.update(annotations)
    return node


class TestPropagation:
    def test_linear_path_propagates(self):
        # <div><span>Metallica</span></div> with the text annotated:
        # the annotation climbs both levels (single-child chain).
        div = Element("div")
        span = div.append(Element("span"))
        span.append(annotated_text("Metallica", "artist"))
        propagate_annotations(div)
        assert "artist" in span.annotations
        assert "artist" in div.annotations

    def test_uniform_children_propagate(self):
        div = Element("div")
        for name in ("A", "B"):
            span = div.append(Element("span"))
            span.append(annotated_text(name, "author"))
        propagate_annotations(div)
        assert "author" in div.annotations

    def test_mixed_children_block_propagation(self):
        div = Element("div")
        artist_span = div.append(Element("span"))
        artist_span.append(annotated_text("Muse", "artist"))
        date_span = div.append(Element("span"))
        date_span.append(annotated_text("May 11", "date"))
        propagate_annotations(div)
        assert div.annotations == set()
        assert "artist" in artist_span.annotations
        assert "date" in date_span.annotations

    def test_common_subset_propagates(self):
        div = Element("div")
        a = div.append(Element("span"))
        a.append(annotated_text("x", "address", "date"))
        b = div.append(Element("span"))
        b.append(annotated_text("y", "address"))
        propagate_annotations(div)
        assert div.annotations == {"address"}

    def test_whitespace_text_ignored(self):
        div = Element("div")
        div.append(Text("   "))
        span = div.append(Element("span"))
        span.append(annotated_text("Muse", "artist"))
        propagate_annotations(div)
        assert "artist" in div.annotations

    def test_unannotated_sibling_blocks(self):
        div = Element("div")
        span = div.append(Element("span"))
        span.append(annotated_text("Muse", "artist"))
        div.append(Text("tonight"))
        propagate_annotations(div)
        assert div.annotations == set()

    def test_deep_propagation(self):
        root = Element("li")
        level1 = root.append(Element("div"))
        level2 = level1.append(Element("span"))
        level3 = level2.append(Element("a"))
        level3.append(annotated_text("Venue Hall", "theater"))
        propagate_annotations(root)
        assert "theater" in level1.annotations
        assert "theater" in root.annotations


class TestClear:
    def test_clear_removes_everything(self):
        div = Element("div")
        span = div.append(Element("span"))
        span.append(annotated_text("Muse", "artist"))
        propagate_annotations(div)
        clear_annotations(div)
        for node in div.iter():
            assert not node.annotations
