"""Tests for the registry-first pipeline path (match -> induce -> extract)."""

import json
from pathlib import Path

import pytest

from repro.annotation.annotator import annotate_page
from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.htmlkit import clean_tree, pages_fingerprint, tidy
from repro.recognizers import RecognizerRegistry
from repro.registry import StoredDiscard, WrapperRegistry
from repro.sod.dsl import parse_sod
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from tests.conftest import FIGURE3_P1, FIGURE3_P2, FIGURE3_P3

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)

FIGURE3_RAW = [FIGURE3_P1, FIGURE3_P2, FIGURE3_P3]

#: The running example re-rendered by a different template: same records,
#: different structure, so a figure3 wrapper extracts nothing here.
VARIANT_RAW = [
    raw.replace("<div>", "<p>").replace("</div>", "</p>")
    .replace("<span>", "<em>").replace("</span>", "</em>")
    for raw in FIGURE3_RAW
]


def make_runner(figure3_recognizers, wrapper_registry=None, **params):
    registry = RecognizerRegistry()
    for recognizer in figure3_recognizers:
        registry.register(recognizer)
    return ObjectRunner(
        SOD,
        registry=registry,
        params=RunParams(**params),
        wrapper_registry=wrapper_registry,
    )


def values_of(result):
    return [instance.values for instance in result.objects]


class TestRegistryFirstRun:
    def test_cold_run_matches_classic_and_stores(
        self, tmp_path, figure3_recognizers
    ):
        classic = make_runner(figure3_recognizers).run_source(
            "fig3", FIGURE3_RAW
        )
        registry = WrapperRegistry(tmp_path)
        cold = make_runner(
            figure3_recognizers, wrapper_registry=registry
        ).run_source("fig3", FIGURE3_RAW)
        assert values_of(cold) == values_of(classic)
        assert registry.stats()["misses"] == 1
        assert registry.stats()["stores"] == 1

    def test_warm_run_skips_induction(self, tmp_path, figure3_recognizers):
        registry = WrapperRegistry(tmp_path)
        cold = make_runner(
            figure3_recognizers, wrapper_registry=registry
        ).run_source("fig3", FIGURE3_RAW)
        assert cold.timings.wrapping > 0
        warm = make_runner(
            figure3_recognizers, wrapper_registry=registry
        ).run_source("fig3", FIGURE3_RAW)
        assert warm.timings.wrapping == 0
        assert warm.timings.annotation == 0
        assert values_of(warm) == values_of(cold)
        assert registry.stats()["hits"] == 1

    def test_prepared_pages_take_the_registry_path(
        self, tmp_path, figure3_recognizers
    ):
        registry = WrapperRegistry(tmp_path)
        runner = make_runner(figure3_recognizers, wrapper_registry=registry)
        cold = runner.run_source("fig3", FIGURE3_RAW)
        prepared = [clean_tree(tidy(raw)) for raw in FIGURE3_RAW]
        warm = runner.run_source_prepared("fig3", prepared)
        assert values_of(warm) == values_of(cold)
        assert registry.stats()["hits"] == 1


class TestDemotion:
    def test_stale_wrapper_is_demoted_and_reinduced(
        self, tmp_path, figure3_recognizers
    ):
        # Poison the registry: store a wrapper induced from the variant
        # template under the figure3 pages' signature.
        variant_pages = [clean_tree(tidy(raw)) for raw in VARIANT_RAW]
        for page in variant_pages:
            annotate_page(page, figure3_recognizers)
        stale = generate_wrapper(
            "variant", variant_pages, SOD, WrapperConfig(support=2)
        )
        registry = WrapperRegistry(tmp_path)
        fingerprint = pages_fingerprint(
            [clean_tree(tidy(raw)) for raw in FIGURE3_RAW]
        )
        registry.put(SOD, fingerprint, stale)

        classic = make_runner(figure3_recognizers).run_source(
            "fig3", FIGURE3_RAW
        )
        result = make_runner(
            figure3_recognizers, wrapper_registry=registry
        ).run_source("fig3", FIGURE3_RAW)
        assert values_of(result) == values_of(classic)
        stats = registry.stats()
        assert stats["demotions"] == 1
        assert stats["stores"] == 2  # the poison entry, then the re-induced one
        # The demoted entry was replaced: a fresh run now hits cleanly.
        warm = make_runner(
            figure3_recognizers, wrapper_registry=registry
        ).run_source("fig3", FIGURE3_RAW)
        assert values_of(warm) == values_of(classic)
        assert registry.stats()["demotions"] == 1


@pytest.fixture(scope="module")
def album_sources():
    """Four album sites, two pairs sharing a template archetype."""
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    sources = {}
    for index in range(4):
        spec = SiteSpec(
            name=f"reg-{index}",
            domain="albums",
            archetype="clean",
            total_objects=12,
            seed=("registry-batch", index),
        )
        sources[spec.name] = generate_source(spec, domain).pages
    return domain, knowledge, sources


def run_batch(domain, knowledge, sources, root, workers):
    registry = WrapperRegistry(root)
    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(max_workers=workers),
        wrapper_registry=registry,
    )
    outcome = runner.run_sources(sources)
    return registry, outcome


def registry_bytes(root):
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


class TestBatchDeterminism:
    def test_parallel_registry_bytes_equal_serial(
        self, tmp_path, album_sources
    ):
        domain, knowledge, sources = album_sources
        serial_reg, serial = run_batch(
            domain, knowledge, sources, tmp_path / "serial", workers=1
        )
        parallel_reg, parallel = run_batch(
            domain, knowledge, sources, tmp_path / "parallel", workers=4
        )
        assert registry_bytes(tmp_path / "parallel") == registry_bytes(
            tmp_path / "serial"
        )
        assert serial_reg.stats() == parallel_reg.stats()
        serial_values = json.dumps(
            [i.values for i in serial.objects], sort_keys=True
        )
        parallel_values = json.dumps(
            [i.values for i in parallel.objects], sort_keys=True
        )
        assert parallel_values == serial_values

    def test_batch_objects_match_classic_pipeline(
        self, tmp_path, album_sources
    ):
        domain, knowledge, sources = album_sources
        classic = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            params=RunParams(max_workers=1),
        ).run_sources(sources)
        __, registered = run_batch(
            domain, knowledge, sources, tmp_path / "reg", workers=1
        )
        assert [i.values for i in registered.objects] == [
            i.values for i in classic.objects
        ]


class TestEnrichmentGating:
    def test_enrichment_runs_bypass_the_registry(
        self, tmp_path, figure3_recognizers
    ):
        registry = WrapperRegistry(tmp_path)
        runner = make_runner(
            figure3_recognizers,
            wrapper_registry=registry,
            enrich_dictionaries=True,
            enrichment_passes=2,
        )
        runner.run_source("fig3", FIGURE3_RAW)
        stats = registry.stats()
        assert stats == {
            "hits": 0, "misses": 0, "stores": 0, "races": 0, "demotions": 0,
        }


class TestDiscardTombstones:
    def doomed_runner(self, wrapper_registry=None):
        # No recognizers at all: the annotation gate (alpha) always fires,
        # so every induction of this source ends in a discard.
        return ObjectRunner(
            SOD,
            registry=RecognizerRegistry(),
            params=RunParams(),
            wrapper_registry=wrapper_registry,
        )

    def test_cold_discard_stores_a_tombstone(self, tmp_path):
        registry = WrapperRegistry(tmp_path)
        cold = self.doomed_runner(registry).run_source("doomed", FIGURE3_RAW)
        assert cold.discarded
        stats = registry.stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert isinstance(
            registry.lookup(SOD, pages_fingerprint(
                [clean_tree(tidy(raw)) for raw in FIGURE3_RAW]
            )),
            StoredDiscard,
        )

    def test_warm_run_replays_the_discard_without_inducing(self, tmp_path):
        registry = WrapperRegistry(tmp_path)
        cold = self.doomed_runner(registry).run_source("doomed", FIGURE3_RAW)
        warm = self.doomed_runner(registry).run_source("doomed", FIGURE3_RAW)
        assert warm.discarded
        assert warm.discard_stage == cold.discard_stage
        assert warm.discard_reason == cold.discard_reason
        assert warm.timings.wrapping == 0
        assert warm.timings.annotation == 0
        assert registry.stats()["hits"] == 1

    def test_batch_discard_stores_through_staged_view(self, tmp_path):
        registry = WrapperRegistry(tmp_path)
        runner = self.doomed_runner(registry)
        batch = runner.run_sources({"doomed": FIGURE3_RAW})
        assert batch.results["doomed"].discarded
        assert registry.stats()["stores"] == 1
        warm = runner.run_sources({"doomed": FIGURE3_RAW})
        assert warm.results["doomed"].discarded
        assert registry.stats()["hits"] == 1
