"""The paper's segmentation claim, checked over the catalog.

"In more than 80% of the cases our heuristic reduces away the
non-significant segments of the pages."  We verify that across the
generated catalog: the selected central block excludes header, nav and
footer chrome on at least 80% of structured sources.
"""

from repro.datasets import catalog_entries, domain_spec, generate_source
from repro.htmlkit import clean_tree, tidy
from repro.vision.segmentation import (
    find_block_by_signature,
    main_content_block,
    segment_page,
)


def test_central_block_strips_chrome_on_most_sources():
    entries = [
        entry
        for entry in catalog_entries(scale=0.02)
        if entry.spec.archetype != "unstructured"
    ]
    reduced = 0
    total = 0
    for entry in entries:
        source = generate_source(entry.spec, domain_spec(entry.spec.domain))
        pages = [clean_tree(tidy(raw)) for raw in source.pages[:3]]
        trees = [segment_page(page) for page in pages]
        signature = main_content_block(trees)
        if signature is None:
            total += 1
            continue
        block = find_block_by_signature(trees[0], signature)
        total += 1
        if block is None:
            continue
        tags = {element.tag for element in block.element.iter_elements()}
        if not ({"header", "nav", "footer"} & tags):
            reduced += 1
    assert total == len(entries)
    assert reduced / total >= 0.8, f"only {reduced}/{total} sources reduced"


def test_central_block_keeps_every_record():
    # Reduction must never cost data: all gold values remain in the block.
    from repro.utils.text import normalize_text

    entry = next(
        e for e in catalog_entries(scale=0.02) if e.spec.name == "towerrecords"
    )
    source = generate_source(entry.spec, domain_spec("albums"))
    pages = [clean_tree(tidy(raw)) for raw in source.pages]
    trees = [segment_page(page) for page in pages]
    signature = main_content_block(trees)
    for gold in source.gold:
        tree = trees[gold.page_index]
        block = find_block_by_signature(tree, signature)
        block_text = normalize_text(block.element.text_content())
        for values in gold.normalized_flat().values():
            for value in values:
                assert value in block_text
