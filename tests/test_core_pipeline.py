"""Integration tests for the full ObjectRunner pipeline."""

import pytest

from repro.core import ObjectRunner, ObjectRunnerSystem, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.sod.instances import validate_instance


@pytest.fixture(scope="module")
def albums_setup():
    domain = domain_spec("albums")
    spec = SiteSpec(
        name="pipeline-albums",
        domain="albums",
        archetype="clean",
        total_objects=40,
        seed=("pipeline", "albums"),
    )
    source = generate_source(spec, domain)
    knowledge = build_knowledge(domain, coverage=0.2)
    return domain, source, knowledge


def make_runner(domain, knowledge, params=None):
    return ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=params,
    )


class TestFullPipeline:
    def test_extracts_all_objects(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source(source.spec.name, source.pages)
        assert result.ok
        assert len(result.objects) == len(source.gold)

    def test_objects_valid_against_sod(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source(source.spec.name, source.pages)
        for instance in result.objects:
            assert validate_instance(domain.sod, instance).ok

    def test_timings_recorded(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source(source.spec.name, source.pages)
        assert result.timings.preprocess > 0
        assert result.timings.annotation > 0
        assert result.timings.wrapping > 0
        assert result.timings.extraction > 0

    def test_sample_indexes_recorded(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source(source.spec.name, source.pages)
        assert result.sample_page_indexes
        assert all(
            0 <= index < len(source.pages)
            for index in result.sample_page_indexes
        )

    def test_recognizers_resolved_for_all_entities(self, albums_setup):
        domain, __, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        names = {recognizer.type_name for recognizer in runner.recognizers}
        assert names == {"title", "artist", "price", "date"}

    def test_gazetteers_exposed(self, albums_setup):
        domain, __, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        assert set(runner.gazetteers()) == {"title", "artist"}


class TestDiscarding:
    def test_unstructured_source_discarded(self):
        domain = domain_spec("albums")
        spec = SiteSpec(
            name="pipeline-emusic",
            domain="albums",
            archetype="unstructured",
            total_objects=50,
            seed=("pipeline", "unstructured"),
        )
        source = generate_source(spec, domain)
        knowledge = build_knowledge(domain, coverage=0.2)
        runner = make_runner(domain, knowledge)
        result = runner.run_source(spec.name, source.pages)
        assert result.discarded
        assert result.discard_stage in ("annotation", "wrapper")


class TestSamplingModes:
    def test_random_sampling_runs(self, albums_setup):
        domain, source, knowledge = albums_setup
        params = RunParams(sod_based_sampling=False, sample_size=4)
        runner = make_runner(domain, knowledge, params)
        result = runner.run_source(source.spec.name, source.pages)
        assert not result.discarded
        assert len(result.sample_page_indexes) == 4


class TestEnrichment:
    def test_dictionaries_grow_after_extraction(self, albums_setup):
        domain, source, knowledge = albums_setup
        params = RunParams(enrich_dictionaries=True)
        runner = make_runner(domain, knowledge, params)
        before = len(runner.gazetteers()["artist"])
        result = runner.run_source(source.spec.name, source.pages)
        assert result.ok
        after = len(runner.gazetteers()["artist"])
        assert after > before


class TestSystemAdapter:
    def test_adapter_output(self, albums_setup):
        domain, source, knowledge = albums_setup
        system = ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        )
        pages = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        ).prepare_pages(source.pages)
        output = system.run(source.spec.name, pages, domain.sod)
        assert output.system == "objectrunner"
        assert not output.failed
        assert output.objects


class TestPersistedWrapperExtraction:
    def test_extract_with_persisted_wrapper(self, albums_setup):
        import json

        from repro.wrapper.serialize import wrapper_from_dict, wrapper_to_dict

        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        first = runner.run_source(source.spec.name, source.pages)
        assert first.ok

        # Persist, reload, re-extract without re-wrapping.
        payload = json.dumps(wrapper_to_dict(first.wrapper))
        restored = wrapper_from_dict(json.loads(payload))
        second = runner.extract_with(restored, source.pages)
        assert second.timings.wrapping == 0.0
        assert [o.values for o in second.objects] == [
            o.values for o in first.objects
        ]
