"""Tests for gazetteer (isInstanceOf) recognizers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.recognizers.gazetteer import GazetteerRecognizer


class TestDictionary:
    def test_add_and_contains(self):
        gazetteer = GazetteerRecognizer("artist", [])
        gazetteer.add("Metallica", 0.9)
        assert "Metallica" in gazetteer
        assert gazetteer.confidence_of("Metallica") == 0.9

    def test_case_insensitive_by_default(self):
        gazetteer = GazetteerRecognizer("artist", ["Metallica"])
        assert "metallica" in gazetteer
        assert "METALLICA" in gazetteer

    def test_case_sensitive_mode(self):
        gazetteer = GazetteerRecognizer("artist", ["Metallica"], case_sensitive=True)
        assert "metallica" not in gazetteer

    def test_add_keeps_higher_confidence(self):
        gazetteer = GazetteerRecognizer("t", {})
        gazetteer.add("X", 0.9)
        gazetteer.add("X", 0.2)
        assert gazetteer.confidence_of("X") == 0.9

    def test_remove(self):
        gazetteer = GazetteerRecognizer("t", ["A"])
        gazetteer.remove("A")
        assert len(gazetteer) == 0

    def test_whitespace_normalized(self):
        gazetteer = GazetteerRecognizer("t", ["Madison   Square  Garden"])
        assert "Madison Square Garden" in gazetteer

    def test_empty_entries_skipped(self):
        gazetteer = GazetteerRecognizer("t", ["", "   "])
        assert len(gazetteer) == 0

    def test_mapping_input_with_confidences(self):
        gazetteer = GazetteerRecognizer("t", {"A": 0.5, "B": 0.8})
        assert gazetteer.entries() == {"A": 0.5, "B": 0.8}


class TestFind:
    def test_finds_single_word(self):
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        (match,) = gazetteer.find("Tonight Muse performs")
        assert (match.start, match.end, match.value) == (8, 12, "Muse")

    def test_finds_multiword_longest(self):
        gazetteer = GazetteerRecognizer("venue", ["Garden", "Madison Square Garden"])
        matches = gazetteer.find("at Madison Square Garden tonight")
        assert [m.value for m in matches] == ["Madison Square Garden"]

    def test_word_boundary_respected(self):
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        assert gazetteer.find("Museum hours") == []

    def test_multiple_occurrences(self):
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        assert len(gazetteer.find("Muse opened for Muse")) == 2

    def test_empty_dictionary(self):
        gazetteer = GazetteerRecognizer("t", [])
        assert gazetteer.find("anything at all") == []

    def test_confidence_on_matches(self):
        gazetteer = GazetteerRecognizer("t", {"Muse": 0.7})
        assert gazetteer.find("Muse")[0].confidence == 0.7

    def test_original_surface_form_returned(self):
        gazetteer = GazetteerRecognizer("t", ["muse"])
        (match,) = gazetteer.find("MUSE live")
        assert match.value == "MUSE"  # value from the page text, not the dict

    def test_accepts(self):
        gazetteer = GazetteerRecognizer("t", ["Muse"])
        assert gazetteer.accepts("Muse")
        assert gazetteer.accepts("  Muse ")
        assert not gazetteer.accepts("Muse live")

    @given(st.lists(st.sampled_from(["Muse", "Coldplay", "Radiohead"]), max_size=5))
    def test_every_mention_found(self, names):
        gazetteer = GazetteerRecognizer("artist", ["Muse", "Coldplay", "Radiohead"])
        text = " and ".join(names)
        assert len(gazetteer.find(text)) == len(names)


class TestSelectivity:
    def test_empty_dictionary_zero(self):
        assert GazetteerRecognizer("t", []).selectivity_weight() == 0.0

    def test_longer_entries_more_selective(self):
        short = GazetteerRecognizer("a", ["ab", "cd"])
        long = GazetteerRecognizer("b", ["Something Quite Long Indeed"] * 2)
        assert long.selectivity_weight() > short.selectivity_weight()

    def test_explicit_override(self):
        gazetteer = GazetteerRecognizer("t", ["x"], selectivity=9.0)
        assert gazetteer.selectivity_weight() == 9.0
