"""Property tests: random templates roundtrip through JSON serialization."""

import json
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sod.dsl import parse_sod
from repro.wrapper.generate import Wrapper
from repro.wrapper.matching import MatchResult
from repro.wrapper.serialize import wrapper_from_dict, wrapper_to_dict
from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
    Template,
)

_annotation_names = st.sampled_from(["artist", "date", "title", "author"])


@st.composite
def _field_slots(draw, slot_id):
    slot = FieldSlot(slot_id=slot_id)
    slot.annotation_counts = Counter(
        {
            name: draw(st.integers(1, 10))
            for name in draw(st.lists(_annotation_names, max_size=2, unique=True))
        }
    )
    slot.occurrences = draw(st.integers(0, 30))
    slot.optional = draw(st.booleans())
    slot.examples = draw(st.lists(st.text(max_size=12), max_size=3))
    slot.strip_prefix = draw(st.integers(0, 2))
    slot.strip_suffix = draw(st.integers(0, 2))
    return slot


@st.composite
def _nodes(draw, depth, counter):
    kind = draw(
        st.sampled_from(
            ["field", "static"] if depth == 0 else ["field", "static", "element", "iterator"]
        )
    )
    counter[0] += 1
    if kind == "field":
        return draw(_field_slots(slot_id=counter[0]))
    if kind == "static":
        return StaticSlot(text=draw(st.text(max_size=15)))
    if kind == "iterator":
        return IteratorSlot(
            slot_id=counter[0],
            unit=draw(_nodes(depth=depth - 1, counter=counter)),
            min_repeats=draw(st.integers(0, 2)),
            max_repeats=draw(st.integers(2, 5)),
        )
    return ElementTemplate(
        tag=draw(st.sampled_from(["div", "span", "li", "p"])),
        attr_class=draw(st.sampled_from(["", "a", "info"])),
        optional=draw(st.booleans()),
        children=draw(
            st.lists(_nodes(depth=depth - 1, counter=counter), max_size=3)
        ),
    )


@st.composite
def _wrappers(draw):
    counter = [0]
    template = Template(
        roots=draw(st.lists(_nodes(depth=2, counter=counter), min_size=1, max_size=3)),
        conflicts=draw(st.integers(0, 5)),
        sample_records=draw(st.integers(0, 30)),
    )
    return Wrapper(
        source="property",
        sod=parse_sod("t(artist, date<kind=predefined>?)"),
        template=template,
        match=MatchResult(
            entity_to_slots={"artist": [0]},
            matched=True,
        ),
        record_tag=draw(st.sampled_from(["li", "div"])),
        record_path="html/body/div/li",
        record_class_attr=draw(st.sampled_from(["", "rec"])),
        record_single_element=draw(st.booleans()),
        is_list_source=draw(st.booleans()),
        support=draw(st.integers(2, 5)),
        conflicts=draw(st.integers(0, 5)),
        annotation_types_seen={"artist"},
    )


class TestSerializeProperties:
    @settings(max_examples=100, deadline=None)
    @given(_wrappers())
    def test_roundtrip_fixpoint(self, wrapper):
        once = wrapper_to_dict(wrapper)
        restored = wrapper_from_dict(json.loads(json.dumps(once)))
        twice = wrapper_to_dict(restored)
        assert once == twice

    @settings(max_examples=100, deadline=None)
    @given(_wrappers())
    def test_template_structure_preserved(self, wrapper):
        restored = wrapper_from_dict(wrapper_to_dict(wrapper))
        assert restored.template.describe() == wrapper.template.describe()
        assert len(restored.template.field_slots()) == len(
            wrapper.template.field_slots()
        )

    @settings(max_examples=100, deadline=None)
    @given(_wrappers())
    def test_json_compatible(self, wrapper):
        json.dumps(wrapper_to_dict(wrapper))  # must not raise
