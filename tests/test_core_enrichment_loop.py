"""Tests for the multi-pass enrichment loop."""

import pytest

from repro.core import ObjectRunner, RunParams
from repro.datasets import domain_spec, generate_source
from repro.datasets.knowledge import completion_entries
from repro.datasets.sites import SiteSpec
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.registry import RecognizerRegistry


@pytest.fixture(scope="module")
def albums_source():
    domain = domain_spec("albums")
    spec = SiteSpec(
        name="enrichloop-albums",
        domain="albums",
        archetype="clean",
        total_objects=50,
        seed=("enrichloop",),
    )
    return domain, generate_source(spec, domain)


def make_runner(domain, source, passes):
    # Start from a thin, source-derived dictionary (15% coverage) so the
    # loop has headroom to grow it.
    completion = completion_entries(domain, source.gold, coverage=0.15)
    registry = RecognizerRegistry()
    registry.register(GazetteerRecognizer("artist", completion.get("artist", {})))
    registry.register(GazetteerRecognizer("title", completion.get("title", {})))
    return ObjectRunner(
        domain.sod,
        registry=registry,
        params=RunParams(
            enrich_dictionaries=True,
            enrichment_passes=passes,
        ),
    )


class TestEnrichmentLoop:
    def test_second_pass_sees_bigger_dictionaries(self, albums_source):
        domain, source = albums_source
        runner = make_runner(domain, source, passes=2)
        before = len(runner.gazetteers()["artist"])
        result = runner.run_source(source.spec.name, source.pages)
        after = len(runner.gazetteers()["artist"])
        assert result.ok
        assert after > before

    def test_multi_pass_never_worse_than_single(self, albums_source):
        domain, source = albums_source
        single = make_runner(domain, source, passes=1).run_source(
            source.spec.name, source.pages
        )
        double = make_runner(domain, source, passes=2).run_source(
            source.spec.name, source.pages
        )
        assert double.ok
        assert len(double.objects) >= len(single.objects)

    def test_passes_ignored_without_enrichment(self, albums_source):
        domain, source = albums_source
        completion = completion_entries(domain, source.gold, coverage=0.15)
        registry = RecognizerRegistry()
        registry.register(GazetteerRecognizer("artist", completion.get("artist", {})))
        registry.register(GazetteerRecognizer("title", completion.get("title", {})))
        runner = ObjectRunner(
            domain.sod,
            registry=registry,
            params=RunParams(enrich_dictionaries=False, enrichment_passes=3),
        )
        before = len(runner.gazetteers()["artist"])
        runner.run_source(source.spec.name, source.pages)
        assert len(runner.gazetteers()["artist"]) == before
