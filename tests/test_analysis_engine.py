"""reprolint engine: suppressions, walking, determinism, reporters."""

import json
import textwrap

import pytest

from repro.analysis import (
    analyze_file,
    analyze_paths,
    build_rules,
    render_json,
    render_text,
    rule_registry,
    suppressed_rules,
)
from repro.analysis.engine import PARSE_RULE_ID, collect_files
from repro.analysis.reporters import JSON_SCHEMA_VERSION


def write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestRegistry:
    def test_all_bundled_rules_registered(self):
        assert {
            "D101", "D102", "D103", "D104", "D105", "D106",
            "C201", "C202", "T301", "E401", "A501",
        } <= set(rule_registry())

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            build_rules(["NOPE999"])

    def test_build_subset(self):
        rules = build_rules(["D101"])
        assert [rule.rule_id for rule in rules] == ["D101"]


class TestSuppressions:
    def test_parse_single(self):
        assert suppressed_rules("x = 1  # repro: ignore[D101]") == {"D101"}

    def test_parse_multiple(self):
        assert suppressed_rules("# repro: ignore[D101, T301]") == {
            "D101",
            "T301",
        }

    def test_no_comment(self):
        assert suppressed_rules("x = 1  # just a comment") == frozenset()

    def test_inline_suppression_marks_finding(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            "import random  # repro: ignore[D101]\n",
        )
        findings = analyze_file(path, tmp_path, build_rules(["D101"]))
        assert [f.status for f in findings] == ["suppressed"]

    def test_wrong_id_does_not_suppress(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            "import random  # repro: ignore[D102]\n",
        )
        findings = analyze_file(path, tmp_path, build_rules(["D101"]))
        assert [f.status for f in findings] == ["open"]


class TestWalking:
    def test_collect_files_sorted_and_deduped(self, tmp_path):
        write(tmp_path, "pkg/b.py", "x = 1\n")
        write(tmp_path, "pkg/a.py", "x = 1\n")
        write(tmp_path, "pkg/__pycache__/junk.py", "x = 1\n")
        files = collect_files([tmp_path, tmp_path / "pkg" / "a.py"])
        names = [f.name for f in files]
        assert names == ["a.py", "b.py"]

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        path = write(tmp_path, "bad.py", "def broken(:\n")
        findings = analyze_file(path, tmp_path, build_rules(["D101"]))
        assert [f.rule for f in findings] == [PARSE_RULE_ID]

    def test_parallel_matches_serial(self, tmp_path):
        for index in range(6):
            write(
                tmp_path,
                f"m{index}.py",
                "import random\nimport time\n"
                "def f():\n    return time.time()\n",
            )
        serial = analyze_paths([tmp_path], root=tmp_path, jobs=1)
        parallel = analyze_paths([tmp_path], root=tmp_path, jobs=4)
        as_tuples = lambda report: [  # noqa: E731 - test-local shorthand
            (f.rule, f.path, f.line, f.col, f.message)
            for f in report.findings
        ]
        assert as_tuples(serial) == as_tuples(parallel)
        assert serial.files_scanned == parallel.files_scanned == 6


class TestReporters:
    @pytest.fixture()
    def report(self, tmp_path):
        write(tmp_path, "mod.py", "import random\n")
        write(tmp_path, "ok.py", "x = 1\n")
        return analyze_paths([tmp_path], root=tmp_path, rules=build_rules(["D101"]))

    def test_text_report_mentions_location_and_rule(self, report):
        text = render_text(report)
        assert "mod.py:1:0: D101" in text
        assert "reprolint: 2 files, 1 open" in text

    def test_json_report_schema(self, report):
        payload = json.loads(render_json(report))
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        assert set(payload) == {
            "schema_version",
            "root",
            "summary",
            "findings",
            "expired_baseline",
            "unjustified_baseline",
            "overdue_baseline",
        }
        summary = payload["summary"]
        assert summary["files_scanned"] == 2
        assert summary["open"] == 1
        assert summary["open_by_rule"] == {"D101": 1}
        assert summary["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "snippet",
            "status",
        }
        assert finding["path"] == "mod.py"
        assert finding["status"] == "open"

    def test_clean_report(self, tmp_path):
        write(tmp_path, "ok.py", "x = 1\n")
        report = analyze_paths(
            [tmp_path], root=tmp_path, rules=build_rules(["D101"])
        )
        assert report.clean
        assert "— clean" in render_text(report)


class TestSuppressionSpans:
    """Suppressions may sit on any physical line of the flagged statement."""

    def test_comment_on_later_line_of_multiline_statement(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            def f(a, b):
                return tuple(
                    set(a) & set(b)  # repro: ignore[D103]
                )
            """,
        )
        findings = analyze_file(path, tmp_path, build_rules(["D103"]))
        assert findings and all(f.status == "suppressed" for f in findings)

    def test_comment_on_decorator_line_covers_the_def(self, tmp_path):
        from repro.analysis import analyze_paths

        path = write(
            tmp_path,
            "mod.py",
            """
            import functools

            @functools.lru_cache  # repro: ignore[A501]
            def orphan():
                return 1
            """,
        )
        report = analyze_paths(
            [path], root=tmp_path, rules=build_rules(["A501"]), jobs=1
        )
        findings = [f for f in report.findings if f.rule == "A501"]
        assert findings and all(f.status == "suppressed" for f in findings)

    def test_unrelated_line_does_not_suppress(self, tmp_path):
        path = write(
            tmp_path,
            "mod.py",
            """
            # repro: ignore[D103]
            def f(a, b):
                return tuple(set(a) & set(b))
            """,
        )
        findings = analyze_file(path, tmp_path, build_rules(["D103"]))
        assert [f.status for f in findings] == ["open"]


class TestIncrementalCache:
    def _report_json(self, tmp_path, cache):
        from repro.analysis import analyze_paths, build_rules, render_json

        report = analyze_paths(
            [tmp_path / "src"],
            root=tmp_path,
            rules=build_rules(None),
            jobs=1,
            cache=cache,
        )
        return render_json(report)

    def test_warm_run_byte_identical_and_hits_cache(self, tmp_path):
        from repro.analysis import ResultCache

        write(tmp_path, "src/mod.py", "import random\n")
        write(tmp_path, "src/clean.py", "def f(x):\n    return x\n\nf(1)\n")
        cache_path = tmp_path / "cache.json"

        cold_cache = ResultCache.load(cache_path)
        cold = self._report_json(tmp_path, cold_cache)
        cold_cache.save()
        assert cold_cache.misses > 0 and cold_cache.hits == 0

        warm_cache = ResultCache.load(cache_path)
        warm = self._report_json(tmp_path, warm_cache)
        assert warm == cold
        assert warm_cache.hits > 0 and warm_cache.misses == 0

    def test_edited_file_invalidates_its_entry_only(self, tmp_path):
        from repro.analysis import ResultCache

        write(tmp_path, "src/mod.py", "import random\n")
        write(tmp_path, "src/clean.py", "def f(x):\n    return x\n\nf(1)\n")
        cache_path = tmp_path / "cache.json"
        cache = ResultCache.load(cache_path)
        self._report_json(tmp_path, cache)
        cache.save()

        write(tmp_path, "src/mod.py", "import random\nimport glob\n")
        cache = ResultCache.load(cache_path)
        edited = self._report_json(tmp_path, cache)
        assert cache.hits == 1 and cache.misses == 1
        assert '"D104"' not in edited  # glob imported, never called

    def test_cache_survives_corrupt_file(self, tmp_path):
        from repro.analysis import ResultCache

        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{broken", encoding="utf-8")
        cache = ResultCache.load(cache_path)
        assert cache.entries == {}
