"""Tests for site generation."""

import pytest

from repro.datasets.domains import DOMAINS, domain_spec
from repro.datasets.sites import ARCHETYPES, GeneratedSource, SiteSpec, generate_source
from repro.htmlkit import clean_tree, tidy
from repro.utils.text import normalize_text


def make(domain="albums", **kwargs):
    defaults = dict(total_objects=30, seed=("sitetest", domain))
    defaults.update(kwargs)
    spec = SiteSpec(name=f"site-{domain}", domain=domain, **defaults)
    return generate_source(spec, domain_spec(domain))


class TestGeneration:
    def test_deterministic(self):
        a = make()
        b = make()
        assert a.pages == b.pages
        assert [g.values for g in a.gold] == [g.values for g in b.gold]

    @pytest.mark.parametrize("domain", sorted(DOMAINS))
    def test_every_domain_renders(self, domain):
        source = make(domain=domain)
        assert source.pages
        assert len(source.gold) == 30

    def test_gold_values_present_in_pages(self):
        source = make()
        all_text = normalize_text(" ".join(source.pages))
        for gold in source.gold[:10]:
            for values in gold.normalized_flat().values():
                for value in values:
                    assert value in all_text

    def test_page_indexes_assigned(self):
        source = make()
        for gold in source.gold:
            assert 0 <= gold.page_index < len(source.pages)

    def test_pages_parse_cleanly(self):
        source = make()
        for raw in source.pages:
            root = clean_tree(tidy(raw))
            assert root.find("body") is not None

    def test_detail_pages_one_object_each(self):
        source = make(page_type="detail", total_objects=12)
        assert len(source.pages) == 12
        for index, gold in enumerate(source.gold):
            assert gold.page_index == index

    def test_constant_record_count(self):
        source = make(constant_record_count=5, total_objects=25)
        pages_of = {}
        for gold in source.gold:
            pages_of.setdefault(gold.page_index, 0)
            pages_of[gold.page_index] += 1
        assert all(count == 5 for count in pages_of.values())

    def test_varying_record_count(self):
        source = make(records_per_page=(3, 7), total_objects=50)
        counts = {}
        for gold in source.gold:
            counts[gold.page_index] = counts.get(gold.page_index, 0) + 1
        assert len(set(counts.values())) > 1

    def test_chrome_present(self):
        source = make()
        assert "<header>" in source.pages[0]
        assert "<footer>" in source.pages[0]


class TestArchetypes:
    def test_all_archetypes_render(self):
        for archetype in ARCHETYPES:
            source = make(archetype=archetype)
            assert isinstance(source, GeneratedSource)

    def test_unstructured_has_no_gold(self):
        source = make(archetype="unstructured")
        assert source.gold == []
        assert source.pages

    def test_partial_inline_joins_attributes(self):
        source = make(archetype="partial_inline")
        text = normalize_text(source.pages[0])
        gold = source.gold[0]
        joined = (
            f"{normalize_text(gold.values['title'])} by "
            f"{normalize_text(gold.values['artist'])}"
        )
        assert joined in text

    def test_mixed_structure_swaps_order(self):
        source = make(archetype="mixed_structure", total_objects=60)
        # The affected attribute (artist) is rendered in a *plain* field
        # container (no class) paired with a noise twin whose relative
        # order varies across records.
        page = source.pages[0]
        assert page.count("<div>") > 0 or page.count("<p>") > 0
        # Both orders occur somewhere across the source.
        artist_first = noise_first = False
        joined = " ".join(source.pages)
        for gold in source.gold[:20]:
            artist = gold.values["artist"]
            position = joined.find(artist)
            window = joined[max(0, position - 120) : position]
            if any(noise in window for noise in (
                "Ships within", "Member exclusive", "Hot this season",
                "Verified listing", "Staff recommended", "While supplies",
            )):
                noise_first = True
            else:
                artist_first = True
        assert artist_first and noise_first


class TestOptionalHandling:
    def test_optional_absent_sources(self):
        source = make(optional_present=False)
        assert all("date" not in gold.flat for gold in source.gold)
