"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from tests.conftest import FIGURE3_P1, FIGURE3_P2, FIGURE3_P3


@pytest.fixture()
def figure3_files(tmp_path):
    paths = []
    for index, content in enumerate((FIGURE3_P1, FIGURE3_P2, FIGURE3_P3)):
        path = tmp_path / f"page{index}.html"
        path.write_text(content, encoding="utf-8")
        paths.append(str(path))
    artists = tmp_path / "artists.txt"
    artists.write_text("Metallica\nColdplay\nMadonna\nMuse\n", encoding="utf-8")
    theaters = tmp_path / "theaters.txt"
    theaters.write_text(
        "Madison Square Garden\nBowery Ballroom\nThe Town Hall\n"
        "B.B King Blues and Grill\n",
        encoding="utf-8",
    )
    return paths, str(artists), str(theaters)


SOD = (
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


class TestExtract:
    def test_extracts_objects_as_json(self, figure3_files, capsys):
        pages, artists, theaters = figure3_files
        code = main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                *pages,
            ]
        )
        assert code == 0
        out = capsys.readouterr()
        lines = [line for line in out.out.splitlines() if line.strip()]
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first["artist"] == "Metallica"
        assert "extracted 4 objects" in out.err

    def test_bad_dict_spec(self, figure3_files, capsys):
        pages, artists, __ = figure3_files
        code = main(["extract", "--sod", SOD, "--dict", "nodelimiter", *pages])
        assert code == 2

    def test_missing_file_reports_error(self, capsys):
        code = main(["extract", "--sod", SOD, "/nonexistent/page.html"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_sod_reports_error(self, figure3_files, capsys):
        pages, *_ = figure3_files
        code = main(["extract", "--sod", "broken((", *pages])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_discarded_source(self, tmp_path, capsys):
        page = tmp_path / "junk.html"
        page.write_text("<html><body><p>nothing here</p></body></html>")
        code = main(
            ["extract", "--sod", "t(date<kind=predefined>)", str(page)]
        )
        assert code == 1
        assert "discarded" in capsys.readouterr().err


class TestDescribe:
    def test_describe_prints_structure(self, capsys):
        code = main(["describe", SOD])
        assert code == 0
        out = capsys.readouterr().out
        assert "canonical:" in out
        assert "artist" in out
        assert "(optional)" in out

    def test_describe_invalid(self, capsys):
        code = main(["describe", "((("])
        assert code == 1
