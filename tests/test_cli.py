"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from tests.conftest import FIGURE3_P1, FIGURE3_P2, FIGURE3_P3


@pytest.fixture()
def figure3_files(tmp_path):
    paths = []
    for index, content in enumerate((FIGURE3_P1, FIGURE3_P2, FIGURE3_P3)):
        path = tmp_path / f"page{index}.html"
        path.write_text(content, encoding="utf-8")
        paths.append(str(path))
    artists = tmp_path / "artists.txt"
    artists.write_text("Metallica\nColdplay\nMadonna\nMuse\n", encoding="utf-8")
    theaters = tmp_path / "theaters.txt"
    theaters.write_text(
        "Madison Square Garden\nBowery Ballroom\nThe Town Hall\n"
        "B.B King Blues and Grill\n",
        encoding="utf-8",
    )
    return paths, str(artists), str(theaters)


SOD = (
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


class TestExtract:
    def test_extracts_objects_as_json(self, figure3_files, capsys):
        pages, artists, theaters = figure3_files
        code = main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                *pages,
            ]
        )
        assert code == 0
        out = capsys.readouterr()
        lines = [line for line in out.out.splitlines() if line.strip()]
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first["artist"] == "Metallica"
        assert "extracted 4 objects" in out.err

    def test_bad_dict_spec(self, figure3_files, capsys):
        pages, artists, __ = figure3_files
        code = main(["extract", "--sod", SOD, "--dict", "nodelimiter", *pages])
        assert code == 2

    def test_missing_file_reports_error(self, capsys):
        code = main(["extract", "--sod", SOD, "/nonexistent/page.html"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_sod_reports_error(self, figure3_files, capsys):
        pages, *_ = figure3_files
        code = main(["extract", "--sod", "broken((", *pages])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_discarded_source(self, tmp_path, capsys):
        page = tmp_path / "junk.html"
        page.write_text("<html><body><p>nothing here</p></body></html>")
        code = main(
            ["extract", "--sod", "t(date<kind=predefined>)", str(page)]
        )
        assert code == 1
        assert "discarded" in capsys.readouterr().err


class TestResilienceFlags:
    def test_flags_accepted(self, figure3_files, capsys):
        pages, artists, theaters = figure3_files
        code = main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--failure-policy", "isolate",
                "--max-retries", "2",
                *pages,
            ]
        )
        assert code == 0
        assert "extracted 4 objects" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_parser(self, figure3_files, capsys):
        pages, __, __ = figure3_files
        with pytest.raises(SystemExit):
            main(
                ["extract", "--sod", SOD,
                 "--failure-policy", "shrug", *pages]
            )

    def test_negative_retries_rejected(self, figure3_files, capsys):
        pages, __, __ = figure3_files
        code = main(
            ["extract", "--sod", SOD, "--max-retries", "-1", *pages]
        )
        assert code == 2
        assert "max_retries" in capsys.readouterr().err


class TestWrapperPersistenceFlags:
    def test_save_then_load_wrapper_round_trip(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        wrapper_path = str(tmp_path / "wrapper.json")
        code = main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--save-wrapper", wrapper_path,
                *pages,
            ]
        )
        assert code == 0
        first = capsys.readouterr()
        saved = json.loads((tmp_path / "wrapper.json").read_text())
        assert saved["version"] == 1

        # Extract-often path: no --sod, no dictionaries, no re-wrapping.
        code = main(["extract", "--load-wrapper", wrapper_path, *pages])
        assert code == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "wrapping 0 ms" in second.err

    def test_sod_required_without_load_wrapper(self, figure3_files, capsys):
        pages, *_ = figure3_files
        code = main(["extract", *pages])
        assert code == 2
        assert "--sod is required" in capsys.readouterr().err

    def test_load_wrapper_missing_file(self, figure3_files, capsys):
        pages, *_ = figure3_files
        code = main(["extract", "--load-wrapper", "/nonexistent.json", *pages])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_load_wrapper_corrupt_json(self, figure3_files, capsys, tmp_path):
        pages, *_ = figure3_files
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(["extract", "--load-wrapper", str(bad), *pages])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_load_wrapper_unsupported_version(
        self, figure3_files, capsys, tmp_path
    ):
        pages, *_ = figure3_files
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"version": 99}), encoding="utf-8")
        code = main(["extract", "--load-wrapper", str(stale), *pages])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTraceFlag:
    def test_trace_writes_stage_events(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--trace", str(trace_path),
                *pages,
            ]
        )
        assert code == 0
        events = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "pipeline_start"
        assert kinds[-1] == "pipeline_end"
        stages = [e["stage"] for e in events if e["event"] == "stage_end"]
        assert stages == [
            "preprocess", "segmentation", "annotation", "wrapping", "extraction",
        ]
        assert all("elapsed_s" in e for e in events if e["event"] == "stage_end")

    def test_trace_written_even_when_discarded(self, tmp_path, capsys):
        page = tmp_path / "junk.html"
        page.write_text("<html><body><p>nothing here</p></body></html>")
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "extract",
                "--sod", "t(date<kind=predefined>)",
                "--trace", str(trace_path),
                str(page),
            ]
        )
        assert code == 1
        events = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        summary = next(e for e in events if e["event"] == "pipeline_end")
        assert summary["discarded"] is True


class TestDescribe:
    def test_describe_prints_structure(self, capsys):
        code = main(["describe", SOD])
        assert code == 0
        out = capsys.readouterr().out
        assert "canonical:" in out
        assert "artist" in out
        assert "(optional)" in out

    def test_describe_invalid(self, capsys):
        code = main(["describe", "((("])
        assert code == 1


class TestRegistryFlag:
    def test_cold_then_warm_registry_runs(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        registry_dir = str(tmp_path / "reg")
        argv = [
            "extract",
            "--sod", SOD,
            "--dict", f"artist={artists}",
            "--dict", f"theater={theaters}",
            "--registry", registry_dir,
            *pages,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "1 misses" in cold.err and "1 stores" in cold.err

        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 hits" in warm.err
        assert "wrapping 0 ms" in warm.err

    def test_registry_ls_gc_verify(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        registry_dir = str(tmp_path / "reg")
        main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--registry", registry_dir,
                *pages,
            ]
        )
        capsys.readouterr()

        assert main(["registry", "ls", "--root", registry_dir]) == 0
        out = capsys.readouterr()
        assert "1 entries" in out.err
        assert "kind=wrapper" in out.out
        assert "source=cli-source" in out.out

        assert main(["registry", "verify", "--root", registry_dir]) == 0
        assert "consistent" in capsys.readouterr().err

        assert main(["registry", "gc", "--root", registry_dir]) == 0
        assert "0 orphan" in capsys.readouterr().err

        # Seed two orphans: --dry-run lists them sorted, deletes nothing.
        wrappers_dir = tmp_path / "reg" / "wrappers"
        for letter in ("b", "a"):
            (wrappers_dir / (letter * 64 + ".json")).write_text("{}")
        assert (
            main(["registry", "gc", "--root", registry_dir, "--dry-run"])
            == 0
        )
        dry = capsys.readouterr()
        listed = [
            line for line in dry.out.splitlines() if "would remove" in line
        ]
        assert listed == sorted(listed) and len(listed) == 2
        assert "would remove 2 orphan file(s)" in dry.err
        assert len(sorted(wrappers_dir.glob("*.json"))) == 3  # nothing deleted

        assert main(["registry", "gc", "--root", registry_dir]) == 0
        real = capsys.readouterr()
        assert "removed 2 orphan file(s)" in real.err
        assert len(sorted(wrappers_dir.glob("*.json"))) == 1

    def test_registry_verify_flags_problems(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        registry_dir = tmp_path / "reg"
        main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--registry", str(registry_dir),
                *pages,
            ]
        )
        capsys.readouterr()
        (registry_dir / "wrappers" / ("0" * 64 + ".json")).write_text("{}")
        assert main(["registry", "verify", "--root", str(registry_dir)]) == 1
        assert "orphan" in capsys.readouterr().out


class TestWrapperFingerprintCheck:
    def test_saved_wrapper_records_fingerprint(
        self, figure3_files, capsys, tmp_path
    ):
        pages, artists, theaters = figure3_files
        wrapper_path = tmp_path / "wrapper.json"
        main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--save-wrapper", str(wrapper_path),
                *pages,
            ]
        )
        capsys.readouterr()
        saved = json.loads(wrapper_path.read_text())
        assert saved["version"] == 1
        assert len(saved["fingerprint"]) == 64

    def test_mismatch_with_sod_reinduces(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        wrapper_path = tmp_path / "wrapper.json"
        base = [
            "--sod", SOD,
            "--dict", f"artist={artists}",
            "--dict", f"theater={theaters}",
        ]
        main(["extract", *base, "--save-wrapper", str(wrapper_path), *pages])
        first = capsys.readouterr()
        saved = json.loads(wrapper_path.read_text())
        saved["fingerprint"] = "0" * 64
        wrapper_path.write_text(json.dumps(saved))

        code = main(
            ["extract", *base, "--load-wrapper", str(wrapper_path), *pages]
        )
        assert code == 0
        second = capsys.readouterr()
        assert "does not match" in second.err
        assert "re-inducing" in second.err
        assert second.out == first.out

    def test_mismatch_without_sod_warns_and_proceeds(
        self, figure3_files, capsys, tmp_path
    ):
        pages, artists, theaters = figure3_files
        wrapper_path = tmp_path / "wrapper.json"
        main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--save-wrapper", str(wrapper_path),
                *pages,
            ]
        )
        first = capsys.readouterr()
        saved = json.loads(wrapper_path.read_text())
        saved["fingerprint"] = "0" * 64
        wrapper_path.write_text(json.dumps(saved))

        code = main(["extract", "--load-wrapper", str(wrapper_path), *pages])
        assert code == 0
        second = capsys.readouterr()
        assert "does not match" in second.err
        assert second.out == first.out

    def test_deprecation_notes(self, figure3_files, capsys, tmp_path):
        pages, artists, theaters = figure3_files
        wrapper_path = str(tmp_path / "wrapper.json")
        main(
            [
                "extract",
                "--sod", SOD,
                "--dict", f"artist={artists}",
                "--dict", f"theater={theaters}",
                "--save-wrapper", wrapper_path,
                *pages,
            ]
        )
        assert "--save-wrapper is deprecated" in capsys.readouterr().err
        main(["extract", "--load-wrapper", wrapper_path, *pages])
        assert "--load-wrapper is deprecated" in capsys.readouterr().err
