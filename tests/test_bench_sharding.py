"""Sharded and pooled bench captures merge back to the serial bytes."""

import json

import pytest

from repro.core.sharding import ShardSpec
from repro.metrics.bench import (
    BenchConfig,
    BenchSession,
    CatalogCache,
    bench_digest,
    claim_bench_path,
    compare_documents,
    digest_projection,
    load_bench,
    merge_documents,
    write_bench,
)
from repro.datasets import catalog_entries
from repro.registry.store import WrapperRegistry

SCALE = 0.02
SYSTEMS = ("objectrunner",)


def capture(tmp_root=None, **config):
    session = BenchSession(
        BenchConfig(
            scale=SCALE,
            systems=SYSTEMS,
            registry_root=str(tmp_root) if tmp_root else None,
            **config,
        )
    )
    return session.capture()


@pytest.fixture(scope="module")
def backend_docs(tmp_path_factory):
    """Serial, thread and process captures over fresh registry roots."""
    root = tmp_path_factory.mktemp("backends")
    docs = {}
    for backend, workers in (
        ("serial", 1), ("thread", 4), ("process", 4)
    ):
        docs[backend] = capture(
            tmp_root=root / backend, backend=backend, workers=workers
        )
    return root, docs


@pytest.fixture(scope="module")
def shard_docs(tmp_path_factory):
    """Serial captures of the two halves of a 2-way shard split."""
    root = tmp_path_factory.mktemp("shards")
    return root, [
        capture(
            tmp_root=root / f"shard{index}",
            shard=ShardSpec(index=index, count=2),
        )
        for index in range(2)
    ]


class TestBackendIdentity:
    def test_digests_identical_across_backends(self, backend_docs):
        __, docs = backend_docs
        digests = {name: bench_digest(doc) for name, doc in docs.items()}
        assert digests["thread"] == digests["serial"]
        assert digests["process"] == digests["serial"]

    def test_registry_bytes_identical_across_backends(self, backend_docs):
        root, __ = backend_docs
        serial = (root / "serial" / "index.json").read_bytes()
        assert (root / "thread" / "index.json").read_bytes() == serial
        assert (root / "process" / "index.json").read_bytes() == serial

    def test_pooled_docs_carry_per_shard_rows(self, backend_docs):
        __, docs = backend_docs
        total = docs["serial"]["config"]["sources"]
        for backend in ("thread", "process"):
            rows = docs[backend]["sharding"]["per_shard"]["objectrunner"]
            assert sum(row["sources"] for row in rows) == total
            for row in rows:
                assert row["count"] == 4
                assert 0 <= row["index"] < 4
                assert row["shard"] is None
                assert row["wall_seconds"] >= 0

    def test_sweep_walls_recorded(self, backend_docs):
        __, docs = backend_docs
        for doc in docs.values():
            walls = doc["sharding"]["wall_seconds"]
            assert walls["objectrunner"] > 0

    def test_config_records_execution(self, backend_docs):
        __, docs = backend_docs
        assert docs["process"]["config"]["backend"] == "process"
        assert docs["process"]["config"]["workers"] == 4
        assert docs["serial"]["config"]["shard"] is None


class TestShardMerge:
    def test_shards_cover_catalog_without_overlap(self, shard_docs):
        __, docs = shard_docs
        total = len(catalog_entries(scale=SCALE))
        sizes = [doc["config"]["sources"] for doc in docs]
        assert sum(sizes) == total
        assert all(size > 0 for size in sizes)

    def test_merged_digest_equals_unsharded(self, backend_docs, shard_docs):
        __, docs = backend_docs
        __, parts = shard_docs
        merged = merge_documents(parts)
        assert bench_digest(merged) == bench_digest(docs["serial"])

    def test_merged_registry_bytes_equal_unsharded(
        self, backend_docs, shard_docs, tmp_path
    ):
        backend_root, __ = backend_docs
        shard_root, __ = shard_docs
        merged = WrapperRegistry.merged(
            tmp_path / "merged",
            [
                WrapperRegistry(shard_root / "shard0"),
                WrapperRegistry(shard_root / "shard1"),
            ],
        )
        assert merged.index_path.read_bytes() == (
            backend_root / "serial" / "index.json"
        ).read_bytes()

    def test_merged_document_shape(self, shard_docs):
        __, parts = shard_docs
        merged = merge_documents(parts)
        sharding = merged["sharding"]
        assert sharding["merged_from"] == ["0/2", "1/2"]
        assert merged["config"]["shard"] is None
        rows = sharding["per_shard"]["objectrunner"]
        assert len(rows) == 2
        walls = sharding["wall_seconds"]["objectrunner"]
        assert walls == round(
            sum(
                doc["sharding"]["wall_seconds"]["objectrunner"]
                for doc in parts
            ),
            6,
        )

    def test_merge_rejects_mismatched_scale(self, shard_docs):
        __, parts = shard_docs
        other = json.loads(json.dumps(parts[1]))
        other["config"]["scale"] = 0.5
        with pytest.raises(ValueError, match="scale"):
            merge_documents([parts[0], other])

    def test_merge_rejects_warm_cold_mix(self, shard_docs):
        __, parts = shard_docs
        other = json.loads(json.dumps(parts[1]))
        other["config"]["registry"] = False
        other["registry"] = None
        with pytest.raises(ValueError, match="warm and cold"):
            merge_documents([parts[0], other])

    def test_merge_needs_documents(self):
        with pytest.raises(ValueError):
            merge_documents([])


class TestDigestProjection:
    def test_digest_ignores_run_varying_fields(self, backend_docs):
        __, docs = backend_docs
        doc = json.loads(json.dumps(docs["serial"]))
        doc["generated_at"] = "2099-01-01T00:00:00+00:00"
        doc["process"]["peak_rss_bytes"] = 10**12
        doc["sharding"]["wall_seconds"] = {"objectrunner": 9999.0}
        doc["config"]["seed"]["pythonhashseed"] = "12345"
        assert bench_digest(doc) == bench_digest(docs["serial"])

    def test_digest_ignores_registry_store_race_split(self, backend_docs):
        # Where duplicate inductions are discarded (one registry vs at
        # merge time) is execution layout, not run identity — but the
        # hit/miss counts are behavior and must stay visible.
        __, docs = backend_docs
        doc = json.loads(json.dumps(docs["serial"]))
        assert doc["registry"], "fixture captures with a registry root"
        doc["registry"]["stores"] += 7
        doc["registry"]["races"] += 7
        assert bench_digest(doc) == bench_digest(docs["serial"])
        doc["registry"]["misses"] += 1
        assert bench_digest(doc) != bench_digest(docs["serial"])

    def test_digest_sees_quality_counts(self, backend_docs):
        __, docs = backend_docs
        doc = json.loads(json.dumps(docs["serial"]))
        domains = doc["systems"]["objectrunner"]["domains"]
        first = next(iter(domains.values()))
        first["objects_correct"] += 1
        assert bench_digest(doc) != bench_digest(docs["serial"])

    def test_projection_keeps_identity_config(self, backend_docs):
        __, docs = backend_docs
        projection = digest_projection(docs["serial"])
        assert projection["config"]["scale"] == SCALE
        assert projection["config"]["registry"] is True
        assert "pythonhashseed" not in json.dumps(projection)


class TestCompareExecutionGate:
    def test_backend_change_skips_timing_comparison(self, backend_docs):
        __, docs = backend_docs
        comparison = compare_documents(docs["serial"], docs["process"])
        assert comparison.ok
        assert any(
            "execution config differs" in note for note in comparison.notes
        )

    def test_same_execution_has_no_gate_note(self, backend_docs):
        __, docs = backend_docs
        comparison = compare_documents(docs["serial"], docs["serial"])
        assert comparison.ok
        assert not any(
            "execution config differs" in note for note in comparison.notes
        )

    def test_v1_document_gets_serial_defaults(self, backend_docs):
        __, docs = backend_docs
        old = json.loads(json.dumps(docs["serial"]))
        # Simulate a v1 document: no execution keys, no sharding block.
        old["schema_version"] = 1
        for key in ("shard", "backend", "workers"):
            old["config"].pop(key, None)
        old.pop("sharding", None)
        comparison = compare_documents(old, docs["serial"])
        assert comparison.ok
        assert not any(
            "execution config differs" in note for note in comparison.notes
        )


class TestAtomicWrites:
    def test_write_bench_is_atomic_on_failure(self, tmp_path, monkeypatch):
        import repro.registry.store as store_module

        path = tmp_path / "BENCH_1.json"
        write_bench(path, {"schema_version": 2, "good": True})
        before = path.read_bytes()

        def torn_replace(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(store_module.os, "replace", torn_replace)
        with pytest.raises(OSError):
            write_bench(path, {"schema_version": 2, "good": False})
        # The destination still holds the previous complete document.
        assert path.read_bytes() == before
        assert load_bench(path)["good"] is True

    def test_write_bench_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_7.json"
        document = {"schema_version": 2, "nested": {"a": [1, 2]}}
        write_bench(path, document)
        assert load_bench(path) == document
        # Canonical form: sorted keys, trailing newline.
        assert path.read_bytes().endswith(b"}\n")


class TestClaimBenchPath:
    def test_claims_are_distinct_without_writes(self, tmp_path):
        first = claim_bench_path(tmp_path)
        second = claim_bench_path(tmp_path)
        assert first != second
        # The claim itself reserves the sequence number: the file exists
        # (empty) before any document is written.
        assert first.exists() and first.stat().st_size == 0

    def test_stale_sequence_retries_to_next_free(self, tmp_path, monkeypatch):
        import repro.metrics.bench as bench_module

        (tmp_path / "BENCH_1.json").write_text("{}", encoding="utf-8")
        # A racing writer claimed 1 between our scan and our open: the
        # stale scan result must not clobber it.
        stale = iter([1, 1, 2])
        monkeypatch.setattr(
            bench_module, "next_seq", lambda root: next(stale)
        )
        path = claim_bench_path(tmp_path)
        assert path.name == "BENCH_2.json"
        assert (tmp_path / "BENCH_1.json").read_text(encoding="utf-8") == "{}"

    def test_two_writer_race_yields_both_sequences(self, tmp_path, monkeypatch):
        import repro.metrics.bench as bench_module

        # Both writers scan before either creates: both see next_seq=1.
        # O_EXCL serializes them — the loser retries onto 2.
        scans = iter([1, 1, 2])
        monkeypatch.setattr(
            bench_module, "next_seq", lambda root: next(scans)
        )
        first = claim_bench_path(tmp_path)
        second = claim_bench_path(tmp_path)
        assert first.name == "BENCH_1.json"
        assert second.name == "BENCH_2.json"


class TestCatalogCacheBounds:
    def test_lru_eviction_keeps_bound(self):
        cache = CatalogCache(max_sources=2)
        entries = catalog_entries(scale=SCALE)[:3]
        for entry in entries:
            cache.source(entry)
        assert len(cache._sources) == 2

    def test_evicted_source_regenerates_identically(self):
        bounded = CatalogCache(max_sources=1)
        unbounded = CatalogCache()
        entries = catalog_entries(scale=SCALE)[:2]
        first_pass = bounded.source(entries[0]).pages
        bounded.source(entries[1])  # evicts entries[0]
        regenerated = bounded.source(entries[0]).pages
        assert regenerated == first_pass
        assert regenerated == unbounded.source(entries[0]).pages

    def test_recency_refresh_protects_hot_entry(self):
        cache = CatalogCache(max_sources=2)
        entries = catalog_entries(scale=SCALE)[:3]
        cache.source(entries[0])
        cache.source(entries[1])
        cache.source(entries[0])  # refresh: entries[1] is now the victim
        cache.source(entries[2])
        assert entries[0].spec.name in cache._sources
        assert entries[1].spec.name not in cache._sources


class TestBenchConfigValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            BenchConfig(backend="fiber")

    def test_rejects_non_shardspec(self):
        with pytest.raises(ValueError, match="shard"):
            BenchConfig(shard="0/2")

    def test_accepts_known_backends(self):
        for backend in ("serial", "thread", "process"):
            assert BenchConfig(backend=backend).backend == backend
