"""Property tests on the HTML substrate's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmlkit.clean import clean_tree
from repro.htmlkit.dom import Element, Text
from repro.htmlkit.tidy import tidy

_soup = st.text(
    alphabet="<>/ab divspanliscript style img ='\"#x&;", max_size=200
)


class TestCleanInvariants:
    @settings(max_examples=100, deadline=None)
    @given(_soup)
    def test_no_dropped_tags_survive(self, source):
        root = clean_tree(tidy(source))
        for element in root.iter_elements():
            assert element.tag not in ("script", "style", "iframe", "noscript")

    @settings(max_examples=100, deadline=None)
    @given(_soup)
    def test_no_empty_nonprotected_elements(self, source):
        root = clean_tree(tidy(source))
        for element in root.iter_elements():
            if element.tag in ("html", "head", "body", "br", "hr", "img"):
                continue
            assert element.children, element.tag

    @settings(max_examples=100, deadline=None)
    @given(_soup)
    def test_attributes_whitelisted(self, source):
        root = clean_tree(tidy(source))
        allowed = {"id", "class", "type", "href"}
        for element in root.iter_elements():
            assert set(element.attributes) <= allowed

    @settings(max_examples=100, deadline=None)
    @given(_soup)
    def test_idempotent(self, source):
        from repro.htmlkit.serialize import to_html

        once = clean_tree(tidy(source))
        rendered = to_html(once)
        twice = clean_tree(tidy(rendered))
        assert to_html(twice) == rendered

    @settings(max_examples=100, deadline=None)
    @given(_soup)
    def test_parent_pointers_consistent_after_clean(self, source):
        root = clean_tree(tidy(source))
        for node in root.iter():
            if isinstance(node, Element):
                for child in node.children:
                    assert child.parent is node

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=100))
    def test_visible_text_preserved(self, text):
        # Plain visible text must survive tidy+clean (modulo whitespace).
        from repro.utils.text import normalize_text

        source = f"<body><div>{text.replace('<', ' ').replace('&', ' ')}</div></body>"
        root = clean_tree(tidy(source))
        assert normalize_text(root.text_content()) == normalize_text(
            text.replace("<", " ").replace("&", " ")
        )
