"""Tests for the Figure 3(b)-style wrapper rendering."""

from collections import Counter

from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
    Template,
)


def typed_slot(slot_id, annotation):
    slot = FieldSlot(slot_id=slot_id)
    for __ in range(5):
        slot.record_annotations({annotation})
    return slot


class TestWrapperHtml:
    def test_figure3b_shape(self):
        template = Template(
            roots=[
                ElementTemplate(
                    tag="li",
                    children=[
                        ElementTemplate(
                            tag="div", children=[typed_slot(0, "artist")]
                        ),
                        ElementTemplate(
                            tag="div", children=[typed_slot(1, "date")]
                        ),
                    ],
                )
            ]
        )
        html = template.to_wrapper_html()
        assert "<li>" in html and "</li>" in html
        assert '* type="artist"' in html
        assert '* type="date"' in html

    def test_iterator_brackets(self):
        unit = ElementTemplate(
            tag="span", attr_class="author", children=[typed_slot(0, "author")]
        )
        template = Template(
            roots=[IteratorSlot(slot_id=1, unit=unit, min_repeats=1, max_repeats=3)]
        )
        html = template.to_wrapper_html()
        assert "{<" in html and ">}" in html
        assert '<span class="author"' in html

    def test_static_text_rendered(self):
        template = Template(
            roots=[ElementTemplate(tag="div", children=[StaticSlot("New York")])]
        )
        assert "New York" in template.to_wrapper_html()

    def test_optional_marker(self):
        template = Template(
            roots=[ElementTemplate(tag="span", optional=True, children=[])]
        )
        assert "<span> ?" in template.to_wrapper_html()

    def test_untyped_slot_bare_star(self):
        template = Template(
            roots=[ElementTemplate(tag="div", children=[FieldSlot(slot_id=0)])]
        )
        html = template.to_wrapper_html()
        assert "*" in html
        assert "type=" not in html

    def test_element_level_annotation(self):
        element = ElementTemplate(
            tag="span",
            children=[FieldSlot(slot_id=0)],
            annotation_counts=Counter({"author": 9, "title": 1}),
        )
        template = Template(roots=[element])
        assert '<span type="author">' in template.to_wrapper_html()

    def test_real_figure3_wrapper(self, figure3_pages, figure3_recognizers):
        from repro.annotation.annotator import annotate_page
        from repro.sod.dsl import parse_sod
        from repro.wrapper.generate import WrapperConfig, generate_wrapper

        for page in figure3_pages:
            annotate_page(page, figure3_recognizers)
        sod = parse_sod(
            "concert(artist, date<kind=predefined>, "
            "location(theater, address<kind=predefined>?))"
        )
        wrapper = generate_wrapper(
            "figure3", figure3_pages, sod, WrapperConfig(support=2)
        )
        html = wrapper.template.to_wrapper_html()
        assert '* type="artist"' in html
        assert '* type="theater"' in html
        assert "New York City" in html  # constant template text
