"""Property tests on grading invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.interface import SystemOutput
from repro.datasets.domains import domain_spec
from repro.datasets.golden import GoldObject
from repro.eval.classify import grade_source
from repro.sod.instances import ObjectInstance

DOMAIN = domain_spec("cars")

_brands = st.sampled_from(["Toyota", "Honda", "Ford", "Mazda", "Kia"])
_prices = st.sampled_from(["$10,000", "$12,500", "$9,950", "$20,000"])


@st.composite
def _gold_and_rows(draw):
    count = draw(st.integers(1, 8))
    golds = []
    rows = []
    for index in range(count):
        brand = draw(_brands)
        price = draw(_prices)
        page = draw(st.integers(0, 2))
        golds.append(
            GoldObject(
                values={"brand": brand, "price": price},
                flat={"brand": [brand], "price": [price]},
                page_index=page,
            )
        )
        fate = draw(st.sampled_from(["exact", "joint", "wrong", "missing"]))
        if fate == "exact":
            rows.append((page, {"brand": brand, "price": price}))
        elif fate == "joint":
            rows.append((page, {"brand": f"{brand} {price}",
                                "price": f"{brand} {price}"}))
        elif fate == "wrong":
            rows.append((page, {"brand": "Zeppelin", "price": price}))
        # "missing": no row at all
    return golds, rows


def _grade(golds, rows):
    output = SystemOutput(
        system="objectrunner",
        source="s",
        objects=[
            ObjectInstance(values=values, page_index=page) for page, values in rows
        ],
    )
    return grade_source(DOMAIN, golds, output)


class TestGradingInvariants:
    @settings(max_examples=150, deadline=None)
    @given(_gold_and_rows())
    def test_object_classes_partition_total(self, data):
        golds, rows = data
        evaluation = _grade(golds, rows)
        total = (
            evaluation.objects_correct
            + evaluation.objects_partial
            + evaluation.objects_incorrect
        )
        assert total == evaluation.objects_total == len(golds)

    @settings(max_examples=150, deadline=None)
    @given(_gold_and_rows())
    def test_pc_bounded_by_pp(self, data):
        golds, rows = data
        evaluation = _grade(golds, rows)
        assert 0.0 <= evaluation.precision_correct
        assert evaluation.precision_correct <= evaluation.precision_partial <= 1.0

    @settings(max_examples=150, deadline=None)
    @given(_gold_and_rows())
    def test_attribute_classes_valid(self, data):
        golds, rows = data
        evaluation = _grade(golds, rows)
        for status in evaluation.attribute_class.values():
            assert status in ("correct", "partial", "incorrect", "absent")

    @settings(max_examples=100, deadline=None)
    @given(_gold_and_rows())
    def test_grading_deterministic(self, data):
        golds, rows = data
        first = _grade(golds, rows)
        second = _grade(golds, rows)
        assert first.attribute_class == second.attribute_class
        assert first.objects_correct == second.objects_correct

    @settings(max_examples=100, deadline=None)
    @given(_gold_and_rows())
    def test_perfect_extraction_grades_perfect(self, data):
        golds, __ = data
        perfect_rows = [
            (gold.page_index, dict(gold.values)) for gold in golds
        ]
        evaluation = _grade(golds, perfect_rows)
        assert evaluation.objects_correct == len(golds)
        assert evaluation.precision_correct == 1.0
