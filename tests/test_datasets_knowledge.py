"""Tests for domain-knowledge seeding with the coverage knob."""

import pytest

from repro.datasets.domains import DOMAINS, domain_spec
from repro.datasets.golden import shared_pools
from repro.datasets.knowledge import build_knowledge
from repro.recognizers.build import DictionaryBuilder


class TestBuildKnowledge:
    def test_deterministic(self):
        domain = domain_spec("albums")
        a = build_knowledge(domain, coverage=0.2, seed="k")
        b = build_knowledge(domain, coverage=0.2, seed="k")
        assert len(a.ontology) == len(b.ontology)
        assert list(a.corpus.sentences()) == list(b.corpus.sentences())

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_gazetteer_buildable_for_every_type(self, name):
        domain = domain_spec(name)
        knowledge = build_knowledge(domain, coverage=0.2)
        builder = DictionaryBuilder(
            ontology=knowledge.ontology, corpus=knowledge.corpus
        )
        for type_name, class_name in domain.gazetteer_classes.items():
            gazetteer = builder.build(class_name, type_name=type_name)
            assert len(gazetteer) > 0, (name, class_name)

    def test_coverage_controls_dictionary_size(self):
        domain = domain_spec("albums")
        low = build_knowledge(domain, coverage=0.1)
        high = build_knowledge(domain, coverage=0.4)
        builder_low = DictionaryBuilder(ontology=low.ontology, corpus=low.corpus)
        builder_high = DictionaryBuilder(ontology=high.ontology, corpus=high.corpus)
        assert len(builder_high.build("Artist")) > len(builder_low.build("Artist"))

    def test_coverage_roughly_hits_fraction(self):
        domain = domain_spec("albums")
        knowledge = build_knowledge(domain, coverage=0.2)
        builder = DictionaryBuilder(
            ontology=knowledge.ontology, corpus=knowledge.corpus
        )
        gazetteer = builder.build("Artist")
        pool = shared_pools().for_class("Artist")
        covered = sum(1 for value in pool if value in gazetteer)
        assert 0.1 * len(pool) <= covered <= 0.35 * len(pool)

    def test_instances_typed_under_neighbour_classes(self):
        # YAGO-style: nothing is typed directly under the requested class.
        domain = domain_spec("albums")
        knowledge = build_knowledge(domain, coverage=0.2)
        assert knowledge.ontology.instances_of("Artist") == {}
        neighbour_instances = knowledge.ontology.instances_of("Band")
        neighbour_instances.update(knowledge.ontology.instances_of("Singer"))
        assert neighbour_instances

    def test_corpus_channel_contributes(self):
        domain = domain_spec("albums")
        knowledge = build_knowledge(domain, coverage=0.3)
        ontology_only = DictionaryBuilder(ontology=knowledge.ontology).build("Artist")
        both = DictionaryBuilder(
            ontology=knowledge.ontology, corpus=knowledge.corpus
        ).build("Artist")
        assert len(both) > len(ontology_only)
