"""End-to-end failure-policy acceptance: isolate, fail-fast, retries.

Four real album sources run through the full pipeline with a seeded
:class:`~repro.core.faults.FaultInjector` crashing or destabilizing one
of them.  Every test injects a recording fake sleep, so the suite pays
zero wall-clock time for backoff.
"""

import io
import json
import threading

import pytest

from repro.core import ObjectRunner, RunParams
from repro.core.faults import (
    CRASH,
    TRANSIENT,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)
from repro.core.pipeline import TraceObserver
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.errors import MultiSourceError


@pytest.fixture(scope="module")
def four_sources():
    """Four independent album sites of the same domain."""
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    sources = {}
    for index in range(4):
        spec = SiteSpec(
            name=f"flt-{index}",
            domain="albums",
            archetype="clean",
            total_objects=12,
            seed=("faults", index),
        )
        sources[spec.name] = generate_source(spec, domain).pages
    return domain, knowledge, sources


class FakeSleep:
    """Records requested delays instead of sleeping."""

    def __init__(self):
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, seconds):
        with self._lock:
            self.calls.append(seconds)


def make_runner(domain, knowledge, injector=None, sleep=None, **params):
    return ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(**params),
        fault_injector=injector,
        sleep=sleep or FakeSleep(),
    )


def as_bytes(outcome):
    return json.dumps(
        [instance.values for instance in outcome.objects], sort_keys=True
    ).encode()


def crash_spec(source):
    return FaultSpec(stage="wrapping", source=source, kind=CRASH)


class TestIsolatePolicy:
    def test_parallel_isolate_matches_fault_free_serial(self, four_sources):
        # The acceptance scenario: one of four sources crashes under
        # isolate; the surviving three must be byte-identical to a
        # fault-free serial run of those three sources.
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-1")], sleep=FakeSleep())
        faulty = make_runner(
            domain, knowledge, injector=injector,
            max_workers=4, failure_policy="isolate",
        ).run_sources(sources)

        survivors = {k: v for k, v in sources.items() if k != "flt-1"}
        clean = make_runner(
            domain, knowledge, max_workers=1
        ).run_sources(survivors)

        assert as_bytes(faulty) == as_bytes(clean)
        assert list(faulty.results) == list(survivors)
        assert faulty.sources_ok == 3
        assert faulty.sources_failed == 1

    def test_failure_record_carries_stage_error_attempts(self, four_sources):
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-1")], sleep=FakeSleep())
        outcome = make_runner(
            domain, knowledge, injector=injector,
            max_workers=4, failure_policy="isolate",
        ).run_sources(sources)
        failure = outcome.failures["flt-1"]
        assert failure.source == "flt-1"
        assert failure.stage == "wrapping"
        assert failure.error.startswith("InjectedFaultError:")
        assert failure.attempts == 1
        assert injector.fired == [("flt-1", "wrapping", "crash", 1)]

    def test_serial_isolate_equals_parallel_isolate(self, four_sources):
        domain, knowledge, sources = four_sources
        outcomes = []
        for workers in (1, 4):
            injector = FaultInjector([crash_spec("flt-2")], sleep=FakeSleep())
            outcomes.append(
                make_runner(
                    domain, knowledge, injector=injector,
                    max_workers=workers, failure_policy="isolate",
                ).run_sources(sources)
            )
        serial, parallel = outcomes
        assert as_bytes(serial) == as_bytes(parallel)
        assert list(serial.failures) == list(parallel.failures) == ["flt-2"]


class TestFailFastPolicy:
    def test_parallel_fail_fast_raises_with_partial(self, four_sources):
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-1")], sleep=FakeSleep())
        runner = make_runner(
            domain, knowledge, injector=injector,
            max_workers=4, failure_policy="fail_fast",
        )
        with pytest.raises(MultiSourceError) as excinfo:
            runner.run_sources(sources)
        error = excinfo.value
        assert error.failure is not None
        assert error.failure.source == "flt-1"
        assert error.failure.stage == "wrapping"
        # Partial keeps only sources before the failure, in input order.
        assert list(error.partial.results) == ["flt-0"]
        assert error.partial.failures["flt-1"] is error.failure
        assert "flt-1" in str(error)

    def test_fail_fast_partial_matches_serial_prefix(self, four_sources):
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-1")], sleep=FakeSleep())
        runner = make_runner(
            domain, knowledge, injector=injector,
            max_workers=4, failure_policy="fail_fast",
        )
        with pytest.raises(MultiSourceError) as excinfo:
            runner.run_sources(sources)
        prefix = make_runner(domain, knowledge, max_workers=1).run_sources(
            {"flt-0": sources["flt-0"]}
        )
        assert as_bytes(excinfo.value.partial) == as_bytes(prefix)

    def test_fail_fast_leaves_no_orphaned_threads(self, four_sources):
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-0")], sleep=FakeSleep())
        runner = make_runner(
            domain, knowledge, injector=injector,
            max_workers=4, failure_policy="fail_fast",
        )
        before = threading.active_count()
        with pytest.raises(MultiSourceError):
            runner.run_sources(sources)
        # The with-block around the executor joins the pool before the
        # error propagates, so no worker thread survives the raise.
        assert threading.active_count() == before
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith("ThreadPoolExecutor")
        ]

    def test_serial_fail_fast_skips_later_sources(self, four_sources):
        domain, knowledge, sources = four_sources
        injector = FaultInjector([crash_spec("flt-1")], sleep=FakeSleep())
        runner = make_runner(
            domain, knowledge, injector=injector,
            max_workers=1, failure_policy="fail_fast",
        )
        with pytest.raises(MultiSourceError) as excinfo:
            runner.run_sources(sources)
        assert list(excinfo.value.partial.results) == ["flt-0"]
        # Sources after the failing one never reached the faulted stage.
        assert injector.attempts("flt-2", "wrapping") == 0
        assert injector.attempts("flt-3", "wrapping") == 0


class TestTransientRetries:
    def test_transient_fault_recovers_and_traces_retry(self, four_sources):
        # A transient fault on attempt 1 that succeeds on attempt 2 must
        # leave a stage_retry event in the JSON-lines trace and an
        # outcome byte-identical to the fault-free run.
        domain, knowledge, sources = four_sources
        sink = io.StringIO()
        sleep = FakeSleep()
        injector = FaultInjector(
            [FaultSpec(stage="wrapping", source="flt-2", kind=TRANSIENT)],
            sleep=FakeSleep(),
        )
        runner = make_runner(
            domain, knowledge, injector=injector, sleep=sleep,
            max_workers=4, max_retries=1,
        )
        runner.add_observer(TraceObserver(sink))
        outcome = runner.run_sources(sources)

        clean = make_runner(domain, knowledge, max_workers=1).run_sources(
            sources
        )
        assert as_bytes(outcome) == as_bytes(clean)
        assert outcome.sources_ok == 4
        assert not outcome.failures

        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        [retry] = [e for e in events if e["event"] == "stage_retry"]
        assert retry["source"] == "flt-2"
        assert retry["stage"] == "wrapping"
        assert retry["attempt"] == 1
        assert retry["retry_delay_s"] > 0
        assert "TransientSourceError" in retry["error"]
        assert [e.attempt for e in injector.retries_observed] == [1]

    def test_backoff_uses_injected_sleep_not_wall_clock(self, four_sources):
        domain, knowledge, sources = four_sources
        sleep = FakeSleep()
        injector = FaultInjector(
            [FaultSpec(stage="wrapping", source="flt-2", kind=TRANSIENT)],
            sleep=FakeSleep(),
        )
        runner = make_runner(
            domain, knowledge, injector=injector, sleep=sleep,
            max_workers=4, max_retries=1,
        )
        runner.run_sources(sources)
        policy = RetryPolicy.from_params(RunParams(max_retries=1))
        assert sleep.calls == [
            policy.delay(1, source="flt-2", stage="wrapping")
        ]
