"""Shared fixtures: the paper's Figure 3 pages and small generated sources."""

from __future__ import annotations

import pytest

from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.htmlkit import clean_tree, tidy
from repro.recognizers import GazetteerRecognizer, predefined_recognizer

FIGURE3_P1 = """
<html><body><li>
<div>Metallica</div>
<div>Monday May 11, 8:00pm</div>
<div>
 <span><a>Madison Square Garden</a></span>
 <span>237 West 42nd street</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10036</span>
</div></li></body></html>
"""

FIGURE3_P2 = """
<html><body><li>
<div>Coldplay</div>
<div>Saturday August 8, 2010 8:00pm</div>
<div>
 <span><a>Bowery Ballroom</a></span>
 <span>Delancey St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10002</span>
</div></li></body></html>
"""

FIGURE3_P3 = """
<html><body>
<li>
<div>Madonna</div>
<div>Saturday May 29 7:00p</div>
<div>
 <span><a>The Town Hall</a></span>
 <span>131 W 55th St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10019</span>
</div></li>
<li>
<div>Muse</div>
<div>Friday June 19 7:00p</div>
<div>
 <span><a>B.B King Blues and Grill</a></span>
 <span>4 Penn Plaza</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10001</span>
</div></li>
</body></html>
"""


@pytest.fixture()
def figure3_pages():
    """The running example's three pages, tidied."""
    return [tidy(page) for page in (FIGURE3_P1, FIGURE3_P2, FIGURE3_P3)]


@pytest.fixture()
def figure3_recognizers():
    """Recognizers matching the running example's concert SOD."""
    return [
        GazetteerRecognizer(
            "artist", ["Metallica", "Coldplay", "Madonna", "Muse"]
        ),
        GazetteerRecognizer(
            "theater",
            [
                "Madison Square Garden",
                "Bowery Ballroom",
                "The Town Hall",
                "B.B King Blues and Grill",
            ],
        ),
        predefined_recognizer("date", type_name="date"),
        predefined_recognizer("address", type_name="address"),
    ]


def make_source(domain_name: str, archetype: str = "clean", **kwargs):
    """Generate a small test source (helper, not a fixture)."""
    defaults = dict(total_objects=40, seed=("tests", domain_name, archetype))
    defaults.update(kwargs)
    spec = SiteSpec(
        name=f"test-{domain_name}-{archetype}",
        domain=domain_name,
        archetype=archetype,
        **defaults,
    )
    domain = domain_spec(domain_name)
    return generate_source(spec, domain), domain


def prepared_pages(source):
    """Tidy and clean a generated source's raw pages."""
    return [clean_tree(tidy(raw)) for raw in source.pages]


@pytest.fixture(scope="session")
def albums_clean():
    """A small clean albums source with its domain (session-cached)."""
    spec = SiteSpec(
        name="fixture-albums-clean",
        domain="albums",
        archetype="clean",
        total_objects=40,
        seed=("fixture", "albums"),
    )
    domain = domain_spec("albums")
    return generate_source(spec, domain), domain


@pytest.fixture(scope="session")
def albums_knowledge():
    """Domain knowledge for albums at the paper's 20% coverage."""
    return build_knowledge(domain_spec("albums"), coverage=0.2)
