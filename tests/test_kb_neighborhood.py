"""Tests for semantic-neighborhood instance lookup."""

import pytest

from repro.kb.neighborhood import NeighborhoodQuery, semantic_neighborhood
from repro.kb.ontology import Ontology


@pytest.fixture()
def music_ontology():
    """The paper's Metallica example: typed under Band, asked as Artist."""
    ontology = Ontology()
    ontology.add_instance("Metallica", "Band", 0.95)
    ontology.add_instance("Madonna", "Singer", 0.9)
    ontology.add_instance("Jane Doe", "Person", 1.0)
    ontology.add_subclass("Band", "Artist")
    ontology.add_subclass("Singer", "Artist")
    ontology.add_subclass("Artist", "Person")
    return ontology


class TestNeighborhood:
    def test_direct_instances_found(self, music_ontology):
        music_ontology.add_instance("Direct Artist", "Artist", 1.0)
        result = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=0)
        )
        assert result.instances == {"Direct Artist": 1.0}

    def test_metallica_found_via_band(self, music_ontology):
        result = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=1)
        )
        assert "Metallica" in result.instances
        assert "Madonna" in result.instances

    def test_confidence_decays_with_distance(self, music_ontology):
        result = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=1, decay=0.8)
        )
        assert result.instances["Metallica"] == pytest.approx(0.95 * 0.8)

    def test_superclasses_not_followed_by_default(self, music_ontology):
        # Person is a superclass of Artist; its instances would overgeneralize.
        result = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=2)
        )
        assert "Jane Doe" not in result.instances

    def test_superclasses_follow_when_enabled(self, music_ontology):
        result = semantic_neighborhood(
            music_ontology,
            NeighborhoodQuery("Artist", radius=1, follow_superclasses=True),
        )
        assert "Jane Doe" in result.instances

    def test_related_edges_followed(self):
        ontology = Ontology()
        ontology.add_instance("The Fillmore", "ConcertVenue", 0.9)
        ontology.add_related("ConcertVenue", "Theater")
        result = semantic_neighborhood(ontology, NeighborhoodQuery("Theater"))
        assert "The Fillmore" in result.instances

    def test_radius_limits_walk(self, music_ontology):
        music_ontology.add_subclass("MetalBand", "Band")
        music_ontology.add_instance("Slayer Clone", "MetalBand", 1.0)
        radius1 = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=1)
        )
        radius2 = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=2)
        )
        assert "Slayer Clone" not in radius1.instances
        assert "Slayer Clone" in radius2.instances

    def test_min_confidence_filter(self, music_ontology):
        result = semantic_neighborhood(
            music_ontology,
            NeighborhoodQuery("Artist", radius=1, min_confidence=0.9),
        )
        assert "Metallica" not in result.instances  # 0.95 * 0.85 < 0.9

    def test_contributing_classes_recorded(self, music_ontology):
        result = semantic_neighborhood(
            music_ontology, NeighborhoodQuery("Artist", radius=1)
        )
        assert result.contributing_classes.get("band") == 1

    def test_max_confidence_kept_for_duplicates(self):
        ontology = Ontology()
        ontology.add_instance("X", "A", 0.5)
        ontology.add_instance("X", "B", 0.9)
        ontology.add_related("A", "B")
        result = semantic_neighborhood(
            ontology, NeighborhoodQuery("A", radius=1, decay=0.5)
        )
        # Direct (0.5) beats decayed-from-B (0.45).
        assert result.instances["X"] == 0.5
