"""Failure injection: the pipeline must degrade, never crash.

Real crawls contain broken pages, empty documents, truncated HTML and the
occasional page from a different template.  These tests inject each fault
into otherwise-clean sources and check the pipeline's behaviour: either a
clean discard with a reason, or extraction that simply skips the damage.
"""

import pytest

from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.errors import ReproError


@pytest.fixture(scope="module")
def albums():
    domain = domain_spec("albums")
    spec = SiteSpec(
        name="fault-albums",
        domain="albums",
        archetype="clean",
        total_objects=50,
        seed=("faults", "albums"),
    )
    source = generate_source(spec, domain)
    knowledge = build_knowledge(domain, coverage=0.25)
    return domain, source, knowledge


def run(domain, knowledge, pages, params=None):
    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=params,
    )
    return runner.run_source("faulty", pages)


class TestBrokenPages:
    def test_empty_pages_mixed_in(self, albums):
        domain, source, knowledge = albums
        pages = list(source.pages) + ["", "   ", "<html></html>"]
        result = run(domain, knowledge, pages)
        assert result.ok
        assert len(result.objects) == len(source.gold)

    def test_truncated_page(self, albums):
        domain, source, knowledge = albums
        pages = list(source.pages)
        pages[0] = pages[0][: len(pages[0]) // 2]  # chop mid-tag
        result = run(domain, knowledge, pages)
        assert result.ok
        # Some records of the truncated page may be lost, never invented.
        assert len(result.objects) <= len(source.gold)
        assert len(result.objects) >= len(source.gold) * 0.6

    def test_garbage_bytes_page(self, albums):
        domain, source, knowledge = albums
        pages = list(source.pages) + ["<<<>>>&&&\x00\x01 not html at all <"]
        result = run(domain, knowledge, pages)
        assert result.ok

    def test_foreign_template_page(self, albums):
        domain, source, knowledge = albums
        foreign = (
            "<html><body><table><tr><td>totally different site"
            "</td></tr></table></body></html>"
        )
        pages = list(source.pages) + [foreign]
        result = run(domain, knowledge, pages)
        assert result.ok
        assert len(result.objects) == len(source.gold)

    def test_single_page_source(self, albums):
        domain, source, knowledge = albums
        result = run(domain, knowledge, source.pages[:1])
        # A single list page is enough to find record repetition.
        assert result.ok
        assert result.objects

    def test_all_pages_empty_discards(self, albums):
        domain, __, knowledge = albums
        result = run(domain, knowledge, ["<html></html>"] * 5)
        assert result.discarded
        assert result.discard_reason

    def test_no_pages(self, albums):
        domain, __, knowledge = albums
        result = run(domain, knowledge, [])
        assert result.discarded

    def test_never_raises_repro_errors(self, albums):
        domain, source, knowledge = albums
        nasty_pages = [
            source.pages[0],
            "<li><li><li>",
            "</div></div>",
            "<html><body>" + "<div>" * 200,
            source.pages[1],
        ]
        try:
            run(domain, knowledge, nasty_pages)
        except ReproError as exc:  # pragma: no cover - should not happen
            pytest.fail(f"pipeline raised instead of degrading: {exc}")


class TestHostileContent:
    def test_script_injection_in_values(self, albums):
        domain, __, knowledge = albums
        page = (
            "<html><body><div id='m'>"
            + "".join(
                f"<li><div class='t'><a>Title {i}</a></div>"
                f"<div class='p'>$1{i}.99</div></li>"
                for i in range(8)
            )
            + "<script>alert('xss')</script></div></body></html>"
        )
        result = run(
            domain,
            knowledge,
            [page, page, page],
            params=RunParams(enforce_alpha=False),
        )
        if result.ok:
            for instance in result.objects:
                for values in instance.flat().values():
                    for value in values:
                        assert "alert(" not in value

    def test_huge_flat_page(self, albums):
        domain, __, knowledge = albums
        page = (
            "<html><body><div id='m'>"
            + "".join(f"<li><div>{'word ' * 40}{i}</div></li>" for i in range(100))
            + "</div></body></html>"
        )
        result = run(
            domain, knowledge, [page] * 3, params=RunParams(enforce_alpha=False)
        )
        assert result is not None  # completed without hanging or raising
