"""Tests for baseline column-to-attribute mapping."""

from repro.baselines.interface import TableRecord
from repro.datasets.domains import domain_spec
from repro.datasets.golden import GoldObject
from repro.eval.columns import map_columns, records_to_attribute_rows


def gold_albums():
    rows = [
        ("Silent Rivers", "Neon Foxes", "$10.00"),
        ("Golden Horizon", "Wild Tigers", "$20.00"),
        ("Paper Kingdom", "Iron Sirens", "$30.00"),
    ]
    out = []
    for index, (title, artist, price) in enumerate(rows):
        values = {"title": title, "artist": artist, "price": price}
        out.append(
            GoldObject(
                values=values,
                flat={k: [v] for k, v in values.items()},
                page_index=0,
            )
        )
    return out


def record(columns, page_index=0):
    return TableRecord(
        columns={k: (v if isinstance(v, list) else [v]) for k, v in columns.items()},
        page_index=page_index,
    )


class TestMapColumns:
    def test_exact_columns_mapped(self):
        records = [
            record({0: "Silent Rivers", 1: "Neon Foxes", 2: "$10.00"}),
            record({0: "Golden Horizon", 1: "Wild Tigers", 2: "$20.00"}),
            record({0: "Paper Kingdom", 1: "Iron Sirens", 2: "$30.00"}),
        ]
        mapping = map_columns(records, gold_albums(), domain_spec("albums"))
        assert mapping == {0: "title", 1: "artist", 2: "price"}

    def test_junk_columns_unmapped(self):
        records = [
            record({0: "Silent Rivers", 9: "In Stock"}),
            record({0: "Golden Horizon", 9: "Bestseller"}),
            record({0: "Paper Kingdom", 9: "In Stock"}),
        ]
        mapping = map_columns(records, gold_albums(), domain_spec("albums"))
        assert mapping == {0: "title"}

    def test_concatenated_column_maps_by_containment(self):
        records = [
            record({0: "Silent Rivers by Neon Foxes"}),
            record({0: "Golden Horizon by Wild Tigers"}),
            record({0: "Paper Kingdom by Iron Sirens"}),
        ]
        mapping = map_columns(records, gold_albums(), domain_spec("albums"))
        assert 0 in mapping

    def test_component_column_maps_by_reverse_containment(self):
        # A column holding only part of a composite gold value still maps.
        gold = gold_albums()
        for g in gold:
            g.flat["title"] = [g.flat["title"][0] + " extended edition"]
        records = [
            record({0: "Silent Rivers"}),
            record({0: "Golden Horizon"}),
            record({0: "Paper Kingdom"}),
        ]
        mapping = map_columns(records, gold, domain_spec("albums"))
        assert mapping == {0: "title"}

    def test_threshold_blocks_weak_columns(self):
        records = [
            record({0: "Silent Rivers"}),
            record({0: "something else"}),
            record({0: "unrelated text"}),
            record({0: "more junk"}),
        ]
        mapping = map_columns(
            records, gold_albums(), domain_spec("albums"), threshold=0.5
        )
        assert 0 not in mapping

    def test_empty_records(self):
        assert map_columns([], gold_albums(), domain_spec("albums")) == {}


class TestAttributeRows:
    def test_projection(self):
        records = [record({0: "Silent Rivers", 1: "Neon Foxes", 9: "junk"})]
        mapping = {0: "title", 1: "artist"}
        rows = records_to_attribute_rows(records, mapping)
        assert rows == [(0, {"title": ["Silent Rivers"], "artist": ["Neon Foxes"]})]

    def test_multiple_columns_same_attribute_extend(self):
        records = [record({0: "part one", 1: "part two"})]
        mapping = {0: "title", 1: "title"}
        rows = records_to_attribute_rows(records, mapping)
        assert rows[0][1]["title"] == ["part one", "part two"]

    def test_unmapped_records_dropped(self):
        records = [record({9: "junk only"})]
        assert records_to_attribute_rows(records, {}) == []
