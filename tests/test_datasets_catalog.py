"""Tests for the Table I source catalog."""

from collections import Counter

from repro.datasets.catalog import catalog_entries, entries_for_domain
from repro.datasets.domains import DOMAINS
from repro.datasets.sites import generate_source
from repro.datasets.domains import domain_spec


class TestCatalogShape:
    def test_forty_nine_sources(self):
        assert len(catalog_entries()) == 49

    def test_rows_numbered_like_paper(self):
        rows = [entry.row for entry in catalog_entries()]
        assert rows == list(range(1, 50))

    def test_domain_counts_match_paper(self):
        by_domain = Counter(entry.spec.domain for entry in catalog_entries())
        assert by_domain == {
            "concerts": 9,
            "albums": 10,
            "books": 10,
            "publications": 10,
            "cars": 10,
        }

    def test_domains_known(self):
        for entry in catalog_entries():
            assert entry.spec.domain in DOMAINS

    def test_one_discarded_source(self):
        discarded = [entry for entry in catalog_entries() if entry.paper.discarded]
        assert len(discarded) == 1
        assert discarded[0].spec.name == "emusic"
        assert discarded[0].spec.archetype == "unstructured"

    def test_books_and_publications_too_regular(self):
        for domain in ("books", "publications"):
            for entry in entries_for_domain(domain):
                assert entry.spec.constant_record_count is not None

    def test_paper_object_totals(self):
        totals = {
            entry.spec.name: entry.paper.objects_total
            for entry in catalog_entries()
        }
        assert totals["upcoming-yahoo-list"] == 250
        assert totals["secondspin"] == 2500
        assert totals["iowastate"] == 481

    def test_paper_attribute_tallies_consistent(self):
        for entry in catalog_entries():
            paper = entry.paper
            if paper.discarded:
                continue
            graded = paper.attrs_correct + paper.attrs_partial + paper.attrs_incorrect
            assert graded <= paper.attrs_total

    def test_archetypes_follow_outcomes(self):
        for entry in catalog_entries():
            paper = entry.paper
            if paper.discarded:
                continue
            if paper.objects_partial == paper.objects_total and paper.objects_total:
                assert entry.spec.archetype.startswith("partial_inline"), (
                    entry.spec.name
                )
            if paper.objects_incorrect == paper.objects_total and paper.objects_total:
                assert entry.spec.archetype in ("mixed_structure", "partial_inline"), (
                    entry.spec.name
                )

    def test_scale_controls_volume(self):
        small = catalog_entries(scale=0.05)
        large = catalog_entries(scale=0.5)
        for s, l in zip(small, large):
            if not s.paper.discarded and s.paper.objects_total >= 200:
                assert s.spec.total_objects < l.spec.total_objects


class TestCatalogGeneratable:
    def test_sample_entries_generate(self):
        # One entry per domain actually renders (full sweep is the bench).
        seen: set[str] = set()
        for entry in catalog_entries(scale=0.02):
            if entry.spec.domain in seen:
                continue
            seen.add(entry.spec.domain)
            source = generate_source(entry.spec, domain_spec(entry.spec.domain))
            assert source.pages
