"""Tests for VIPS-style segmentation and central-block selection."""

from repro.htmlkit.tidy import tidy
from repro.vision.segmentation import (
    find_block_by_signature,
    main_content_block,
    segment_page,
    select_central_block,
)

PAGE = """
<html><body>
<header><h1>MegaEvents</h1></header>
<nav><a href=x>Home</a><a>Concerts</a><a>About</a></nav>
<div id="main" class="content">
<li><div>Coldplay</div><div>Saturday August 8, 2010 8:00pm</div>
<div><span><a>Bowery Ballroom</a></span><span>Delancey St</span></div></li>
<li><div>Muse</div><div>Friday June 19 7:00p</div>
<div><span><a>B.B King Blues</a></span><span>4 Penn Plaza</span></div></li>
<li><div>Madonna</div><div>Saturday May 29 7:00p</div>
<div><span><a>The Town Hall</a></span><span>131 W 55th St</span></div></li>
</div>
<footer>copyright 2010</footer>
</body></html>
"""


class TestSegmentation:
    def test_block_tree_rooted_at_body(self):
        tree = segment_page(tidy(PAGE))
        assert tree.root.element.tag == "body"

    def test_blocks_have_rects(self):
        tree = segment_page(tidy(PAGE))
        for block in tree.all_blocks():
            assert block.rect.area >= 0

    def test_content_div_is_a_block(self):
        tree = segment_page(tidy(PAGE))
        signatures = [block.signature for block in tree.all_blocks()]
        assert any("id=main" in signature for signature in signatures)


class TestCentralBlock:
    def test_selects_content_over_chrome(self):
        tree = segment_page(tidy(PAGE))
        winner = select_central_block(tree)
        assert winner.element.attributes.get("id") == "main"

    def test_single_block_page(self):
        tree = segment_page(tidy("<body><p>just text</p></body>"))
        winner = select_central_block(tree)
        assert winner is not None


class TestCrossPage:
    def test_majority_vote_across_pages(self):
        trees = [segment_page(tidy(PAGE)) for __ in range(3)]
        signature = main_content_block(trees)
        assert signature is not None
        assert "id=main" in signature

    def test_find_block_by_signature(self):
        tree = segment_page(tidy(PAGE))
        signature = main_content_block([tree])
        block = find_block_by_signature(tree, signature)
        assert block is not None
        assert block.element.attributes.get("id") == "main"

    def test_find_block_missing_signature(self):
        tree = segment_page(tidy(PAGE))
        assert find_block_by_signature(tree, "nope|x") is None

    def test_empty_input(self):
        assert main_content_block([]) is None
