"""Tests for the HTML lexer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmlkit.tokenizer import tokenize_html
from repro.htmlkit.tokens import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
)


def tokens(source):
    return list(tokenize_html(source))


class TestBasicTokens:
    def test_simple_element(self):
        result = tokens("<p>hi</p>")
        assert isinstance(result[0], StartTagToken) and result[0].name == "p"
        assert isinstance(result[1], TextToken) and result[1].text == "hi"
        assert isinstance(result[2], EndTagToken) and result[2].name == "p"

    def test_attributes_double_quoted(self):
        (tag,) = tokens('<div class="main" id="x">')
        assert tag.attribute("class") == "main"
        assert tag.attribute("id") == "x"

    def test_attributes_single_quoted_and_unquoted(self):
        (tag,) = tokens("<a href='u' target=_blank>")
        assert tag.attribute("href") == "u"
        assert tag.attribute("target") == "_blank"

    def test_boolean_attribute(self):
        (tag,) = tokens("<input hidden>")
        assert tag.attribute("hidden") == ""

    def test_self_closing(self):
        (tag,) = tokens("<br/>")
        assert tag.self_closing

    def test_tag_names_lowercased(self):
        result = tokens("<DIV></DIV>")
        assert result[0].name == "div"
        assert result[1].name == "div"

    def test_entities_decoded_in_text(self):
        result = tokens("<p>a &amp; b</p>")
        assert result[1].text == "a & b"

    def test_entities_decoded_in_attributes(self):
        (tag,) = tokens('<a title="a&quot;b">')
        assert tag.attribute("title") == 'a"b'


class TestCommentsAndDoctype:
    def test_comment(self):
        (comment,) = tokens("<!-- hello -->")
        assert isinstance(comment, CommentToken)
        assert comment.text == " hello "

    def test_unterminated_comment(self):
        (comment,) = tokens("<!-- oops")
        assert isinstance(comment, CommentToken)

    def test_doctype(self):
        result = tokens("<!DOCTYPE html><html></html>")
        assert isinstance(result[0], DoctypeToken)
        assert result[1].name == "html"


class TestRawtext:
    def test_script_content_is_one_text_token(self):
        result = tokens("<script>if (a < b) { x(); }</script>")
        assert result[0].name == "script"
        assert isinstance(result[1], TextToken)
        assert "a < b" in result[1].text
        assert isinstance(result[2], EndTagToken)

    def test_unterminated_script(self):
        result = tokens("<script>var x = 1;")
        assert isinstance(result[-1], EndTagToken)
        assert result[-1].name == "script"

    def test_style_rawtext(self):
        result = tokens("<style>p > a { color: red }</style>")
        assert isinstance(result[1], TextToken)


class TestMalformedRecovery:
    def test_stray_lt_is_text(self):
        result = tokens("a < b")
        text = "".join(t.text for t in result if isinstance(t, TextToken))
        assert text == "a < b"

    def test_stray_end_tag_garbage(self):
        result = tokens("</ >x")
        assert any(isinstance(t, TextToken) and "x" in t.text for t in result)

    def test_unterminated_tag_at_eof(self):
        result = tokens("<div class=")
        assert isinstance(result[0], StartTagToken)

    def test_never_raises(self):
        for nasty in ["<", "<<>>", "<a <b>", "</", "<!", "<?php ?>", "<a b=c=d>"]:
            tokens(nasty)  # must not raise

    @given(st.text(max_size=300))
    def test_arbitrary_input_never_raises(self, source):
        tokens(source)

    @given(st.text(alphabet="<>ab c/='\"!-", max_size=120))
    def test_markup_soup_never_raises(self, source):
        tokens(source)
