"""Tests for attribute/object classification against the gold standard."""

from repro.baselines.interface import SystemOutput, TableRecord
from repro.datasets.domains import domain_spec
from repro.datasets.golden import GoldObject
from repro.eval.classify import grade_source
from repro.sod.instances import ObjectInstance


def gold_album(title, artist, price, page_index=0):
    values = {"title": title, "artist": artist, "price": price}
    return GoldObject(
        values=values,
        flat={k: [v] for k, v in values.items()},
        page_index=page_index,
    )


def labelled_output(rows, source="s"):
    objects = [
        ObjectInstance(values=values, source=source, page_index=page)
        for page, values in rows
    ]
    return SystemOutput(system="objectrunner", source=source, objects=objects)


DOMAIN = domain_spec("albums")


class TestCorrectGrading:
    def test_exact_extraction_all_correct(self):
        gold = [gold_album("T One", "A One", "$10.00")]
        output = labelled_output(
            [(0, {"title": "T One", "artist": "A One", "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.attribute_class["title"] == "correct"
        assert evaluation.objects_correct == 1
        assert evaluation.precision_correct == 1.0

    def test_normalization_tolerated(self):
        gold = [gold_album("T One", "A One", "$10.00")]
        output = labelled_output(
            [(0, {"title": "t one", "artist": "A  One", "price": "10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.objects_correct == 1

    def test_absent_optional_ignored(self):
        gold = [gold_album("T", "A", "$1.00")]  # no date in gold
        output = labelled_output(
            [(0, {"title": "T", "artist": "A", "price": "$1.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.attribute_class["date"] == "absent"
        assert evaluation.objects_correct == 1


class TestPartialGrading:
    def test_joint_extraction_partial(self):
        gold = [gold_album("T One", "A One", "$10.00")]
        output = labelled_output(
            [(0, {"title": "T One by A One", "artist": "T One by A One",
                  "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.attribute_class["title"] == "partial"
        assert evaluation.attribute_class["artist"] == "partial"
        assert evaluation.objects_partial == 1
        assert evaluation.precision_partial == 1.0
        assert evaluation.precision_correct == 0.0

    def test_unmatched_gold_with_pooled_values_partial(self):
        # One row per page holding both objects' values in separate fields:
        # the RoadRunner too-regular signature.
        gold = [
            gold_album("T One", "A One", "$10.00"),
            gold_album("T Two", "A Two", "$20.00"),
        ]
        record = TableRecord(
            columns={
                0: ["T One"], 1: ["A One"], 2: ["$10.00"],
                3: ["T Two"], 4: ["A Two"], 5: ["$20.00"],
            },
            page_index=0,
        )
        output = SystemOutput(system="roadrunner", source="s", records=[record])
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.objects_correct + evaluation.objects_partial == 2
        assert evaluation.objects_partial >= 1


class TestIncorrectGrading:
    def test_foreign_data_mixed_in_incorrect(self):
        gold = [gold_album("T One", "A One", "$10.00")]
        output = labelled_output(
            [(0, {"title": "T One Staff recommended", "artist": "A One",
                  "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.attribute_class["title"] == "incorrect"
        assert evaluation.objects_incorrect == 1

    def test_wrong_value_incorrect(self):
        gold = [gold_album("T One", "A One", "$10.00")]
        output = labelled_output(
            [(0, {"title": "Unrelated", "artist": "A One", "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.attribute_class["title"] == "incorrect"

    def test_missing_object_counts_against(self):
        gold = [
            gold_album("T One", "A One", "$10.00"),
            gold_album("T Two", "A Two", "$20.00", page_index=1),
        ]
        output = labelled_output(
            [(0, {"title": "T One", "artist": "A One", "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.objects_correct == 1
        assert evaluation.objects_incorrect == 1
        assert evaluation.precision_correct == 0.5

    def test_failed_source(self):
        gold = [gold_album("T", "A", "$1.00")]
        output = SystemOutput(
            system="objectrunner", source="s", failed=True, failure_reason="gate"
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.discarded
        assert evaluation.objects_incorrect == 1


class TestSplitGrading:
    def test_same_attribute_sibling_values_partial(self):
        # Two objects' titles land in one row's title values: partial (ii).
        gold = [
            gold_album("T One", "A One", "$10.00"),
            gold_album("T Two", "A Two", "$20.00"),
        ]
        output = labelled_output(
            [
                (0, {"title": ["T One", "T Two"], "artist": "A One",
                     "price": "$10.00"}),
                (0, {"title": "T Two", "artist": "A Two", "price": "$20.00"}),
            ]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        assert evaluation.objects_incorrect == 0
        assert evaluation.objects_partial >= 1


class TestMetricsProperties:
    def test_precisions_bounded(self):
        gold = [gold_album("T", "A", "$1.00")]
        output = labelled_output([(0, {"title": "T"})])
        evaluation = grade_source(DOMAIN, gold, output)
        assert 0.0 <= evaluation.precision_correct <= 1.0
        assert evaluation.precision_correct <= evaluation.precision_partial <= 1.0

    def test_object_counts_sum_to_total(self):
        gold = [
            gold_album("T One", "A One", "$10.00"),
            gold_album("T Two", "A Two", "$20.00", page_index=1),
        ]
        output = labelled_output(
            [(0, {"title": "T One", "artist": "A One", "price": "$10.00"})]
        )
        evaluation = grade_source(DOMAIN, gold, output)
        total = (
            evaluation.objects_correct
            + evaluation.objects_partial
            + evaluation.objects_incorrect
        )
        assert total == evaluation.objects_total == 2
