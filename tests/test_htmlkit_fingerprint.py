"""Tests for structural page fingerprints (the registry's template key)."""

import pytest

from repro.errors import HtmlParseError
from repro.htmlkit import (
    clean_tree,
    pages_fingerprint,
    structural_fingerprint,
    tidy,
)


def page(html):
    return clean_tree(tidy(html))


RECORD = "<li><div>{artist}</div><div>{date}</div></li>"


def listing(*artists):
    rows = "".join(
        RECORD.format(artist=a, date=f"May {i + 1}") for i, a in enumerate(artists)
    )
    return f"<html><body><ul>{rows}</ul></body></html>"


class TestStructuralFingerprint:
    def test_content_invariant(self):
        one = structural_fingerprint(page(listing("Metallica")))
        other = structural_fingerprint(page(listing("Coldplay")))
        assert one == other

    def test_record_count_invariant(self):
        one = structural_fingerprint(page(listing("Metallica")))
        many = structural_fingerprint(
            page(listing("Metallica", "Coldplay", "Madonna"))
        )
        assert one == many

    def test_structure_change_changes_fingerprint(self):
        base = structural_fingerprint(page(listing("Metallica")))
        reshaped = structural_fingerprint(
            page("<html><body><ol><li><p>Metallica</p></li></ol></body></html>")
        )
        assert base != reshaped

    def test_class_attribute_is_part_of_the_shape(self):
        plain = structural_fingerprint(page("<html><body><div>x</div></body></html>"))
        classed = structural_fingerprint(
            page('<html><body><div class="row">x</div></body></html>')
        )
        assert plain != classed

    def test_stable_across_runs(self):
        tree = page(listing("Metallica", "Muse"))
        assert structural_fingerprint(tree) == structural_fingerprint(tree)

    def test_figure3_pages_share_one_fingerprint(self, figure3_pages):
        fingerprints = {structural_fingerprint(p) for p in figure3_pages}
        assert len(fingerprints) == 1


class TestPagesFingerprint:
    def test_majority_vote(self):
        pages = [
            page(listing("a")),
            page(listing("b")),
            page("<html><body><p>odd one out</p></body></html>"),
        ]
        assert pages_fingerprint(pages) == structural_fingerprint(pages[0])

    def test_tie_breaks_to_lexicographic_minimum(self):
        a = page(listing("a"))
        b = page("<html><body><p>other shape</p></body></html>")
        expected = min(structural_fingerprint(a), structural_fingerprint(b))
        assert pages_fingerprint([a, b]) == expected
        assert pages_fingerprint([b, a]) == expected

    def test_empty_input_rejected(self):
        with pytest.raises(HtmlParseError):
            pages_fingerprint([])
