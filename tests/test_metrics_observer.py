"""MetricsObserver: scripted event feeds, merge order, cache stats, wiring."""

import datetime
import json
import threading

from repro.core import EventBus, ObjectRunner, PreprocessCache, RunParams
from repro.core.pipeline import PipelineEvent
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.metrics import MetricsObserver, peak_rss_bytes, wall_timestamp


def stage_end(source, stage, elapsed, counters=None):
    return PipelineEvent(
        kind="stage_end",
        source=source,
        stage=stage,
        elapsed=elapsed,
        counters=dict(counters or {}),
    )


def pipeline_end(source, elapsed, discarded=False):
    return PipelineEvent(
        kind="pipeline_end", source=source, elapsed=elapsed, discarded=discarded
    )


def scripted_events(source, salt):
    """A deterministic little pipeline run for one source."""
    return [
        stage_end(source, "preprocess", 0.01 * salt, {"pages_prepared": salt}),
        stage_end(source, "wrapping", 0.10 * salt),
        PipelineEvent(kind="stage_retry", source=source, stage="wrapping"),
        stage_end(source, "extraction", 0.02 * salt, {"objects_extracted": 3 * salt}),
        pipeline_end(source, 0.13 * salt),
    ]


class TestScriptedEventBus:
    def test_aggregates_from_bus_events(self):
        observer = MetricsObserver()
        bus = EventBus([observer])
        for event in scripted_events("alpha", 1) + scripted_events("alpha", 2):
            bus.emit(event, None)
        [source] = observer.sources()
        assert source == "alpha"
        merged = observer.merged_registry()
        assert merged.counter_value("runs") == 2
        assert merged.counter_value("retries.wrapping") == 2
        assert merged.counter_value("objects_extracted") == 9
        assert merged.observations("stage.wrapping") == (0.1, 0.2)
        summary = merged.summary("pipeline")
        assert summary.count == 2

    def test_discards_counted(self):
        observer = MetricsObserver()
        observer.on_pipeline_end(pipeline_end("s", 0.1, discarded=True), None)
        observer.on_pipeline_end(pipeline_end("s", 0.1), None)
        merged = observer.merged_registry()
        assert merged.counter_value("discards") == 1
        assert merged.counter_value("runs") == 2

    def test_parallel_delivery_snapshots_byte_identical_to_serial(self):
        """Same scripted per-source runs, one observer fed serially and one
        from four threads: snapshots must match byte for byte."""
        sources = [f"src-{index}" for index in range(4)]

        serial = MetricsObserver()
        serial.note_source_order(sources)
        for salt, source in enumerate(sources, start=1):
            for event in scripted_events(source, salt):
                getattr(serial, f"on_{event.kind}")(event, None)

        parallel = MetricsObserver()
        parallel.note_source_order(sources)

        def deliver(source, salt):
            for event in scripted_events(source, salt):
                getattr(parallel, f"on_{event.kind}")(event, None)

        threads = [
            threading.Thread(target=deliver, args=(source, salt))
            for salt, source in enumerate(sources, start=1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert json.dumps(serial.snapshot(), sort_keys=True) == json.dumps(
            parallel.snapshot(), sort_keys=True
        )

    def test_note_source_order_pins_merge_order(self):
        observer = MetricsObserver()
        observer.note_source_order(["zeta", "alpha"])
        observer.on_pipeline_end(pipeline_end("alpha", 0.1), None)
        observer.on_pipeline_end(pipeline_end("zeta", 0.1), None)
        observer.on_pipeline_end(pipeline_end("beta", 0.1), None)  # straggler
        assert observer.sources() == ("zeta", "alpha", "beta")

    def test_unnoted_sources_merge_in_first_seen_order(self):
        observer = MetricsObserver()
        observer.on_pipeline_end(pipeline_end("b", 0.1), None)
        observer.on_pipeline_end(pipeline_end("a", 0.1), None)
        assert observer.sources() == ("b", "a")


class TestCacheStats:
    def test_sums_across_observed_caches(self):
        page = "<html><body><p>x</p></body></html>"
        first, second = PreprocessCache(), PreprocessCache()
        first.clean_pages([page, page])
        second.clean_pages([page])
        observer = MetricsObserver()
        observer.observe_cache(first)
        observer.observe_cache(second)
        observer.observe_cache(first)  # duplicate registration ignored
        stats = observer.cache_stats()
        assert stats == {"hits": 1, "misses": 2, "races": 0, "entries": 2}
        assert observer.snapshot()["cache"] == stats


class TestProcessProbes:
    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_bytes() > 0

    def test_wall_timestamp_is_iso8601(self):
        stamp = wall_timestamp()
        parsed = datetime.datetime.fromisoformat(stamp)
        assert parsed.tzinfo is not None


class TestRunnerWiring:
    def make_setup(self):
        domain = domain_spec("albums")
        spec = SiteSpec(
            name="metrics-albums",
            domain="albums",
            archetype="clean",
            total_objects=30,
            seed=("metrics", "albums"),
        )
        source = generate_source(spec, domain)
        knowledge = build_knowledge(domain, coverage=0.2)
        return domain, source, knowledge

    def make_runner(self, domain, knowledge, observers=(), params=None):
        return ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            observers=observers,
            params=params,
        )

    def test_run_source_populates_stage_timers_and_cache(self):
        domain, source, knowledge = self.make_setup()
        observer = MetricsObserver()
        runner = self.make_runner(domain, knowledge, observers=(observer,))
        result = runner.run_source("metrics-albums", source.pages)
        assert result.ok
        merged = observer.merged_registry()
        for stage in ("preprocess", "annotation", "wrapping", "extraction"):
            summary = merged.summary(f"stage.{stage}")
            assert summary is not None and summary.total > 0, stage
        assert merged.counter_value("objects_extracted") == len(result.objects)
        # The runner registered its preprocessing cache automatically.
        stats = observer.cache_stats()
        assert stats["misses"] == len(source.pages)

    def test_add_observer_registers_cache(self):
        domain, __, knowledge = self.make_setup()
        runner = self.make_runner(domain, knowledge)
        observer = MetricsObserver()
        runner.add_observer(observer)
        assert observer.cache_stats()["entries"] == 0

    def test_run_sources_merge_order_is_input_order_even_parallel(self):
        domain, source, knowledge = self.make_setup()
        observer = MetricsObserver()
        runner = self.make_runner(
            domain,
            knowledge,
            observers=(observer,),
            params=RunParams(max_workers=4),
        )
        sources = {
            "site-c": source.pages,
            "site-a": source.pages,
            "site-b": source.pages,
        }
        outcome = runner.run_sources(sources)
        assert len(outcome.results) == 3
        assert observer.sources() == ("site-c", "site-a", "site-b")
        merged = observer.merged_registry()
        assert merged.counter_value("runs") == 3
