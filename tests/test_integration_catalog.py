"""Catalog-level integration: one source per outcome class, full pipeline.

The complete 49-source sweep lives in the benchmark suite; this locks the
characteristic behaviours into the fast test suite with one representative
of each Table I outcome class.
"""

import pytest

from repro.core import ObjectRunnerSystem
from repro.datasets import catalog_entries, domain_spec, generate_source
from repro.datasets.knowledge import build_knowledge, completion_entries
from repro.eval import grade_source
from repro.htmlkit import clean_tree, tidy

SCALE = 0.05

_KNOWLEDGE_CACHE = {}


def run_entry(name):
    entry = next(e for e in catalog_entries(scale=SCALE) if e.spec.name == name)
    domain = domain_spec(entry.spec.domain)
    source = generate_source(entry.spec, domain)
    if entry.spec.domain not in _KNOWLEDGE_CACHE:
        _KNOWLEDGE_CACHE[entry.spec.domain] = build_knowledge(domain, coverage=0.2)
    knowledge = _KNOWLEDGE_CACHE[entry.spec.domain]
    extra = completion_entries(
        domain, source.gold, coverage=0.2, seed=("completion", entry.spec.name)
    )
    system = ObjectRunnerSystem(
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        extra_gazetteer_entries=extra,
    )
    pages = [clean_tree(tidy(raw)) for raw in source.pages]
    output = system.run(entry.spec.name, pages, domain.sod)
    return entry, grade_source(domain, source.gold, output)


class TestOutcomeClasses:
    def test_clean_list_source_fully_correct(self):
        __, evaluation = run_entry("towerrecords")
        assert evaluation.precision_correct == 1.0

    def test_clean_detail_source_fully_correct(self):
        __, evaluation = run_entry("zvents-detail")
        assert evaluation.precision_correct == 1.0

    def test_too_regular_books_source_fully_correct_for_objectrunner(self):
        # Constant record counts hurt RoadRunner, never ObjectRunner.
        __, evaluation = run_entry("bookdepository")
        assert evaluation.precision_correct == 1.0

    def test_partial_inline_source_all_partial(self):
        __, evaluation = run_entry("101cd")
        assert evaluation.precision_correct == 0.0
        assert evaluation.precision_partial >= 0.9
        assert evaluation.attrs_partial >= 1

    def test_mixed_structure_source_incorrect_attribute(self):
        __, evaluation = run_entry("upcoming-yahoo-list")
        assert evaluation.attrs_incorrect >= 1
        assert evaluation.precision_correct == 0.0

    def test_unstructured_source_discarded(self):
        __, evaluation = run_entry("emusic")
        assert evaluation.discarded

    def test_optional_absent_source_grades_remaining_attrs(self):
        entry, evaluation = run_entry("play")  # albums, optional date absent
        assert not entry.spec.optional_present
        assert evaluation.attribute_class["date"] == "absent"
        assert evaluation.precision_correct == 1.0
