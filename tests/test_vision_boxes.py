"""Tests for rectangles on the render canvas."""

from hypothesis import given
from hypothesis import strategies as st

from repro.vision.boxes import Rect

_coords = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
_sizes = st.floats(min_value=0.1, max_value=1000.0, allow_nan=False)


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 10, 5).area == 50

    def test_center(self):
        rect = Rect(10, 20, 20, 40)
        assert rect.center_x == 20
        assert rect.center_y == 40

    def test_contains(self):
        outer = Rect(0, 0, 100, 100)
        inner = Rect(10, 10, 20, 20)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        rect = Rect(5, 5, 10, 10)
        assert rect.contains(rect)

    def test_intersection_area_disjoint(self):
        assert Rect(0, 0, 10, 10).intersection_area(Rect(20, 20, 5, 5)) == 0.0

    def test_intersection_area_overlap(self):
        assert Rect(0, 0, 10, 10).intersection_area(Rect(5, 5, 10, 10)) == 25.0

    def test_centrality_of_centered_rect_is_one(self):
        canvas = Rect(0, 0, 100, 100)
        centered = Rect(40, 40, 20, 20)
        assert canvas.centrality(canvas) == 1.0
        assert centered.centrality(canvas) == 1.0

    def test_centrality_decreases_toward_edges(self):
        canvas = Rect(0, 0, 100, 100)
        corner = Rect(0, 0, 10, 10)
        middle = Rect(45, 45, 10, 10)
        assert corner.centrality(canvas) < middle.centrality(canvas)

    def test_centrality_zero_canvas(self):
        assert Rect(0, 0, 1, 1).centrality(Rect(0, 0, 0, 0)) == 0.0

    @given(_coords, _coords, _sizes, _sizes)
    def test_centrality_bounded(self, x, y, w, h):
        canvas = Rect(0, 0, 1000, 1000)
        assert 0.0 <= Rect(x, y, w, h).centrality(canvas) <= 1.0

    @given(_coords, _coords, _sizes, _sizes, _coords, _coords, _sizes, _sizes)
    def test_intersection_symmetric(self, x1, y1, w1, h1, x2, y2, w2, h2):
        a = Rect(x1, y1, w1, h1)
        b = Rect(x2, y2, w2, h2)
        assert abs(a.intersection_area(b) - b.intersection_area(a)) < 1e-6

    @given(_coords, _coords, _sizes, _sizes)
    def test_intersection_with_self_is_area(self, x, y, w, h):
        rect = Rect(x, y, w, h)
        assert abs(rect.intersection_area(rect) - rect.area) < 1e-6
