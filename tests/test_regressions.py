"""Regression tests for subtle bugs found while reproducing the paper.

Each test encodes a failure mode observed during development, so the fix
stays fixed.
"""

from repro.htmlkit.tidy import tidy
from repro.recognizers.predefined import predefined_recognizer
from repro.wrapper.records import segment_records
from repro.wrapper.template import FieldSlot
from repro.wrapper.tokens import tokenize_element


class TestRegexBoundaryFalsePositives:
    def test_in_stock_is_not_an_address(self):
        # "In St|ock" used to match the street pattern mid-word and slowly
        # poison address slots on noisy sources.
        recognizer = predefined_recognizer("address")
        assert recognizer.find("In Stock") == []
        assert recognizer.find("Best Stock picks") == []

    def test_real_streets_still_match(self):
        recognizer = predefined_recognizer("address")
        assert recognizer.find("visit 42 Maple St today")

    def test_zip_inside_long_number_rejected(self):
        recognizer = predefined_recognizer("address")
        values = [m.value for m in recognizer.find("order 1234567890 shipped")]
        assert values == []


class TestDetailPageFieldSequence:
    def test_field_sequence_not_mistaken_for_records(self):
        # Detail pages whose classless field containers repeat 3x per page
        # used to be segmented at the field level (each <p> a "record").
        # The record class must stay at (or above) the page region.
        detail = (
            "<body><div id='main'>"
            "<p>{artist}</p>"
            "<p>Saturday May 29, 2010 7:00p</p>"
            "<p><span><a>{venue}</a></span><span>131 W 55th St</span>"
            "<span>New York City</span><span>10019</span></p>"
            "</div></body>"
        )
        pages = [
            tokenize_element(
                tidy(detail.format(artist=f"Band {i}", venue=f"Hall {i}")).find("body"),
                page_index=i,
            )
            for i in range(6)
        ]
        segmentation = segment_records(pages, min_support=3)
        assert segmentation is not None
        assert all(len(spans) == 1 for spans in segmentation.spans_per_page)
        first_role = segmentation.record_class.ordered_roles[0]
        assert first_role[1] != "p"  # never the field container


class TestAnnotationCoverageFloor:
    def test_sparse_false_positives_do_not_label_a_slot(self):
        slot = FieldSlot(slot_id=0)
        # 2 annotated out of 40 occurrences: classic recognizer noise.
        for __ in range(2):
            slot.record_annotations({"address"})
        for __ in range(38):
            slot.record_annotations(set())
        assert slot.dominant_annotation() is None

    def test_twenty_percent_coverage_still_generalizes(self):
        slot = FieldSlot(slot_id=0)
        for __ in range(8):
            slot.record_annotations({"title"})
        for __ in range(32):
            slot.record_annotations(set())
        assert slot.dominant_annotation() == "title"


class TestRecordRoleIncludesClass:
    def test_same_tag_different_class_distinct_roles(self):
        # Without the class attribute in the role key, per-field <div>s of
        # different classes collapsed into one role and the record EQ
        # degenerated to {li, /li}.
        page = (
            "<body><ul>"
            + "".join(
                f"<li><div class='t'>t{i}</div><div class='p'>p{i}</div></li>"
                for i in range(4)
            )
            + "</ul></body>"
        )
        pages = [tokenize_element(tidy(page).find("body"), page_index=i) for i in range(3)]
        segmentation = segment_records(pages, min_support=3)
        roles = set(segmentation.record_class.roles)
        class_values = {role[3] for role in roles if role[1] == "div"}
        assert {"t", "p"} <= class_values


class TestStripAffixPreservesValue:
    def test_currency_symbol_survives_prefix_strip(self):
        from repro.wrapper.alignment import strip_affixes

        assert strip_affixes("Price: $12.99", 1, 0) == "$12.99"

    def test_inner_punctuation_survives(self):
        from repro.wrapper.alignment import strip_affixes

        assert strip_affixes("On Monday May 11, 8:00pm", 1, 0) == "Monday May 11, 8:00pm"

    def test_all_words_stripped_returns_empty(self):
        from repro.wrapper.alignment import strip_affixes

        assert strip_affixes("by", 1, 0) == ""


class TestCorpusPluralBridging:
    def test_venue_findable_from_venues(self):
        # "venues"/"venue" stem mismatch used to hide every plural mention.
        from repro.corpus.store import Corpus

        corpus = Corpus(["Venues such as Madison Square Garden are big."])
        assert corpus.sentences_with_phrase("Venue")
        assert corpus.count_phrase("venue") == 1
