"""Tests for Algorithm 1: sample selection with the alpha gate."""

import pytest

from repro.annotation.sampling import SampleSelectionConfig, select_sample
from repro.errors import SourceDiscardedError
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer


def rich_page(artist):
    return tidy(
        f"<body><div id='main'><li><div>{artist}</div>"
        f"<div>Monday May 11, 8:00pm</div></li></div></body>"
    )


def poor_page():
    return tidy("<body><div id='main'><p>nothing relevant here</p></div></body>")


def recognizers():
    return [
        GazetteerRecognizer("artist", ["Muse", "Coldplay", "Madonna"]),
        predefined_recognizer("date", type_name="date"),
    ]


class TestSampleSelection:
    def test_rich_pages_preferred(self):
        pages = [poor_page(), rich_page("Muse"), rich_page("Coldplay"), poor_page()]
        run = select_sample(
            "test",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=2, enforce_alpha=False),
        )
        assert [page.index for page in run.sample] == [1, 2]

    def test_sample_size_respected(self):
        pages = [rich_page(f"Muse") for __ in range(10)]
        run = select_sample(
            "test",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=4, enforce_alpha=False),
        )
        assert len(run.sample) == 4

    def test_gazetteers_processed_before_predefined(self):
        pages = [rich_page("Muse")]
        run = select_sample(
            "test",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=1, enforce_alpha=False),
        )
        assert run.type_order.index("artist") < run.type_order.index("date")

    def test_all_pages_annotated_in_result(self):
        pages = [rich_page("Muse"), rich_page("Coldplay")]
        run = select_sample(
            "test",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=2, enforce_alpha=False),
        )
        assert len(run.all_pages) == 2

    def test_sample_pages_carry_annotations(self):
        pages = [rich_page("Muse")]
        run = select_sample(
            "test",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=1, enforce_alpha=False),
        )
        assert run.sample[0].annotated_types() == {"artist", "date"}


class TestAlphaGate:
    def test_unannotatable_source_discarded(self):
        pages = [poor_page() for __ in range(5)]
        with pytest.raises(SourceDiscardedError) as excinfo:
            select_sample(
                "emusic",
                pages,
                recognizers(),
                config=SampleSelectionConfig(sample_size=3, alpha=0.5),
            )
        assert excinfo.value.stage == "annotation"
        assert excinfo.value.source == "emusic"

    def test_rich_source_passes_gate(self):
        pages = [rich_page("Muse") for __ in range(5)]
        run = select_sample(
            "zvents",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=3, alpha=0.5),
        )
        assert not run.discarded
        assert run.block_rates  # gate evaluated and recorded

    def test_gate_disabled(self):
        pages = [poor_page() for __ in range(5)]
        run = select_sample(
            "anything",
            pages,
            recognizers(),
            config=SampleSelectionConfig(sample_size=3, enforce_alpha=False),
        )
        assert len(run.sample) == 3
