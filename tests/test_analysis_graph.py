"""The project graph: symbol tables, imports, and call resolution."""

import textwrap

from repro.analysis.graph import (
    ProjectGraph,
    build_single_file_graph,
    module_name,
)

PKG = {
    "pkg/__init__.py": """
        from pkg.core import run
    """,
    "pkg/util.py": """
        def helper():
            return 1
    """,
    "pkg/core.py": """
        import pkg.util as u
        from pkg.util import helper

        class Base:
            def ping(self):
                return helper()

        class Engine(Base):
            def __init__(self, n):
                self.n = n

            def run(self):
                self.step()
                return u.helper()

            def step(self):
                return self.ping()

        def run(n):
            engine = Engine(n)
            return engine.run()
    """,
}


def build_graph(tmp_path, files=None):
    paths = []
    for name, source in (files or PKG).items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return ProjectGraph.build(tmp_path, paths)


def callees(graph, qualname):
    return [s.callee for s in graph.calls.get(qualname, ())]


class TestSymbolTable:
    def test_module_names(self, tmp_path):
        graph = build_graph(tmp_path)
        assert set(graph.modules) == {"pkg", "pkg.core", "pkg.util"}

    def test_src_prefix_stripped(self, tmp_path):
        path = tmp_path / "src" / "top" / "mod.py"
        assert module_name(path, tmp_path) == "top.mod"

    def test_function_qualnames(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.util:helper" in graph.functions
        assert "pkg.core:Engine.run" in graph.functions
        assert "pkg.core:run" in graph.functions

    def test_aliases_expand_to_absolute_targets(self, tmp_path):
        graph = build_graph(tmp_path)
        core = graph.modules["pkg.core"]
        assert core.aliases["u"] == "pkg.util"
        assert core.aliases["helper"] == "pkg.util.helper"

    def test_import_edges(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.util" in graph.modules["pkg.core"].imports
        assert "pkg.core" in graph.modules["pkg"].imports


class TestCallResolution:
    def test_plain_aliased_function_call(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.util:helper" in callees(graph, "pkg.core:Base.ping")

    def test_module_alias_dotted_call(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.util:helper" in callees(graph, "pkg.core:Engine.run")

    def test_self_method_call(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.core:Engine.step" in callees(graph, "pkg.core:Engine.run")

    def test_self_method_resolves_through_base_class(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.core:Base.ping" in callees(graph, "pkg.core:Engine.step")

    def test_constructor_resolves_to_init(self, tmp_path):
        graph = build_graph(tmp_path)
        assert "pkg.core:Engine.__init__" in callees(graph, "pkg.core:run")

    def test_unresolvable_call_is_none(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {"mod.py": "def f(cb):\n    return cb()\n"},
        )
        assert callees(graph, "mod:f") == [None]


class TestReachability:
    def test_bfs_crosses_modules_and_classes(self, tmp_path):
        graph = build_graph(tmp_path)
        reached = graph.reachable_functions(["pkg.core:Engine.run"])
        assert {
            "pkg.core:Engine.run",
            "pkg.core:Engine.step",
            "pkg.core:Base.ping",
            "pkg.util:helper",
        } <= reached
        assert "pkg.core:run" not in reached

    def test_iter_functions_sorted(self, tmp_path):
        graph = build_graph(tmp_path)
        names = [fn.qualname for fn in graph.iter_functions()]
        assert names == sorted(names)


class TestSingleFileGraph:
    def test_one_module_no_project_imports(self, tmp_path):
        path = tmp_path / "solo.py"
        path.write_text("def f():\n    return g()\n\ndef g():\n    return 1\n")
        graph = build_single_file_graph(path, tmp_path)
        assert set(graph.modules) == {"solo"}
        assert "solo:g" in callees(graph, "solo:f")
