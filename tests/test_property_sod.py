"""Property tests: random SODs roundtrip through the DSL."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sod.canonical import canonicalize
from repro.sod.dsl import format_sod, parse_sod
from repro.sod.types import (
    DisjunctionType,
    EntityType,
    Multiplicity,
    SetType,
    TupleType,
    entity_types,
)

_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

_multiplicities = st.one_of(
    st.builds(Multiplicity.star),
    st.builds(Multiplicity.plus),
    st.builds(Multiplicity.optional),
    st.builds(Multiplicity.exactly_one),
    st.builds(Multiplicity.range, st.integers(0, 3), st.integers(4, 9)),
    st.builds(Multiplicity, st.integers(2, 4), st.none()),
)

_entities = st.builds(
    EntityType,
    name=_names,
    kind=st.sampled_from(["isInstanceOf", "predefined", "regex"]),
    optional=st.booleans(),
    cover_node=st.booleans(),
)


def _freshen_names(sod, counter=None):
    """Give every node a globally unique name.

    Canonicalization legitimately rejects SODs whose tuple-reachable atoms
    collide by name (see TestIllFormed), so the generator avoids them.
    """
    if counter is None:
        counter = [0]
    counter[0] += 1
    suffix = str(counter[0])
    if isinstance(sod, EntityType):
        return EntityType(
            name=sod.name + suffix,
            recognizer="",
            kind=sod.kind,
            optional=sod.optional,
            cover_node=sod.cover_node,
        )
    if isinstance(sod, SetType):
        return SetType(
            name=sod.name + suffix,
            inner=_freshen_names(sod.inner, counter),
            multiplicity=sod.multiplicity,
        )
    if isinstance(sod, TupleType):
        return TupleType(
            name=sod.name + suffix,
            components=tuple(
                _freshen_names(component, counter) for component in sod.components
            ),
        )
    return DisjunctionType(
        name=sod.name + suffix,
        left=_freshen_names(sod.left, counter),
        right=_freshen_names(sod.right, counter),
    )


def _dedupe_per_level(components):
    seen: set = set()
    out = []
    for component in components:
        if component.name not in seen:
            seen.add(component.name)
            out.append(component)
    return out


def _sods(depth: int = 2):
    if depth == 0:
        return _entities
    return _sods_raw(depth).map(_freshen_names)


def _sods_raw(depth: int):
    if depth == 0:
        return _entities
    inner = _sods_raw(depth - 1)
    tuples = st.builds(
        lambda name, components: TupleType(
            name=name + "_t", components=tuple(_dedupe_per_level(components))
        ),
        _names,
        st.lists(inner, min_size=1, max_size=4),
    )
    sets = st.builds(
        lambda name, member, multiplicity: SetType(
            name=name + "_s", inner=member, multiplicity=multiplicity
        ),
        _names,
        inner,
        _multiplicities,
    )
    disjunctions = st.builds(
        lambda name, left, right: DisjunctionType(
            name=name + "_d", left=left, right=right
        ),
        _names,
        _entities,
        _entities,
    )
    return st.one_of(_entities, tuples, sets, disjunctions)


class TestDslRoundtrip:
    @settings(max_examples=200, deadline=None)
    @given(_sods())
    def test_parse_format_roundtrip(self, sod):
        rendered = format_sod(sod)
        reparsed = parse_sod(rendered)
        assert format_sod(reparsed) == rendered

    @settings(max_examples=200, deadline=None)
    @given(_sods())
    def test_roundtrip_preserves_structure(self, sod):
        reparsed = parse_sod(format_sod(sod))
        assert str(reparsed) == str(sod)
        assert [e.name for e in entity_types(reparsed)] == [
            e.name for e in entity_types(sod)
        ]

    @settings(max_examples=100, deadline=None)
    @given(_sods())
    def test_canonicalize_stable_through_roundtrip(self, sod):
        direct = str(canonicalize(sod))
        via_dsl = str(canonicalize(parse_sod(format_sod(sod))))
        assert direct == via_dsl

    @settings(max_examples=100, deadline=None)
    @given(_sods(depth=3))
    def test_deep_nesting_roundtrips(self, sod):
        assert str(parse_sod(format_sod(sod))) == str(sod)

    @settings(max_examples=100, deadline=None)
    @given(_multiplicities)
    def test_multiplicity_rendering_parses(self, multiplicity):
        sod = SetType("s", EntityType("x"), multiplicity)
        reparsed = parse_sod(format_sod(sod))
        assert reparsed.multiplicity == multiplicity


class TestIllFormed:
    def test_canonicalize_rejects_colliding_atom_names(self):
        # Flattening a nested tuple whose atom collides with a sibling atom
        # would create an ambiguous attribute — rejected with a SodError.
        import pytest

        from repro.errors import SodError

        sod = TupleType(
            "outer",
            (
                EntityType("alpha"),
                TupleType("inner", (EntityType("alpha"),)),
            ),
        )
        with pytest.raises(SodError):
            canonicalize(sod)
