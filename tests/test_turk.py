"""Tests for the simulated Mechanical Turk source selection."""

from repro.turk import run_campaign
from repro.utils.rng import DeterministicRng


def candidates(relevant=8, irrelevant=12):
    pool = {f"good-site-{i}": 5.0 + i * 0.1 for i in range(relevant)}
    pool.update({f"junk-site-{i}": 0.5 + i * 0.05 for i in range(irrelevant)})
    return pool


class TestCampaign:
    def test_deterministic(self):
        a = run_campaign("albums", candidates(), seed="t")
        b = run_campaign("albums", candidates(), seed="t")
        assert a.selected == b.selected

    def test_relevant_sources_bubble_up(self):
        campaign = run_campaign("albums", candidates(), keep=8, seed="t2")
        good = sum(1 for name in campaign.selected if name.startswith("good"))
        assert good >= 6  # noisy workers, but signal dominates

    def test_worker_count(self):
        campaign = run_campaign("cars", candidates(), workers=7, seed="t3")
        assert len(campaign.responses) == 7

    def test_ranking_lengths(self):
        campaign = run_campaign(
            "books", candidates(), list_length=10, seed="t4"
        )
        assert all(len(r.ranking) == 10 for r in campaign.responses)

    def test_keep_limits_selection(self):
        campaign = run_campaign("books", candidates(), keep=5, seed="t5")
        assert len(campaign.selected) == 5

    def test_borda_scores_recorded(self):
        campaign = run_campaign("concerts", candidates(), seed="t6")
        assert campaign.borda
        top = campaign.selected[0]
        assert campaign.borda[top] == max(campaign.borda.values())

    def test_workers_disagree(self):
        campaign = run_campaign("albums", candidates(), seed="t7")
        rankings = {tuple(r.ranking) for r in campaign.responses}
        assert len(rankings) > 1  # workers are independent, not clones

    def test_careless_worker_noisier(self):
        from repro.turk.workers import SimulatedWorker

        pool = candidates()
        rng = DeterministicRng("w")
        diligent = SimulatedWorker(0, diligence=0.95)
        careless = SimulatedWorker(1, diligence=0.1)
        ideal = sorted(pool, key=pool.get, reverse=True)[:10]

        def agreement(worker, fork):
            ranking = worker.rank(pool, 10, rng.fork(fork)).ranking
            return len(set(ranking) & set(ideal))

        diligent_score = sum(agreement(diligent, f"d{i}") for i in range(10))
        careless_score = sum(agreement(careless, f"c{i}") for i in range(10))
        assert diligent_score > careless_score


class TestCatalogSelection:
    def test_catalog_sources_selected_over_distractors(self):
        from repro.turk.selection import select_catalog_sources

        selected, campaign = select_catalog_sources("albums", keep=10)
        assert len(selected) >= 7  # catalog sites dominate the junk
        assert len(campaign.selected) == 10

    def test_selection_deterministic(self):
        from repro.turk.selection import select_catalog_sources

        first, __ = select_catalog_sources("books", seed="x")
        second, __ = select_catalog_sources("books", seed="x")
        assert [e.spec.name for e in first] == [e.spec.name for e in second]

    def test_selected_sources_come_from_the_catalog(self):
        from repro.datasets import entries_for_domain
        from repro.turk.selection import select_catalog_sources

        # Workers judge topicality, not structure — so even the
        # unstructured emusic source is eligible; only catalog sources
        # (never distractors) survive the mapping back.
        selected, __ = select_catalog_sources("albums", keep=10, seed="y")
        catalog_names = {e.spec.name for e in entries_for_domain("albums")}
        assert {entry.spec.name for entry in selected} <= catalog_names
