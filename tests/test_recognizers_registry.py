"""Tests for the recognizer registry."""

import pytest

from repro.errors import UnknownTypeError
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.registry import RecognizerRegistry


class TestRegistry:
    def test_register_and_get(self):
        registry = RecognizerRegistry()
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        registry.register(gazetteer)
        assert registry.get("artist") is gazetteer

    def test_lookup_case_insensitive(self):
        registry = RecognizerRegistry()
        registry.register(GazetteerRecognizer("Artist", ["Muse"]))
        assert registry.get("artist").type_name == "Artist"

    def test_register_under_alias(self):
        registry = RecognizerRegistry()
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        registry.register(gazetteer, name="performer")
        assert registry.get("performer") is gazetteer

    def test_predefined_fallback(self):
        registry = RecognizerRegistry()
        recognizer = registry.get("date")
        assert recognizer.find("May 11, 2010")

    def test_predefined_cached(self):
        registry = RecognizerRegistry()
        assert registry.get("price") is registry.get("price")

    def test_unknown_raises(self):
        registry = RecognizerRegistry()
        with pytest.raises(UnknownTypeError):
            registry.get("nonexistent")

    def test_has(self):
        registry = RecognizerRegistry()
        assert registry.has("date")  # predefined
        assert not registry.has("artist")
        registry.register(GazetteerRecognizer("artist", []))
        assert registry.has("artist")

    def test_explicit_overrides_predefined(self):
        registry = RecognizerRegistry()
        custom = GazetteerRecognizer("date", ["someday"])
        registry.register(custom)
        assert registry.get("date") is custom

    def test_iteration_and_len(self):
        registry = RecognizerRegistry()
        registry.register(GazetteerRecognizer("a", []))
        registry.register(GazetteerRecognizer("b", []))
        assert len(registry) == 2
        assert {r.type_name for r in registry} == {"a", "b"}

    def test_names_sorted(self):
        registry = RecognizerRegistry()
        registry.register(GazetteerRecognizer("zeta", []))
        registry.register(GazetteerRecognizer("alpha", []))
        assert registry.names() == ["alpha", "zeta"]
