"""Property-based tests on wrapper-core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmlkit.tidy import tidy
from repro.wrapper.alignment import (
    TemplateBuilder,
    _lcs_align,
    common_affixes,
    strip_affixes,
)
from repro.wrapper.template import FieldSlot, StaticSlot
from repro.wrapper.tokens import tokenize_element

_shapes = st.lists(
    st.sampled_from([("elem", "div", ""), ("elem", "span", "a"), ("text",)]),
    max_size=12,
)


class TestLcsAlignment:
    @given(_shapes, _shapes)
    def test_every_index_appears_exactly_once(self, left, right):
        pairs = _lcs_align(left, right)
        left_indexes = [i for i, __ in pairs if i is not None]
        right_indexes = [j for __, j in pairs if j is not None]
        assert left_indexes == list(range(len(left)))
        assert right_indexes == list(range(len(right)))

    @given(_shapes, _shapes)
    def test_matches_have_equal_shapes(self, left, right):
        for i, j in _lcs_align(left, right):
            if i is not None and j is not None:
                assert left[i] == right[j]

    @given(_shapes)
    def test_identical_sequences_align_fully(self, shapes):
        pairs = _lcs_align(shapes, shapes)
        assert all(i is not None and j is not None for i, j in pairs)

    @given(_shapes, _shapes)
    def test_matched_pairs_are_monotone(self, left, right):
        matched = [
            (i, j) for i, j in _lcs_align(left, right) if i is not None and j is not None
        ]
        assert matched == sorted(matched)


_words = st.lists(
    st.sampled_from(["by", "Jane", "Austen", "Price", "12.99", "stars", "5"]),
    min_size=1,
    max_size=8,
)


class TestAffixProperties:
    @given(st.lists(_words, min_size=1, max_size=6))
    def test_affixes_never_exceed_shortest(self, values):
        prefix, suffix = common_affixes(values)
        shortest = min(len(value) for value in values)
        assert prefix + suffix <= shortest + max(
            0, prefix + suffix - shortest
        )  # prefix+suffix may equal shortest but not exceed wildly
        assert prefix >= 0 and suffix >= 0

    @given(st.lists(_words, min_size=2, max_size=6))
    def test_affix_words_identical_across_values(self, values):
        prefix, suffix = common_affixes(values)
        for index in range(prefix):
            assert len({value[index] for value in values}) == 1
        for index in range(suffix):
            assert len({value[-1 - index] for value in values}) == 1

    @given(st.text(alphabet="ab $:.,0189", min_size=0, max_size=40),
           st.integers(0, 3), st.integers(0, 3))
    def test_strip_never_raises(self, text, prefix, suffix):
        result = strip_affixes(text, prefix, suffix)
        assert isinstance(result, str)

    @given(st.text(alphabet="abc 019", min_size=1, max_size=40))
    def test_strip_zero_is_strip(self, text):
        assert strip_affixes(text, 0, 0) == text.strip()


def _record_html(fields):
    cells = "".join(f"<div class='c{i}'>{value}</div>" for i, value in enumerate(fields))
    return f"<html><body><li>{cells}</li></body></html>"


class TestTemplateBuilderProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]),
                     min_size=2, max_size=2),
            min_size=2,
            max_size=6,
        )
    )
    def test_uniform_records_produce_no_conflicts(self, rows):
        records = []
        for row in rows:
            root = tidy(_record_html(row))
            records.append([root.find("li")])
        template = TemplateBuilder().build(records)
        assert template.conflicts == 0
        assert template.sample_records == len(rows)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from(["alpha", "beta", "gamma"]),
                     min_size=3, max_size=3),
            min_size=2,
            max_size=6,
        )
    )
    def test_slot_count_bounded_by_columns(self, rows):
        records = []
        for row in rows:
            root = tidy(_record_html(row))
            records.append([root.find("li")])
        template = TemplateBuilder().build(records)
        data_nodes = [
            node
            for node in template.iter_nodes()
            if isinstance(node, (FieldSlot, StaticSlot))
        ]
        assert len(data_nodes) == 3  # one per column, field or static

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6))
    def test_deterministic(self, record_count):
        rows = [["x", f"value{i}"] for i in range(record_count)]

        def build():
            records = []
            for row in rows:
                root = tidy(_record_html(row))
                records.append([root.find("li")])
            return TemplateBuilder().build(records).describe()

        assert build() == build()


class TestTokenizationProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="<>/abdiv spn clx='\"", max_size=120))
    def test_tags_balance(self, soup):
        body = tidy(soup).find("body")
        tokens = tokenize_element(body).tokens
        depth = 0
        for token in tokens:
            if token.kind == "open":
                depth += 1
            elif token.kind == "close":
                depth -= 1
            assert depth >= 0
        assert depth == 0
