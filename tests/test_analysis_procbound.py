"""The process-boundary analysis and the P601–P604 rules.

Every rule gets seeded-regression fixtures proving it fires (including
the PR 9 miss-counter bug shape for P602) and negative twins proving it
stays quiet on conforming code; the pass itself is pinned byte-identical
between cold, ``--cache`` and ``--changed-only`` runs.
"""

import subprocess
import textwrap

from repro.analysis import analyze_paths, build_rules
from repro.analysis.cli import main
from repro.analysis.engine import collect_files
from repro.analysis.graph import ProjectGraph
from repro.analysis.procbound import process_boundary

P_RULES = "P601,P602,P603,P604"

#: A conforming process backend: picklable task spec, keyed merge,
#: complete homeward surface.  Every rule must stay quiet on this.
BACKEND_OK = '''\
"""Clean process backend fixture."""
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass
class ShardTask:
    """Picklable task spec."""

    items: tuple


class ShardStats:
    """Worker stats with a complete homeward surface."""

    def __init__(self):
        self._hits = 0
        self._misses = 0

    def record(self, hit):
        """Count one lookup."""
        if hit:
            self._hits += 1
        else:
            self._misses += 1

    def __getstate__(self):
        """Ship both counters home."""
        return {"hits": self._hits, "misses": self._misses}

    def __setstate__(self, state):
        """Rebuild from shipped state."""
        self._hits = state["hits"]
        self._misses = state["misses"]


def _worker(task):
    """Worker entrypoint."""
    stats = ShardStats()
    writes = {}
    for item in task.items:
        stats.record(item in writes)
        writes[item] = len(item)
    return stats, writes


def run(items, workers):
    """Dispatcher with a keyed (order-insensitive) merge."""
    tasks = [ShardTask(items=chunk) for chunk in chunks(items, workers)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_worker, tasks))
    merged = {}
    for stats, writes in results:
        for key, value in writes.items():
            merged[key] = value
    return merged


def chunks(items, count):
    """Deterministic chunking."""
    return [tuple(items[i::count]) for i in range(count)]
'''


def write_tree(tmp_path, tree):
    for rel, source in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def findings_for(tmp_path, tree, rule_ids, scan="backend"):
    root = write_tree(tmp_path, tree)
    report = analyze_paths(
        [root / scan], root=root, rules=build_rules(rule_ids)
    )
    return report.open_findings


def analysis_for(tmp_path, tree):
    root = write_tree(tmp_path, tree)
    graph = ProjectGraph.build(root, collect_files([root]))
    return process_boundary(graph)


class TestWorkerReachability:
    def test_entrypoint_closure_and_instantiation_closure(self, tmp_path):
        analysis = analysis_for(
            tmp_path, {"backend/runner.py": BACKEND_OK}
        )
        (dispatch,) = analysis.dispatches
        assert dispatch.entry == "backend.runner:_worker"
        names = {q.partition(":")[2] for q in analysis.worker_reachable}
        assert "_worker" in names
        # ShardStats is constructed inside the worker, so all its
        # methods (including record) join the worker-reachable set.
        assert "ShardStats.record" in names
        # The dispatcher itself is parent-side only.
        assert "run" not in names

    def test_clean_backend_is_quiet_on_all_rules(self, tmp_path):
        assert not findings_for(
            tmp_path,
            {"backend/runner.py": BACKEND_OK},
            P_RULES.split(","),
        )


class TestP601Picklability:
    def test_lambda_entrypoint_fires(self, tmp_path):
        source = '''\
        """Lambda entrypoint fixture."""
        from concurrent.futures import ProcessPoolExecutor


        def run(items):
            """Dispatch onto a lambda."""
            with ProcessPoolExecutor() as pool:
                return list(pool.map(lambda item: item * 2, items))
        '''
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P601"]
        )
        assert "lambda" in finding.message

    def test_unpicklable_value_in_ctor_flow_fires(self, tmp_path):
        source = '''\
        """Lock smuggled into the task spec."""
        import threading
        from concurrent.futures import ProcessPoolExecutor
        from dataclasses import dataclass


        @dataclass
        class ShardTask:
            """Task spec with a lock field."""

            items: tuple
            lock: object


        def _worker(task: ShardTask):
            """Worker entrypoint."""
            return len(task.items)


        def run(items):
            """Dispatcher handing each task a live lock."""
            tasks = [ShardTask(items=tuple(items), lock=threading.Lock())]
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, tasks))
        '''
        findings = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P601"]
        )
        assert findings
        assert any(
            "threading.Lock" in f.message and "'lock'" in f.message
            for f in findings
        )

    def test_unpicklable_class_crossing_boundary_fires(self, tmp_path):
        source = '''\
        """Boundary class holding a lock without pickle hooks."""
        import threading
        from concurrent.futures import ProcessPoolExecutor


        class ShardTask:
            """Unpicklable task spec."""

            def __init__(self, items):
                self.items = items
                self.lock = threading.Lock()


        def _worker(task: ShardTask):
            """Worker entrypoint annotated with the class."""
            return len(task.items)


        def run(items):
            """Dispatcher."""
            tasks = [ShardTask(items)]
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, tasks))
        '''
        findings = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P601"]
        )
        assert any(
            "ShardTask" in f.message and "__getstate__" in f.message
            for f in findings
        )

    def test_interprocedural_flow_through_caller_fires(self, tmp_path):
        source = '''\
        """The lock arrives through a helper's parameter."""
        import threading
        from concurrent.futures import ProcessPoolExecutor
        from dataclasses import dataclass


        @dataclass
        class ShardTask:
            """Task spec."""

            items: tuple
            guard: object


        def _worker(task: ShardTask):
            """Worker entrypoint."""
            return len(task.items)


        def make_task(items, guard):
            """Builds the spec from caller-supplied parts."""
            return ShardTask(items=tuple(items), guard=guard)


        def run(items):
            """Dispatcher passing the lock one level up."""
            tasks = [make_task(items, threading.Lock())]
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, tasks))
        '''
        findings = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P601"]
        )
        assert any("via make_task()" in f.message for f in findings)

    def test_getstate_neutralizes_unpicklable_field(self, tmp_path):
        source = '''\
        """A lock-holding class that controls its own pickling."""
        import threading
        from concurrent.futures import ProcessPoolExecutor


        class ShardTask:
            """Task spec dropping the lock at pickle time."""

            def __init__(self, items):
                self.items = items
                self.lock = threading.Lock()

            def __getstate__(self):
                """Drop the lock."""
                return {"items": self.items}

            def __setstate__(self, state):
                """Recreate the lock."""
                self.items = state["items"]
                self.lock = threading.Lock()


        def _worker(task: ShardTask):
            """Worker entrypoint."""
            return len(task.items)


        def run(items):
            """Dispatcher."""
            tasks = [ShardTask(items)]
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, tasks))
        '''
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P601"]
        )


#: The PR 9 miss-counter bug shape: a counter mutated worker-side whose
#: value never appears in __getstate__ — state that dies with the worker.
MISS_COUNTER_BUG = '''\
"""Seeded regression: the miss counter never ships home."""
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass
class ShardTask:
    """Task spec."""

    items: tuple


class ShardStats:
    """Stats whose homeward surface misses one counter."""

    def __init__(self):
        self._hits = 0
        self._misses = 0

    def record(self, hit):
        """Count one lookup."""
        if hit:
            self._hits += 1
        else:
            self._misses += 1

    def __getstate__(self):
        """Ships hits only — misses are silently dropped on merge."""
        return {"hits": self._hits}


def _worker(task):
    """Worker entrypoint."""
    stats = ShardStats()
    for item in task.items:
        stats.record(bool(item))
    return stats


def run(items, workers):
    """Dispatcher."""
    tasks = [ShardTask(items=tuple(items))]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker, tasks))
'''


class TestP602HomewardSurface:
    def test_miss_counter_bug_shape_fires(self, tmp_path):
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": MISS_COUNTER_BUG}, ["P602"]
        )
        assert "'_misses'" in finding.message
        assert "record()" in finding.message
        assert "lost on merge" in finding.message

    def test_complete_surface_is_quiet(self, tmp_path):
        assert not findings_for(
            tmp_path, {"backend/runner.py": BACKEND_OK}, ["P602"]
        )

    def test_adopt_method_counts_as_surface(self, tmp_path):
        source = MISS_COUNTER_BUG.replace(
            '''    def __getstate__(self):
        """Ships hits only — misses are silently dropped on merge."""
        return {"hits": self._hits}
''',
            '''    def __getstate__(self):
        """Ships hits only."""
        return {"hits": self._hits}

    def adopt_counts(self, other):
        """Order-pinned fold reading both counters."""
        self._hits += other._hits
        self._misses += other._misses
''',
        )
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P602"]
        )

    def test_parent_side_class_is_out_of_scope(self, tmp_path):
        # A class with a homeward protocol but no worker-reachable
        # methods is parent-side bookkeeping, not boundary state.
        source = MISS_COUNTER_BUG.replace(
            "    stats = ShardStats()\n"
            "    for item in task.items:\n"
            "        stats.record(bool(item))\n"
            "    return stats",
            "    return len(task.items)",
        )
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P602"]
        )


class TestP603SplitBrain:
    SPLIT_BRAIN = '''\
    """Worker code reading and writing a module global."""
    from concurrent.futures import ProcessPoolExecutor

    _SEEN = {}


    def _worker(item):
        """Memoizes into per-process state."""
        if item in _SEEN:
            return _SEEN[item]
        _SEEN[item] = len(item)
        return _SEEN[item]


    def run(items):
        """Dispatcher."""
        with ProcessPoolExecutor() as pool:
            return list(pool.map(_worker, items))
    '''

    def test_read_write_global_fires(self, tmp_path):
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": self.SPLIT_BRAIN}, ["P603"]
        )
        assert "'_SEEN'" in finding.message
        assert "diverges" in finding.message
        # Anchored at the global's definition statement.
        assert finding.snippet.startswith("_SEEN")

    def test_read_only_global_is_quiet(self, tmp_path):
        source = self.SPLIT_BRAIN.replace(
            '''        if item in _SEEN:
            return _SEEN[item]
        _SEEN[item] = len(item)
        return _SEEN[item]''',
            "        return _SEEN.get(item, len(item))",
        )
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P603"]
        )

    def test_local_shadow_is_quiet(self, tmp_path):
        source = self.SPLIT_BRAIN.replace(
            '''        if item in _SEEN:
            return _SEEN[item]
        _SEEN[item] = len(item)
        return _SEEN[item]''',
            '''        _SEEN = {}
        _SEEN[item] = len(item)
        return _SEEN[item]''',
        )
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P603"]
        )

    def test_parent_side_global_is_quiet(self, tmp_path):
        # The dispatcher (parent side) may touch module state freely;
        # only worker-reachable access splits brains.
        source = '''\
        """Global touched by the dispatcher only."""
        from concurrent.futures import ProcessPoolExecutor

        _RUNS = {}


        def _worker(item):
            """Pure worker."""
            return len(item)


        def run(items):
            """Dispatcher counting runs parent-side."""
            _RUNS["count"] = _RUNS.get("count", 0) + 1
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_worker, items))
        '''
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P603"]
        )


class TestP604MergeFolds:
    def test_dict_update_fold_fires(self, tmp_path):
        source = BACKEND_OK.replace(
            """    merged = {}
    for stats, writes in results:
        for key, value in writes.items():
            merged[key] = value
    return merged""",
            """    merged = {}
    for stats, writes in results:
        merged.update(writes)
    return merged""",
        )
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P604"]
        )
        assert "'merged.update(...)'" in finding.message
        assert "shard order" in finding.message

    def test_list_extend_fold_fires(self, tmp_path):
        source = BACKEND_OK.replace(
            """    merged = {}
    for stats, writes in results:
        for key, value in writes.items():
            merged[key] = value
    return merged""",
            """    merged = []
    for stats, writes in results:
        merged.extend(writes)
    return merged""",
        )
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P604"]
        )
        assert "'merged.extend(...)'" in finding.message

    def test_augassign_fold_fires(self, tmp_path):
        source = BACKEND_OK.replace(
            """    merged = {}
    for stats, writes in results:
        for key, value in writes.items():
            merged[key] = value
    return merged""",
            """    total = 0
    for stats, writes in results:
        total += len(writes)
    return total""",
        )
        (finding,) = findings_for(
            tmp_path, {"backend/runner.py": source}, ["P604"]
        )
        assert "'total += ...'" in finding.message

    def test_keyed_store_is_quiet(self, tmp_path):
        assert not findings_for(
            tmp_path, {"backend/runner.py": BACKEND_OK}, ["P604"]
        )

    def test_adopt_fold_is_quiet(self, tmp_path):
        source = BACKEND_OK.replace(
            """    merged = {}
    for stats, writes in results:
        for key, value in writes.items():
            merged[key] = value
    return merged""",
            """    observer = ShardStats()
    for stats, writes in results:
        observer.adopt_stats(stats)
    return observer""",
        )
        assert not findings_for(
            tmp_path, {"backend/runner.py": source}, ["P604"]
        )


class TestSuppressionAndBaseline:
    def test_inline_suppression_works(self, tmp_path):
        source = MISS_COUNTER_BUG.replace(
            "            self._misses += 1",
            "            self._misses += 1  # repro: ignore[P602]",
        )
        root = write_tree(tmp_path, {"backend/runner.py": source})
        report = analyze_paths(
            [root / "backend"], root=root, rules=build_rules(["P602"])
        )
        assert not report.open_findings
        assert report.by_status("suppressed")


class TestByteIdentity:
    def run_cli(self, tmp_path, *extra):
        return main(
            [
                str(tmp_path / "backend"),
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--rules",
                P_RULES,
                "--format",
                "json",
                *extra,
            ]
        )

    def test_cold_cache_changed_only_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        write_tree(tmp_path, {"backend/runner.py": MISS_COUNTER_BUG})
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
            cwd=tmp_path,
            check=True,
        )
        monkeypatch.chdir(tmp_path)
        outputs = {}
        for label, extra in {
            "cold": (),
            "warm": ("--cache", str(tmp_path / "cache.json")),
            "warm2": ("--cache", str(tmp_path / "cache.json")),
        }.items():
            assert self.run_cli(tmp_path, *extra) == 1
            outputs[label] = capsys.readouterr().out
        # Touch the fixture so --changed-only re-checks it.
        runner = tmp_path / "backend" / "runner.py"
        runner.write_text(
            runner.read_text(encoding="utf-8") + "\n", encoding="utf-8"
        )
        assert self.run_cli(tmp_path, "--changed-only") == 1
        outputs["changed"] = capsys.readouterr().out
        assert outputs["warm"] == outputs["cold"]
        assert outputs["warm2"] == outputs["cold"]
        assert outputs["changed"] == outputs["cold"]
