"""Tests for rule-wrapped recognizers (paper footnote 1)."""

from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer
from repro.recognizers.rules import FullNodeRecognizer, ValueFilterRecognizer


class TestFullNodeRecognizer:
    def test_full_coverage_match_kept(self):
        base = GazetteerRecognizer("artist", ["Muse"])
        wrapped = FullNodeRecognizer(base)
        assert len(wrapped.find("Muse")) == 1

    def test_partial_match_dropped(self):
        base = GazetteerRecognizer("artist", ["Muse"])
        wrapped = FullNodeRecognizer(base)
        assert wrapped.find("Tonight Muse plays") == []

    def test_surrounding_whitespace_tolerated(self):
        base = GazetteerRecognizer("artist", ["Muse"])
        wrapped = FullNodeRecognizer(base)
        assert len(wrapped.find("  Muse  ")) == 1

    def test_empty_text(self):
        wrapped = FullNodeRecognizer(GazetteerRecognizer("artist", ["Muse"]))
        assert wrapped.find("   ") == []

    def test_type_name_and_accepts_delegate(self):
        base = GazetteerRecognizer("artist", ["Muse"])
        wrapped = FullNodeRecognizer(base)
        assert wrapped.type_name == "artist"
        assert wrapped.accepts("Muse")

    def test_selectivity_boosted(self):
        base = predefined_recognizer("date")
        wrapped = FullNodeRecognizer(base)
        assert wrapped.selectivity_weight() > base.selectivity_weight()


class TestValueFilterRecognizer:
    def test_predicate_filters_values(self):
        base = predefined_recognizer("year")
        wrapped = ValueFilterRecognizer(base, lambda v: int(v) >= 2000)
        values = [m.value for m in wrapped.find("from 1995 to 2005")]
        assert values == ["2005"]

    def test_accepts_requires_predicate(self):
        base = predefined_recognizer("year")
        wrapped = ValueFilterRecognizer(base, lambda v: int(v) >= 2000)
        assert wrapped.accepts("2010")
        assert not wrapped.accepts("1995")


class TestDslIntegration:
    def test_cover_node_parsed(self):
        from repro.sod.dsl import parse_sod

        sod = parse_sod("t(artist<cover=node>)")
        assert sod.components[0].cover_node

    def test_pipeline_applies_full_node_rule(self):
        from repro.core import ObjectRunner
        from repro.recognizers.registry import RecognizerRegistry
        from repro.sod.dsl import parse_sod

        registry = RecognizerRegistry()
        registry.register(GazetteerRecognizer("artist", ["Muse"]))
        runner = ObjectRunner(
            parse_sod("t(artist<cover=node>)"), registry=registry
        )
        (recognizer,) = runner.recognizers
        assert isinstance(recognizer, FullNodeRecognizer)
        assert recognizer.find("Muse live in concert") == []
