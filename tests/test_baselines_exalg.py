"""Tests for the ExAlg baseline."""

from repro.baselines.exalg import ExAlgSystem
from repro.htmlkit.tidy import tidy
from repro.sod.dsl import parse_sod

SOD = parse_sod("t(a, b)")


def pages_from(sources):
    return [tidy(source) for source in sources]


def list_page(rows):
    records = "".join(
        f"<li><div class='x'>{a}</div><div class='y'>{b}</div></li>"
        for a, b in rows
    )
    return f"<body><div id='main'>{records}</div></body>"


class TestExAlg:
    def test_extracts_one_row_per_record(self):
        pages = pages_from(
            [
                list_page([("a1", "b1"), ("a2", "b2")]),
                list_page([("a3", "b3"), ("a4", "b4"), ("a5", "b5")]),
            ]
        )
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        assert not output.failed
        assert len(output.records) == 5

    def test_columns_hold_aligned_values(self):
        pages = pages_from(
            [list_page([("alpha", "beta")]), list_page([("gamma", "delta")])]
        )
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        columns = [sorted(v[0] for v in record.columns.values()) for record in output.records]
        assert columns == [["alpha", "beta"], ["delta", "gamma"]]

    def test_ignores_annotations_entirely(self):
        # Same pages, with annotations present: identical output.
        from repro.annotation.annotator import annotate_page
        from repro.recognizers.gazetteer import GazetteerRecognizer

        raw = [list_page([("alpha", "beta"), ("gamma", "delta")])] * 2
        plain_pages = pages_from(raw)
        annotated_pages = pages_from(raw)
        for page in annotated_pages:
            annotate_page(page, [GazetteerRecognizer("x", ["alpha", "gamma"])])
        plain = ExAlgSystem(support=2).run("s", plain_pages, SOD)
        annotated = ExAlgSystem(support=2).run("s", annotated_pages, SOD)
        assert len(plain.records) == len(annotated.records)
        assert [r.columns for r in plain.records] == [
            r.columns for r in annotated.records
        ]

    def test_unstructured_source_degenerates(self):
        # On template-less pages ExAlg at best infers a trivial page-level
        # wrapper: one row per page, never a crash.
        pages = pages_from(
            [
                "<body><p>random prose</p></body>",
                "<body><div><b>other stuff</b></div></body>",
            ]
        )
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        assert output.failed or len(output.records) <= len(pages)

    def test_wrap_time_measured(self):
        pages = pages_from([list_page([("a", "b")])] * 3)
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        assert output.wrap_seconds > 0

    def test_page_index_recorded(self):
        pages = pages_from(
            [list_page([("a1", "b1")]), list_page([("a2", "b2")])]
        )
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        assert [record.page_index for record in output.records] == [0, 1]

    def test_multivalued_columns_from_iterators(self):
        def authored(n):
            spans = "".join(f"<span class='a'>name{j}</span>" for j in range(n))
            return f"<li><div class='t'>title</div>{spans}</li>"

        pages = pages_from(
            [
                f"<body><div id='m'>{authored(1)}{authored(2)}</div></body>",
                f"<body><div id='m'>{authored(3)}{authored(1)}</div></body>",
            ]
        )
        output = ExAlgSystem(support=2).run("s", pages, SOD)
        assert not output.failed
        counts = [
            max(len(values) for values in record.columns.values())
            for record in output.records
        ]
        assert max(counts) >= 2  # some record carries a multi-valued column
