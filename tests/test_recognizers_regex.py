"""Tests for regex recognizers."""

import pytest

from repro.errors import RecognizerError
from repro.recognizers.regexes import RegexRecognizer


class TestRegexRecognizer:
    def test_basic_find(self):
        recognizer = RegexRecognizer("num", r"\d+")
        matches = recognizer.find("a 12 b 345")
        assert [(m.start, m.value) for m in matches] == [(2, "12"), (7, "345")]

    def test_type_name_on_matches(self):
        recognizer = RegexRecognizer("zip", r"\d{5}")
        (match,) = recognizer.find("code 12345 ok")
        assert match.type_name == "zip"

    def test_confidence_propagated(self):
        recognizer = RegexRecognizer("num", r"\d+", confidence=0.4)
        assert recognizer.find("7")[0].confidence == 0.4

    def test_multiple_patterns(self):
        recognizer = RegexRecognizer("id", [r"\d{4}", r"[A-Z]{3}-\d+"])
        values = {m.value for m in recognizer.find("1234 and ABC-9")}
        assert values == {"1234", "ABC-9"}

    def test_accepts_full_match_only(self):
        recognizer = RegexRecognizer("num", r"\d+")
        assert recognizer.accepts("123")
        assert recognizer.accepts("  123  ")  # surrounding space tolerated
        assert not recognizer.accepts("a123")

    def test_case_insensitive_default(self):
        recognizer = RegexRecognizer("word", r"hello")
        assert recognizer.find("say HELLO now")

    def test_invalid_pattern_raises(self):
        with pytest.raises(RecognizerError):
            RegexRecognizer("bad", r"([unclosed")

    def test_no_patterns_raises(self):
        with pytest.raises(RecognizerError):
            RegexRecognizer("empty", [])

    def test_zero_width_matches_skipped(self):
        recognizer = RegexRecognizer("maybe", r"x?")
        assert all(m.length > 0 for m in recognizer.find("axbxc"))

    def test_selectivity_weight(self):
        recognizer = RegexRecognizer("num", r"\d+", selectivity=3.5)
        assert recognizer.selectivity_weight() == 3.5

    def test_matches_sorted(self):
        recognizer = RegexRecognizer("any", [r"b+", r"a+"])
        matches = recognizer.find("aabb")
        assert [m.start for m in matches] == sorted(m.start for m in matches)
