"""MetricsRegistry: counters, gauges, timer summaries, ordered merging."""

import json
import threading

import pytest

from repro.metrics import MetricsRegistry, TimerSummary, default_registry


class TestRecording:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("objects")
        registry.count("objects", 4)
        assert registry.counter_value("objects") == 5
        assert registry.counter_value("never") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("rss", 100.0)
        registry.gauge("rss", 250.0)
        assert registry.gauge_value("rss") == 250.0
        assert registry.gauge_value("never", default=-1.0) == -1.0

    def test_timer_observations_keep_order(self):
        registry = MetricsRegistry()
        for value in (0.3, 0.1, 0.2):
            registry.observe("stage.wrapping", value)
        assert registry.observations("stage.wrapping") == (0.3, 0.1, 0.2)
        assert registry.timer_names() == ("stage.wrapping",)


class TestSummaries:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            registry.observe("t", value)
        summary = registry.summary("t")
        assert summary == TimerSummary(
            count=5, total=2.0, min=0.1, max=1.0, mean=0.4, p50=0.3, p95=1.0
        )

    def test_summary_single_observation(self):
        registry = MetricsRegistry()
        registry.observe("t", 0.5)
        summary = registry.summary("t")
        assert summary.count == 1
        assert summary.p50 == summary.p95 == summary.min == summary.max == 0.5

    def test_summary_of_unknown_timer_is_none(self):
        assert MetricsRegistry().summary("nope") is None

    def test_p95_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("t", float(value))
        summary = registry.summary("t")
        assert summary.p95 == 95.0
        assert summary.p50 == 50.0

    def test_nearest_rank_n1_is_the_only_value(self):
        # Nearest-rank with one observation: rank = max(1, ceil(q*1)) = 1
        # for every q, so p50 and p95 are exactly that observation — never
        # an interpolated or zero-filled value.
        registry = MetricsRegistry()
        registry.observe("t", 0.125)
        summary = registry.summary("t")
        assert summary == TimerSummary(
            count=1, total=0.125, min=0.125, max=0.125, mean=0.125,
            p50=0.125, p95=0.125,
        )

    def test_nearest_rank_n2_p50_low_p95_high(self):
        # Two observations: p50 rank = ceil(0.5*2) = 1 (the LOWER value,
        # per nearest-rank; no averaging), p95 rank = ceil(0.95*2) = 2.
        registry = MetricsRegistry()
        registry.observe("t", 4.0)
        registry.observe("t", 1.0)
        summary = registry.summary("t")
        assert summary == TimerSummary(
            count=2, total=5.0, min=1.0, max=4.0, mean=2.5, p50=1.0, p95=4.0
        )


class TestMerge:
    def test_merge_semantics(self):
        left = MetricsRegistry()
        left.count("a", 1)
        left.gauge("g", 1.0)
        left.observe("t", 0.1)
        right = MetricsRegistry()
        right.count("a", 2)
        right.count("b", 3)
        right.gauge("g", 9.0)
        right.observe("t", 0.2)
        left.merge(right)
        assert left.counter_value("a") == 3
        assert left.counter_value("b") == 3
        assert left.gauge_value("g") == 9.0  # last write wins
        assert left.observations("t") == (0.1, 0.2)

    def test_merged_folds_in_input_order(self):
        registries = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.observe("t", float(index))
            registry.gauge("g", float(index))
            registries.append(registry)
        merged = MetricsRegistry.merged(registries)
        assert merged.observations("t") == (0.0, 1.0, 2.0)
        assert merged.gauge_value("g") == 2.0

    def test_parallel_fill_merges_byte_identical_to_serial(self):
        """The tentpole determinism property: same per-source registries,
        merged in the same order, snapshot byte-identically no matter how
        many threads filled them."""

        def fill(registry, salt):
            for index in range(50):
                registry.count("objects", (index + salt) % 7)
                registry.observe("stage.wrapping", (index * salt) % 11 / 10)

        serial = [MetricsRegistry() for _ in range(8)]
        for salt, registry in enumerate(serial, start=1):
            fill(registry, salt)

        parallel = [MetricsRegistry() for _ in range(8)]
        threads = [
            threading.Thread(target=fill, args=(registry, salt))
            for salt, registry in enumerate(parallel, start=1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        serial_snapshot = json.dumps(
            MetricsRegistry.merged(serial).snapshot(), sort_keys=True
        )
        parallel_snapshot = json.dumps(
            MetricsRegistry.merged(parallel).snapshot(), sort_keys=True
        )
        assert serial_snapshot == parallel_snapshot

    def test_concurrent_writes_to_one_registry_are_complete(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(1000):
                registry.count("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n") == 4000


class TestSnapshot:
    def test_snapshot_shape_and_key_order(self):
        registry = MetricsRegistry()
        registry.count("z", 1)
        registry.count("a", 2)
        registry.gauge("g", 0.123456789123)
        registry.observe("t", 0.25)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "timers"]
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["gauges"]["g"] == pytest.approx(0.123456789, abs=1e-9)
        assert snapshot["timers"]["t"]["count"] == 1
        # Snapshot is pure JSON.
        json.dumps(snapshot)

    def test_counters_snapshot_sorted(self):
        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        assert list(registry.counters_snapshot()) == ["a", "b"]


class TestDefaultRegistry:
    def test_default_registry_is_a_stable_singleton(self):
        assert default_registry() is default_registry()
        assert isinstance(default_registry(), MetricsRegistry)
