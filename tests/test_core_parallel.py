"""Parallel multi-source execution equals serial execution exactly."""

import json

import pytest

from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec


@pytest.fixture(scope="module")
def four_sources():
    """Four independent album sites of the same domain."""
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    sources = {}
    for index in range(4):
        spec = SiteSpec(
            name=f"par-{index}",
            domain="albums",
            archetype="clean",
            total_objects=15,
            seed=("parallel", index),
        )
        sources[spec.name] = generate_source(spec, domain).pages
    return domain, knowledge, sources


def run_with_workers(domain, knowledge, sources, workers, **params):
    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(max_workers=workers, **params),
    )
    return runner.run_sources(sources)


def as_bytes(outcome):
    return json.dumps(
        [instance.values for instance in outcome.objects], sort_keys=True
    ).encode()


class TestParallelEqualsSerial:
    def test_byte_identical_objects(self, four_sources):
        domain, knowledge, sources = four_sources
        serial = run_with_workers(domain, knowledge, sources, workers=1)
        parallel = run_with_workers(domain, knowledge, sources, workers=4)
        assert as_bytes(parallel) == as_bytes(serial)

    def test_result_ordering_preserved(self, four_sources):
        domain, knowledge, sources = four_sources
        parallel = run_with_workers(domain, knowledge, sources, workers=4)
        assert list(parallel.results) == list(sources)
        assert parallel.sources_ok == 4

    def test_per_source_results_match(self, four_sources):
        domain, knowledge, sources = four_sources
        serial = run_with_workers(domain, knowledge, sources, workers=1)
        parallel = run_with_workers(domain, knowledge, sources, workers=4)
        for name in sources:
            left = serial.results[name]
            right = parallel.results[name]
            assert left.support_used == right.support_used
            assert left.supports_attempted == right.supports_attempted
            assert [o.values for o in left.objects] == [
                o.values for o in right.objects
            ]

    def test_more_workers_than_sources(self, four_sources):
        domain, knowledge, sources = four_sources
        outcome = run_with_workers(domain, knowledge, sources, workers=32)
        assert outcome.sources_ok == 4

    def test_discarded_source_in_parallel_run(self, four_sources):
        domain, knowledge, sources = four_sources
        mixed = dict(sources)
        mixed["junk"] = ["<html><body><p>nothing</p></body></html>"] * 3
        outcome = run_with_workers(domain, knowledge, mixed, workers=4)
        assert outcome.sources_ok == 4
        assert outcome.sources_discarded == 1
        assert outcome.results["junk"].discarded

    def test_parallel_dedup_matches_serial(self, four_sources):
        domain, knowledge, sources = four_sources
        mirrored = dict(sources)
        first = next(iter(sources))
        mirrored[f"{first}-mirror"] = sources[first]
        serial = run_with_workers(
            domain, knowledge, mirrored, workers=1
        )
        parallel = run_with_workers(
            domain, knowledge, mirrored, workers=4
        )
        # Dedup happens after pooling, so parity must survive it too.
        runner_args = dict(deduplicate_across=True, dedup_keys=("title", "artist"))
        serial_runner = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            params=RunParams(max_workers=1),
        )
        parallel_runner = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            params=RunParams(max_workers=4),
        )
        serial = serial_runner.run_sources(mirrored, **runner_args)
        parallel = parallel_runner.run_sources(mirrored, **runner_args)
        assert serial.duplicates_merged == parallel.duplicates_merged
        assert as_bytes(parallel) == as_bytes(serial)


class TestEnrichmentForcesSerial:
    def test_enrichment_runs_stay_deterministic(self, four_sources):
        # Gazetteer growth is order-dependent, so enrichment runs ignore
        # max_workers; two "parallel" runs must agree with each other and
        # with an explicitly serial run.
        domain, knowledge, sources = four_sources
        first = run_with_workers(
            domain, knowledge, sources, workers=4,
            enrich_dictionaries=True, enrichment_passes=2,
        )
        second = run_with_workers(
            domain, knowledge, sources, workers=1,
            enrich_dictionaries=True, enrichment_passes=2,
        )
        assert as_bytes(first) == as_bytes(second)
