"""Internals of wrapper generation: span-to-record reconstruction."""

from repro.htmlkit.tidy import tidy
from repro.wrapper.generate import _spans_to_records, _top_level_nodes
from repro.wrapper.records import segment_records
from repro.wrapper.tokens import tokenize_element


def tokenized(sources):
    return [
        tokenize_element(tidy(source).find("body"), page_index=i)
        for i, source in enumerate(sources)
    ]


def li_list_page(count):
    records = "".join(
        f"<li><div class='a'>x{i}</div><div class='b'>y{i}</div></li>"
        for i in range(count)
    )
    return f"<body><ul>{records}</ul></body>"


def sibling_page(count):
    records = "".join(
        f"<div class='head'>h{i}</div><p>body {i}</p>" for i in range(count)
    )
    return f"<body><div id='m'>{records}</div></body>"


class TestSpansToRecords:
    def test_single_element_style_detected(self):
        pages = tokenized([li_list_page(n) for n in (3, 4, 5)])
        segmentation = segment_records(pages, min_support=3)
        records, single = _spans_to_records(pages, segmentation)
        assert single
        assert len(records) == 12
        assert all(len(record) == 1 for record in records)
        assert all(record[0].tag == "li" for record in records)

    def test_sibling_run_style_detected(self):
        pages = tokenized([sibling_page(n) for n in (3, 4, 5)])
        segmentation = segment_records(pages, min_support=3)
        records, single = _spans_to_records(pages, segmentation)
        assert not single
        assert len(records) == 12
        # Each record spans the heading div plus its body paragraph.
        assert all(len(record) == 2 for record in records)

    def test_top_level_nodes_deduplicates_descendants(self):
        page = tokenized(["<body><li><div><span>x</span></div></li></body>"])[0]
        nodes = _top_level_nodes(page.tokens)
        # The whole subtree resolves to its root <body>... first token is
        # body open; nodes should be exactly one maximal node.
        assert len(nodes) == 1

    def test_top_level_nodes_partial_span(self):
        page = tokenized(
            ["<body><ul><li>a</li><li>b</li></ul></body>"]
        )[0]
        # Take a span covering only the two <li> subtrees (not the <ul>).
        li_opens = [
            index
            for index, token in enumerate(page.tokens)
            if token.kind == "open" and token.value == "li"
        ]
        li_closes = [
            index
            for index, token in enumerate(page.tokens)
            if token.kind == "close" and token.value == "li"
        ]
        span_tokens = page.tokens[li_opens[0] : li_closes[-1] + 1]
        nodes = _top_level_nodes(span_tokens)
        assert [getattr(node, "tag", "#text") for node in nodes] == ["li", "li"]
