"""The process backend reproduces the serial run byte for byte."""

import json
import pickle

import pytest

from repro.core import ObjectRunner, RunParams, ShardSpec
from repro.core.faults import FaultInjector, FaultSpec
from repro.core.pipeline import TimingObserver
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.errors import MultiSourceError, ProcessBackendConfigError
from repro.metrics import MetricsObserver, MetricsRegistry
from repro.metrics.observer import peak_rss_bytes
from repro.registry.store import WrapperRegistry


@pytest.fixture(scope="module")
def four_sources():
    """Four independent album sites of the same domain."""
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    sources = {}
    for index in range(4):
        spec = SiteSpec(
            name=f"proc-{index}",
            domain="albums",
            archetype="clean",
            total_objects=10,
            seed=("process-backend", index),
        )
        sources[spec.name] = generate_source(spec, domain).pages
    return domain, knowledge, sources


def make_runner(domain, knowledge, registry_root=None, observers=(), **params):
    return ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(**params),
        observers=observers,
        wrapper_registry=(
            WrapperRegistry(registry_root) if registry_root else None
        ),
    )


def as_bytes(outcome):
    return json.dumps(
        [instance.values for instance in outcome.objects], sort_keys=True
    ).encode()


class TestProcessEqualsSerial:
    def test_byte_identical_objects(self, four_sources):
        domain, knowledge, sources = four_sources
        serial = make_runner(
            domain, knowledge, max_workers=1
        ).run_sources(sources)
        process = make_runner(
            domain, knowledge, max_workers=4, backend="process"
        ).run_sources(sources)
        assert as_bytes(process) == as_bytes(serial)
        assert list(process.results) == list(serial.results) == list(sources)

    def test_metrics_counters_match_serial(self, four_sources):
        domain, knowledge, sources = four_sources
        counters = {}
        for backend, workers in (("thread", 1), ("process", 4)):
            observer = MetricsObserver()
            make_runner(
                domain, knowledge, observers=(observer,),
                max_workers=workers, backend=backend,
            ).run_sources(sources)
            snapshot = observer.snapshot()
            counters[backend] = json.dumps(
                {
                    "sources": snapshot["sources"],
                    "counters": observer.merged_registry().counters_snapshot(),
                },
                sort_keys=True,
            )
        assert counters["process"] == counters["thread"]

    def test_registry_index_bytes_match_serial(self, four_sources, tmp_path):
        domain, knowledge, sources = four_sources
        serial_root = tmp_path / "serial"
        process_root = tmp_path / "process"
        make_runner(
            domain, knowledge, registry_root=serial_root, max_workers=1
        ).run_sources(sources)
        make_runner(
            domain, knowledge, registry_root=process_root,
            max_workers=4, backend="process",
        ).run_sources(sources)
        serial_index = (serial_root / "index.json").read_bytes()
        process_index = (process_root / "index.json").read_bytes()
        assert process_index == serial_index

    def test_worker_cache_and_registry_stats_are_adopted(
        self, four_sources, tmp_path
    ):
        domain, knowledge, sources = four_sources
        observer = MetricsObserver()
        runner = make_runner(
            domain, knowledge, registry_root=tmp_path / "reg",
            observers=(observer,), max_workers=4, backend="process",
        )
        runner.run_sources(sources)
        # Worker preprocess caches report home: every page was a miss once.
        stats = observer.cache_stats()
        assert stats["misses"] >= sum(len(p) for p in sources.values())
        # Worker registry lookups (all misses on a cold root) fold into the
        # parent handle; the stores themselves happen at parent apply time.
        registry_stats = runner.wrapper_registry.stats()
        assert registry_stats["misses"] == len(sources)
        assert registry_stats["stores"] == len(sources)

    def test_two_shards_union_equals_full_run(self, four_sources):
        domain, knowledge, sources = four_sources
        full = make_runner(
            domain, knowledge, max_workers=1
        ).run_sources(sources)
        parts = [
            make_runner(
                domain, knowledge, max_workers=1,
                shard=ShardSpec(index=index, count=2),
            ).run_sources(sources)
            for index in range(2)
        ]
        names = [list(part.results) for part in parts]
        assert not (set(names[0]) & set(names[1]))
        assert sorted(names[0] + names[1]) == sorted(sources)
        for part in parts:
            for source, result in part.results.items():
                assert [o.values for o in result.objects] == [
                    o.values for o in full.results[source].objects
                ]

    def test_shard_keeps_input_order(self, four_sources):
        domain, knowledge, sources = four_sources
        shard = ShardSpec(index=0, count=2)
        outcome = make_runner(
            domain, knowledge, max_workers=1, shard=shard
        ).run_sources(sources)
        expected = [name for name in sources if shard.contains(name)]
        assert list(outcome.results) == expected


class TestProcessFailurePolicies:
    def failing_sources(self, sources):
        mixed = {}
        for index, (name, pages) in enumerate(sources.items()):
            if index == 2:
                # A non-string page fails deterministically at preprocess
                # in any backend (fault injectors cannot cross the
                # process boundary).
                mixed["bad"] = [None]
            mixed[name] = pages
        return mixed

    def test_isolate_matches_serial(self, four_sources):
        domain, knowledge, sources = four_sources
        mixed = self.failing_sources(sources)
        serial = make_runner(
            domain, knowledge, max_workers=1, failure_policy="isolate"
        ).run_sources(mixed)
        process = make_runner(
            domain, knowledge, max_workers=4, backend="process",
            failure_policy="isolate",
        ).run_sources(mixed)
        assert list(process.failures) == list(serial.failures) == ["bad"]
        assert process.failures["bad"].stage == "preprocess"
        assert as_bytes(process) == as_bytes(serial)

    def test_fail_fast_partial_matches_serial_prefix(self, four_sources):
        domain, knowledge, sources = four_sources
        mixed = self.failing_sources(sources)
        partials = {}
        for backend, workers in (("thread", 1), ("process", 4)):
            runner = make_runner(
                domain, knowledge, max_workers=workers, backend=backend,
                failure_policy="fail_fast",
            )
            with pytest.raises(MultiSourceError) as excinfo:
                runner.run_sources(mixed)
            error = excinfo.value
            assert error.failure.source == "bad"
            partials[backend] = error.partial
        assert list(partials["process"].results) == list(
            partials["thread"].results
        )
        assert as_bytes(partials["process"]) == as_bytes(partials["thread"])

    def test_fail_fast_registry_matches_serial_prefix(
        self, four_sources, tmp_path
    ):
        domain, knowledge, sources = four_sources
        mixed = self.failing_sources(sources)
        roots = {}
        for backend, workers in (("thread", 1), ("process", 4)):
            root = tmp_path / backend
            roots[backend] = root
            runner = make_runner(
                domain, knowledge, registry_root=root,
                max_workers=workers, backend=backend,
                failure_policy="fail_fast",
            )
            with pytest.raises(MultiSourceError):
                runner.run_sources(mixed)
        assert (roots["process"] / "index.json").read_bytes() == (
            roots["thread"] / "index.json"
        ).read_bytes()


class TestProcessBackendSupport:
    # Rejection happens at *construction* time — before any worker
    # spawns — with a typed ProcessBackendConfigError naming the
    # offending constructor field.

    def test_rejects_fault_injector(self, four_sources):
        domain, knowledge, __ = four_sources
        with pytest.raises(
            ProcessBackendConfigError, match="fault injector"
        ) as excinfo:
            ObjectRunner(
                domain.sod,
                ontology=knowledge.ontology,
                corpus=knowledge.corpus,
                gazetteer_classes=domain.gazetteer_classes,
                params=RunParams(max_workers=4, backend="process"),
                fault_injector=FaultInjector(
                    [FaultSpec(stage="wrapping", source="proc-0")]
                ),
            )
        assert excinfo.value.field == "fault_injector"

    def test_rejects_custom_sleep(self, four_sources):
        domain, knowledge, __ = four_sources
        with pytest.raises(
            ProcessBackendConfigError, match="sleep"
        ) as excinfo:
            ObjectRunner(
                domain.sod,
                ontology=knowledge.ontology,
                corpus=knowledge.corpus,
                gazetteer_classes=domain.gazetteer_classes,
                params=RunParams(max_workers=4, backend="process"),
                sleep=lambda seconds: None,
            )
        assert excinfo.value.field == "sleep"

    def test_rejects_non_metrics_observers(self, four_sources):
        domain, knowledge, __ = four_sources
        with pytest.raises(
            ProcessBackendConfigError, match="MetricsObserver"
        ) as excinfo:
            make_runner(
                domain, knowledge, observers=(TimingObserver(),),
                max_workers=4, backend="process",
            )
        assert excinfo.value.field == "observers"

    def test_rejects_late_observer_subscription(self, four_sources):
        domain, knowledge, __ = four_sources
        runner = make_runner(
            domain, knowledge, max_workers=4, backend="process"
        )
        with pytest.raises(
            ProcessBackendConfigError, match="MetricsObserver"
        ) as excinfo:
            runner.add_observer(TimingObserver())
        assert excinfo.value.field == "observers"
        # MetricsObserver subscriptions stay fine.
        runner.add_observer(MetricsObserver())

    def test_config_error_is_a_value_error(self):
        # Callers treating backend misconfiguration as a plain
        # configuration error keep working.
        assert issubclass(ProcessBackendConfigError, ValueError)

    def test_small_batches_fall_back_to_thread_path(
        self, four_sources, monkeypatch
    ):
        # One source (or one worker) never pays process fan-out cost.
        domain, knowledge, sources = four_sources
        first = next(iter(sources))
        runner = make_runner(
            domain, knowledge, max_workers=4, backend="process"
        )
        monkeypatch.setattr(
            runner,
            "_run_items_process",
            lambda *a, **k: pytest.fail("process fan-out on a small batch"),
        )
        outcome = runner.run_sources({first: sources[first]})
        assert list(outcome.results) == [first]

    def test_params_validation(self):
        with pytest.raises(ValueError):
            RunParams(backend="fiber")
        with pytest.raises(ValueError):
            RunParams(shard="0/2")  # must be a ShardSpec, not a string


class TestMergeBuildingBlocks:
    def test_metrics_registry_pickle_roundtrip(self):
        registry = MetricsRegistry()
        registry.count("pages", 3)
        registry.gauge("pc", 0.92)
        registry.observe("wrap_seconds", 0.25)
        registry.observe("wrap_seconds", 0.75)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        # The recreated lock still guards mutation.
        clone.count("pages")
        assert clone.counter_value("pages") == 4

    def test_adopt_source_keeps_pinned_order(self):
        observer = MetricsObserver()
        observer.note_source_order(["a", "b", "c"])
        late = MetricsRegistry()
        late.count("objects", 5)
        observer.adopt_source("c", late)
        early = MetricsRegistry()
        early.count("objects", 2)
        observer.adopt_source("a", early)
        # Adoption order was c-then-a, but the pinned order wins ("b"
        # never produced a registry, so it does not appear).
        assert observer.sources() == ("a", "c")
        assert observer.source_registry("a").counter_value("objects") == 2
        assert observer.source_registry("c").counter_value("objects") == 5

    def test_adopt_cache_stats_sums(self):
        observer = MetricsObserver()
        observer.adopt_cache_stats({"hits": 2, "misses": 3})
        observer.adopt_cache_stats({"hits": 1, "misses": 0})
        stats = observer.cache_stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 3

    def test_peak_rss_folds_children_maximum(self, monkeypatch):
        import resource

        real = resource.getrusage

        class _Usage:
            def __init__(self, maxrss):
                self.ru_maxrss = maxrss

        def fake(who):
            if who == resource.RUSAGE_CHILDREN:
                return _Usage(999_999)
            return _Usage(111)

        monkeypatch.setattr(resource, "getrusage", fake)
        try:
            assert peak_rss_bytes() in (999_999 * 1024, 999_999)
        finally:
            monkeypatch.setattr(resource, "getrusage", real)

    def test_peak_rss_self_branch_wins_when_larger(self, monkeypatch):
        import resource

        class _Usage:
            def __init__(self, maxrss):
                self.ru_maxrss = maxrss

        def fake(who):
            if who == resource.RUSAGE_CHILDREN:
                return _Usage(10)
            return _Usage(500)

        monkeypatch.setattr(resource, "getrusage", fake)
        assert peak_rss_bytes() in (500 * 1024, 500)

    def test_peak_rss_live_reading_positive(self):
        assert peak_rss_bytes() > 0
