"""The taint pass: sources, summaries, helper laundering, and sinks."""

import textwrap

from repro.analysis.dataflow import TaintAnalyzer
from repro.analysis.graph import ProjectGraph


def build_graph(tmp_path, files):
    paths = []
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return ProjectGraph.build(tmp_path, paths)


def json_dump_sink(site):
    if site.expanded in ("json.dump", "json.dumps"):
        return f"{site.expanded}()"
    return None


def analyze(tmp_path, files):
    graph = build_graph(tmp_path, files)
    return TaintAnalyzer(graph, sink_of=json_dump_sink).compute()


class TestSummaries:
    def test_clock_return(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {"app.py": "import time\n\ndef stamp():\n    return time.time()\n"},
        )
        assert "CLOCK" in summaries["app:stamp"].returns

    def test_env_return(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {
                "app.py": (
                    "import os\n\ndef env():\n"
                    "    return os.environ.get('X', '')\n"
                )
            },
        )
        assert "ENV" in summaries["app:env"].returns

    def test_param_flows_to_return(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {"app.py": "def ident(x):\n    return x\n"},
        )
        assert "x" in summaries["app:ident"].param_returns

    def test_taint_propagates_through_one_helper_hop(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {
                "app.py": """
                    import time

                    def stamp():
                        return time.time()

                    def wraps():
                        value = stamp()
                        return {"t": value}
                """
            },
        )
        assert "CLOCK" in summaries["app:wraps"].returns

    def test_sorted_strips_set_order_only(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {
                "app.py": """
                    import time

                    def ordered(items):
                        return sorted(set(items))

                    def still_clock():
                        return sorted([time.time()])
                """
            },
        )
        assert "SET_ORDER" not in summaries["app:ordered"].returns
        assert "CLOCK" in summaries["app:still_clock"].returns

    def test_sink_param_recorded(self, tmp_path):
        summaries, _ = analyze(
            tmp_path,
            {
                "app.py": (
                    "import json\n\ndef save(obj, fh):\n"
                    "    json.dump(obj, fh)\n"
                )
            },
        )
        assert "obj" in summaries["app:save"].sink_params


class TestFlows:
    def test_direct_tainted_dump(self, tmp_path):
        _, flows = analyze(
            tmp_path,
            {
                "app.py": """
                    import json
                    import time

                    def emit(fh):
                        payload = {"t": time.time()}
                        json.dump(payload, fh)
                """
            },
        )
        assert len(flows) == 1
        flow = flows[0]
        assert flow.labels == ("CLOCK",)
        assert flow.sink == "json.dump()"
        assert flow.via == ""

    def test_flow_laundered_through_helper(self, tmp_path):
        _, flows = analyze(
            tmp_path,
            {
                "app.py": """
                    import json
                    import time

                    def save(obj, fh):
                        json.dump(obj, fh)

                    def emit(fh):
                        stamp = time.time()
                        save(stamp, fh)
                """
            },
        )
        laundered = [f for f in flows if f.via]
        assert laundered, flows
        assert laundered[0].via == "app:save"
        assert laundered[0].function == "app:emit"
        assert "CLOCK" in laundered[0].labels

    def test_clean_value_no_flow(self, tmp_path):
        _, flows = analyze(
            tmp_path,
            {
                "app.py": (
                    "import json\n\ndef emit(fh):\n"
                    "    json.dump({'n': 1}, fh)\n"
                )
            },
        )
        assert flows == []

    def test_flows_deterministically_sorted(self, tmp_path):
        files = {
            "b.py": """
                import json
                import time

                def late(fh):
                    json.dump(time.time(), fh)
            """,
            "a.py": """
                import json
                import time

                def early(fh):
                    json.dump(time.time(), fh)
            """,
        }
        _, flows = analyze(tmp_path, files)
        keys = [(f.relpath, f.line, f.col) for f in flows]
        assert keys == sorted(keys)
