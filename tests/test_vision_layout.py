"""Tests for the box-model layout estimator."""

from repro.htmlkit.tidy import tidy
from repro.vision.layout import CANVAS_WIDTH, LayoutEngine


def layout_of(source):
    root = tidy(source)
    return root, LayoutEngine().layout(root)


class TestBlockStacking:
    def test_blocks_stack_vertically(self):
        root, layout = layout_of("<body><div>one</div><div>two</div></body>")
        divs = root.find_all("div")
        first, second = layout.rect_of(divs[0]), layout.rect_of(divs[1])
        assert second.y >= first.bottom - 1e-6

    def test_every_element_has_a_box(self):
        root, layout = layout_of(
            "<body><div><p>a</p><span>b <a>c</a></span></div></body>"
        )
        for element in root.iter_elements():
            assert layout.has(element)

    def test_more_text_means_taller(self):
        root, layout = layout_of(
            "<body><div>short</div><div>" + ("long text " * 100) + "</div></body>"
        )
        divs = root.find_all("div")
        assert layout.rect_of(divs[1]).height > layout.rect_of(divs[0]).height

    def test_canvas_width(self):
        __, layout = layout_of("<body><p>x</p></body>")
        assert layout.canvas.width == CANVAS_WIDTH


class TestInlineFlow:
    def test_inline_elements_share_a_row(self):
        root, layout = layout_of("<body><p><a>x</a><a>y</a></p></body>")
        anchors = root.find_all("a")
        first, second = layout.rect_of(anchors[0]), layout.rect_of(anchors[1])
        assert abs(first.y - second.y) < 1e-6
        assert second.x >= first.right - 1e-6

    def test_inline_wraps_when_row_full(self):
        long_text = "wordy " * 60
        root, layout = layout_of(
            f"<body><p><span>{long_text}</span><span>{long_text}</span></p></body>"
        )
        spans = root.find_all("span")
        assert layout.rect_of(spans[1]).y > layout.rect_of(spans[0]).y


class TestChromeRegions:
    def test_side_nav_pinned_to_edge(self):
        root, layout = layout_of(
            "<body><nav><a>Home</a></nav><div>" + "content " * 50 + "</div></body>"
        )
        nav = root.find("nav")
        div = root.find("div")
        nav_rect = layout.rect_of(nav)
        div_rect = layout.rect_of(div)
        assert nav_rect.width < div_rect.width
        assert nav_rect.x >= div_rect.x  # nav sits beside, pinned right

    def test_main_content_is_biggest(self):
        root, layout = layout_of(
            "<body><header><h1>Site</h1></header>"
            "<div id='main'>" + "record text " * 80 + "</div>"
            "<footer>fine print</footer></body>"
        )
        main = root.find_all("div")[0]
        header = root.find("header")
        assert layout.rect_of(main).area > layout.rect_of(header).area
