"""Unit tests for the staged pipeline: registry, ordering, context flow."""

from types import SimpleNamespace

import pytest

from repro.core import ObjectRunner, RunParams
from repro.core.pipeline import (
    DEFAULT_STAGE_ORDER,
    Pipeline,
    PipelineContext,
    PipelineObserver,
    Stage,
    build_stages,
    stage_registry,
)
from repro.core.stages import prefer_wrapper
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec


@pytest.fixture(scope="module")
def albums_setup():
    domain = domain_spec("albums")
    spec = SiteSpec(
        name="stages-albums",
        domain="albums",
        archetype="clean",
        total_objects=30,
        seed=("stages", "albums"),
    )
    source = generate_source(spec, domain)
    knowledge = build_knowledge(domain, coverage=0.2)
    return domain, source, knowledge


def make_runner(domain, knowledge, params=None, observers=()):
    return ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=params,
        observers=observers,
    )


class RecordingObserver(PipelineObserver):
    """Collects (kind, stage) tuples in emission order."""

    def __init__(self):
        self.events = []

    def on_pipeline_start(self, event, ctx):
        self.events.append(("pipeline_start", ""))

    def on_stage_start(self, event, ctx):
        self.events.append(("stage_start", event.stage))

    def on_stage_end(self, event, ctx):
        self.events.append(("stage_end", event.stage))

    def on_pipeline_end(self, event, ctx):
        self.events.append(("pipeline_end", ""))


class TestRegistry:
    def test_default_order_registered(self):
        registry = stage_registry()
        for name in DEFAULT_STAGE_ORDER:
            assert name in registry

    def test_build_stages_in_order(self):
        stages = build_stages()
        assert [stage.name for stage in stages] == list(DEFAULT_STAGE_ORDER)

    def test_unknown_stage_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            build_stages(["preprocess", "nope"])

    def test_register_requires_name(self):
        from repro.core.pipeline import register_stage

        class Nameless(Stage):
            """A stage without a name."""

        with pytest.raises(ValueError):
            register_stage(Nameless)

    def test_custom_stage_can_join_a_pipeline(self, albums_setup):
        domain, source, knowledge = albums_setup

        class MarkerStage(Stage):
            """Writes a marker into the context artifacts."""

            name = "marker"

            def run(self, ctx):
                ctx.artifacts["marker"] = ctx.counters["pages_prepared"]

        runner = make_runner(domain, knowledge)
        stages = build_stages(("preprocess",)) + [MarkerStage()]
        ctx = runner._context("stages-albums", raw_pages=source.pages)
        Pipeline(stages).run(ctx)
        assert ctx.artifacts["marker"] == len(source.pages)


class TestStageOrderingAndContext:
    def test_stages_run_in_declared_order(self, albums_setup):
        domain, source, knowledge = albums_setup
        observer = RecordingObserver()
        runner = make_runner(domain, knowledge, observers=(observer,))
        result = runner.run_source("stages-albums", source.pages)
        assert result.ok
        started = [stage for kind, stage in observer.events if kind == "stage_start"]
        # Enrichment is disabled by default, so it never emits events.
        assert started == ["preprocess", "segmentation", "annotation",
                           "wrapping", "extraction"]
        assert observer.events[0] == ("pipeline_start", "")
        assert observer.events[-1] == ("pipeline_end", "")

    def test_context_accumulates_artifacts_across_stages(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        ctx = runner._context("stages-albums", raw_pages=source.pages)
        runner._build_pipeline().run(ctx)
        assert len(ctx.pages) == len(source.pages)
        assert ctx.regions  # segmentation narrowed or copied the pages
        assert ctx.sample_regions
        assert ctx.wrapper is not None
        assert ctx.result.objects
        assert ctx.counters["objects_extracted"] == len(ctx.result.objects)

    def test_prepared_entry_skips_preprocess(self, albums_setup):
        domain, source, knowledge = albums_setup
        observer = RecordingObserver()
        runner = make_runner(domain, knowledge, observers=(observer,))
        pages = runner.prepare_pages(source.pages)
        result = runner.run_source_prepared("stages-albums", pages)
        assert result.ok
        started = [stage for kind, stage in observer.events if kind == "stage_start"]
        assert "preprocess" not in started
        assert started[0] == "segmentation"

    def test_discard_stops_the_pipeline(self):
        domain = domain_spec("albums")
        knowledge = build_knowledge(domain, coverage=0.2)
        observer = RecordingObserver()
        runner = make_runner(domain, knowledge, observers=(observer,))
        result = runner.run_source(
            "junk", ["<html><body><p>nothing</p></body></html>"] * 3
        )
        assert result.discarded
        started = [stage for kind, stage in observer.events if kind == "stage_start"]
        assert "extraction" not in started
        assert observer.events[-1] == ("pipeline_end", "")


class TestSupportSelection:
    def _wrapper(self, matched=True, conflicts=0, slots=3, support=3):
        template = SimpleNamespace(field_slots=lambda: list(range(slots)))
        return SimpleNamespace(
            match=SimpleNamespace(matched=matched),
            conflicts=conflicts,
            template=template,
            support=support,
        )

    def test_better_preference_wins(self):
        worse = self._wrapper(conflicts=2, support=3)
        better = self._wrapper(conflicts=0, support=5)
        assert prefer_wrapper(worse, better) is better
        assert prefer_wrapper(better, worse) is better

    def test_tie_breaks_toward_smaller_support(self):
        big = self._wrapper(support=5)
        small = self._wrapper(support=3)
        # Regardless of attempt order, the smaller support wins the tie.
        assert prefer_wrapper(big, small) is small
        assert prefer_wrapper(small, big) is small

    def test_none_yields_candidate(self):
        candidate = self._wrapper()
        assert prefer_wrapper(None, candidate) is candidate

    def test_supports_attempted_recorded(self, albums_setup):
        domain, source, knowledge = albums_setup
        runner = make_runner(domain, knowledge)
        result = runner.run_source("stages-albums", source.pages)
        assert result.ok
        assert result.supports_attempted
        assert result.supports_attempted == list(
            runner.params.support_values[: len(result.supports_attempted)]
        )
        assert result.support_used in result.supports_attempted

    def test_descending_support_order_is_deterministic(self, albums_setup):
        # The same source wrapped with supports offered in opposite orders
        # must choose the same support whenever preferences tie.
        domain, source, knowledge = albums_setup
        ascending = make_runner(
            domain, knowledge, RunParams(support_values=(3, 4, 5))
        ).run_source("stages-albums", source.pages)
        descending = make_runner(
            domain, knowledge, RunParams(support_values=(5, 4, 3))
        ).run_source("stages-albums", source.pages)
        assert ascending.ok and descending.ok
        assert [o.values for o in ascending.objects] == [
            o.values for o in descending.objects
        ]
