"""Tests for on-the-fly gazetteer construction."""

from repro.corpus.store import Corpus
from repro.kb.ontology import Ontology
from repro.recognizers.build import DictionaryBuilder, build_gazetteer


def music_ontology():
    ontology = Ontology()
    ontology.add_instance("Metallica", "Band", 0.95)
    ontology.add_instance("Madonna", "Singer", 0.9)
    ontology.add_subclass("Band", "Artist")
    ontology.add_subclass("Singer", "Artist")
    return ontology


def music_corpus():
    return Corpus(
        [
            "Artists such as Coldplay are famous.",
            "Artists such as Coldplay tour a lot.",
            "Muse is an Artist with many fans.",
        ]
    )


class TestOntologyChannel:
    def test_neighborhood_instances(self):
        builder = DictionaryBuilder(ontology=music_ontology())
        instances = builder.instances_from_ontology("Artist")
        assert "Metallica" in instances
        assert "Madonna" in instances

    def test_no_ontology_empty(self):
        assert DictionaryBuilder().instances_from_ontology("Artist") == {}


class TestCorpusChannel:
    def test_hearst_instances(self):
        builder = DictionaryBuilder(corpus=music_corpus())
        instances = builder.instances_from_corpus("Artist")
        assert "Coldplay" in instances
        assert "Muse" in instances

    def test_scores_rescaled_to_cap(self):
        builder = DictionaryBuilder(corpus=music_corpus(), corpus_confidence_cap=0.8)
        instances = builder.instances_from_corpus("Artist")
        assert max(instances.values()) == 0.8
        assert all(0 < value <= 0.8 for value in instances.values())

    def test_no_corpus_empty(self):
        assert DictionaryBuilder().instances_from_corpus("Artist") == {}

    def test_min_score_filter(self):
        builder = DictionaryBuilder(corpus=music_corpus(), min_corpus_score=10.0)
        assert builder.instances_from_corpus("Artist") == {}


class TestMerge:
    def test_both_channels_merge(self):
        builder = DictionaryBuilder(
            ontology=music_ontology(), corpus=music_corpus()
        )
        gazetteer = builder.build("Artist")
        entries = gazetteer.entries()
        assert "Metallica" in entries  # from ontology
        assert "Coldplay" in entries  # from corpus

    def test_type_name_override(self):
        gazetteer = build_gazetteer(
            "Artist", ontology=music_ontology(), type_name="artist"
        )
        assert gazetteer.type_name == "artist"

    def test_max_confidence_wins_on_overlap(self):
        ontology = music_ontology()
        ontology.add_instance("Coldplay", "Band", 0.99)
        builder = DictionaryBuilder(ontology=ontology, corpus=music_corpus())
        gazetteer = builder.build("Artist")
        # Ontology confidence (0.99 decayed once) beats the corpus score.
        assert gazetteer.confidence_of("Coldplay") > 0.5

    def test_unknown_class_empty_gazetteer(self):
        gazetteer = build_gazetteer("Nothing", ontology=music_ontology())
        assert len(gazetteer) == 0
