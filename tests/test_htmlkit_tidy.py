"""Tests for JTidy-style document normalization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmlkit.dom import Element, Text
from repro.htmlkit.tidy import tidy


class TestDocumentShape:
    def test_full_document_kept(self):
        html = tidy("<html><head><title>t</title></head><body><p>x</p></body></html>")
        assert html.tag == "html"
        assert html.find("head") is not None
        assert html.find("body") is not None

    def test_missing_html_wrapper_added(self):
        html = tidy("<p>bare content</p>")
        body = html.find("body")
        assert body is not None
        assert body.text_content() == "bare content"

    def test_missing_body_added(self):
        html = tidy("<html><div>x</div></html>")
        body = html.find("body")
        assert body.find("div") is not None

    def test_head_elements_collected(self):
        html = tidy("<title>t</title><p>body text</p>")
        head = html.find("head")
        assert head.find("title") is not None
        assert "body text" in html.find("body").text_content()

    def test_exactly_one_body(self):
        html = tidy("<html><body>a</body></html><html><body>b</body></html>")
        bodies = html.find_all("body")
        assert len(bodies) == 1

    @given(st.text(max_size=300))
    def test_always_produces_html_body(self, source):
        html = tidy(source)
        assert html.tag == "html"
        assert html.find("body") is not None


class TestTextNormalization:
    def test_adjacent_text_merged(self):
        html = tidy("<p>a&amp;b</p>")
        p = html.find("p")
        text_children = [c for c in p.children if isinstance(c, Text)]
        assert len(text_children) == 1

    def test_interblock_whitespace_dropped(self):
        html = tidy("<div>\n  <p>x</p>\n  <p>y</p>\n</div>")
        div = html.find("div")
        assert all(
            not isinstance(child, Text) or child.text.strip()
            for child in div.children
        )

    def test_inline_whitespace_kept(self):
        html = tidy("<p><b>a</b> <i>b</i></p>")
        assert html.find("p").text_content() == "a b"

    def test_comments_dropped(self):
        html = tidy("<div><!-- note -->x</div>")
        assert html.find("div").text_content() == "x"


class TestIdempotence:
    def test_structure_stable_under_reparse(self):
        from repro.htmlkit.serialize import to_html

        source = "<div><li>a<li>b<p>c</div>"
        first = tidy(source)
        second = tidy(to_html(first))
        assert to_html(first) == to_html(second)

    @given(st.text(alphabet="<>/abdiv lispan", max_size=150))
    def test_roundtrip_stable_on_soup(self, source):
        from repro.htmlkit.serialize import to_html

        first = tidy(source)
        second = tidy(to_html(first))
        assert to_html(first) == to_html(second)
