"""Tests for run parameters."""

import dataclasses

import pytest

from repro.core.params import RunParams


class TestRunParams:
    def test_paper_defaults(self):
        params = RunParams()
        assert params.sample_size == 20
        assert params.alpha == 0.5
        assert params.generalization_threshold == 0.7
        assert params.support_values == (3, 4, 5)

    def test_with_overrides(self):
        params = RunParams().with_overrides(sample_size=5, alpha=0.3)
        assert params.sample_size == 5
        assert params.alpha == 0.3
        assert params.support_values == (3, 4, 5)  # untouched

    def test_overrides_do_not_mutate_original(self):
        original = RunParams()
        original.with_overrides(sample_size=5)
        assert original.sample_size == 20

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunParams().sample_size = 3  # type: ignore[misc]


class TestWithOverrides:
    def test_every_declared_field_round_trips(self):
        defaults = RunParams()
        for field in dataclasses.fields(RunParams):
            value = getattr(defaults, field.name)
            overridden = defaults.with_overrides(**{field.name: value})
            assert overridden == defaults, field.name

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown RunParams field"):
            RunParams().with_overrides(sample_sze=5)

    def test_unknown_key_error_names_the_key(self):
        with pytest.raises(ValueError, match="sample_sze"):
            RunParams().with_overrides(sample_sze=5)

    def test_overrides_revalidate(self):
        # dataclasses.replace re-runs __post_init__, so an override can
        # never smuggle in an invalid value.
        with pytest.raises(ValueError):
            RunParams().with_overrides(chaos_ratio=1.5)


class TestValidation:
    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_chaos_ratio_must_be_a_ratio(self, value):
        with pytest.raises(ValueError, match="chaos_ratio"):
            RunParams(chaos_ratio=value)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_chaos_ratio_bounds_are_inclusive(self, value):
        assert RunParams(chaos_ratio=value).chaos_ratio == value

    def test_failure_policy_must_be_known(self):
        with pytest.raises(ValueError, match="failure_policy"):
            RunParams(failure_policy="shrug")

    @pytest.mark.parametrize("value", ["fail_fast", "isolate"])
    def test_valid_failure_policies(self, value):
        assert RunParams(failure_policy=value).failure_policy == value

    def test_max_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="max_retries"):
            RunParams(max_retries=-1)
