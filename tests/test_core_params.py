"""Tests for run parameters."""

from repro.core.params import RunParams


class TestRunParams:
    def test_paper_defaults(self):
        params = RunParams()
        assert params.sample_size == 20
        assert params.alpha == 0.5
        assert params.generalization_threshold == 0.7
        assert params.support_values == (3, 4, 5)

    def test_with_overrides(self):
        params = RunParams().with_overrides(sample_size=5, alpha=0.3)
        assert params.sample_size == 5
        assert params.alpha == 0.3
        assert params.support_values == (3, 4, 5)  # untouched

    def test_overrides_do_not_mutate_original(self):
        original = RunParams()
        original.with_overrides(sample_size=5)
        assert original.sample_size == 20

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            RunParams().sample_size = 3  # type: ignore[misc]
