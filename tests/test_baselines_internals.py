"""Tests for baseline internals: RoadRunner chunk helpers, ExAlg flatten."""

from repro.baselines.exalg import _flatten_record
from repro.baselines.roadrunner import (
    RField,
    ROpt,
    RPlus,
    RToken,
    _balanced_chunk,
    _first_literal,
    _trailing_chunk,
)
from repro.wrapper.extraction import RecordValues


def tokens(*specs):
    out = []
    for spec in specs:
        if spec.startswith("</"):
            out.append(RToken("close", spec[2:-1]))
        elif spec.startswith("<"):
            out.append(RToken("open", spec[1:-1]))
        else:
            out.append(RToken("text", spec))
    return out


class TestBalancedChunk:
    def test_simple(self):
        toks = tokens("<li>", "x", "</li>", "<li>", "y", "</li>")
        assert _balanced_chunk(toks, 0) == 3
        assert _balanced_chunk(toks, 3) == 6

    def test_nested_same_tag(self):
        toks = tokens("<div>", "<div>", "x", "</div>", "</div>")
        assert _balanced_chunk(toks, 0) == 5
        assert _balanced_chunk(toks, 1) == 4

    def test_not_an_open_tag(self):
        toks = tokens("x", "<li>", "</li>")
        assert _balanced_chunk(toks, 0) is None

    def test_unterminated(self):
        toks = tokens("<li>", "x")
        assert _balanced_chunk(toks, 0) is None


class TestTrailingChunk:
    def test_finds_last_balanced(self):
        items = tokens("<ul>", "<li>", "x", "</li>")
        assert _trailing_chunk(items) == 1

    def test_none_when_tail_is_text(self):
        items = tokens("<li>", "</li>", "x")
        assert _trailing_chunk(items) is None

    def test_skips_fields_inside(self):
        items = [RToken("open", "li"), RField(0), RToken("close", "li")]
        assert _trailing_chunk(items) == 0


class TestFirstLiteral:
    def test_plain_token(self):
        assert _first_literal(tokens("<li>", "x")).value == "li"

    def test_descends_into_plus(self):
        plus = RPlus(tokens("<li>", "</li>"))
        assert _first_literal([plus]).value == "li"

    def test_descends_into_optional(self):
        opt = ROpt(tokens("<p>", "</p>"))
        assert _first_literal([opt]).value == "p"

    def test_field_first_yields_none(self):
        assert _first_literal([RField(0), RToken("open", "li")]) is None

    def test_empty(self):
        assert _first_literal([]) is None


class TestExAlgFlatten:
    def test_fields_become_columns(self):
        values = RecordValues(fields={0: ["a"], 2: ["b", "c"]})
        columns = _flatten_record(values)
        assert columns == {0: ["a"], 2: ["b", "c"]}

    def test_iterator_units_offset(self):
        values = RecordValues(
            fields={0: ["page-level"]},
            iterators={
                1: [
                    RecordValues(fields={5: ["u1"]}),
                    RecordValues(fields={5: ["u2"]}),
                ]
            },
        )
        columns = _flatten_record(values)
        assert columns[0] == ["page-level"]
        iterator_column = next(k for k in columns if k >= 10_000)
        assert columns[iterator_column] == ["u1", "u2"]

    def test_nested_iterators_distinct_columns(self):
        inner = RecordValues(fields={1: ["deep"]})
        values = RecordValues(
            iterators={0: [RecordValues(iterators={2: [inner]})]}
        )
        columns = _flatten_record(values)
        assert ["deep"] in columns.values()

    def test_empty(self):
        assert _flatten_record(RecordValues()) == {}
