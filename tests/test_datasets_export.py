"""Tests for source export and the exported-files -> CLI path."""

import json

from repro.__main__ import main
from repro.datasets.domains import domain_spec
from repro.datasets.export import export_source
from repro.datasets.sites import SiteSpec, generate_source


def make_source():
    spec = SiteSpec(
        name="export-albums",
        domain="albums",
        archetype="clean",
        total_objects=25,
        seed=("export",),
    )
    return generate_source(spec, domain_spec("albums"))


class TestExport:
    def test_layout(self, tmp_path):
        source = make_source()
        directory = export_source(source, tmp_path / "src")
        pages = sorted((directory / "pages").glob("*.html"))
        assert len(pages) == len(source.pages)
        assert (directory / "gold.jsonl").exists()
        assert (directory / "source.json").exists()
        assert (directory / "dicts" / "artist.txt").exists()
        assert (directory / "dicts" / "title.txt").exists()

    def test_gold_jsonl_roundtrips(self, tmp_path):
        source = make_source()
        directory = export_source(source, tmp_path / "src")
        lines = (directory / "gold.jsonl").read_text().splitlines()
        assert len(lines) == len(source.gold)
        first = json.loads(lines[0])
        assert first["values"] == source.gold[0].values

    def test_source_json_carries_sod(self, tmp_path):
        source = make_source()
        directory = export_source(source, tmp_path / "src")
        meta = json.loads((directory / "source.json").read_text())
        assert meta["domain"] == "albums"
        assert "album(" in meta["sod"]

    def test_cli_extracts_from_exported_files(self, tmp_path, capsys):
        source = make_source()
        directory = export_source(source, tmp_path / "src")
        meta = json.loads((directory / "source.json").read_text())
        pages = sorted(str(p) for p in (directory / "pages").glob("*.html"))
        code = main(
            [
                "extract",
                "--sod", meta["sod"],
                "--dict", f"artist={directory / 'dicts' / 'artist.txt'}",
                "--dict", f"title={directory / 'dicts' / 'title.txt'}",
                *pages,
            ]
        )
        assert code == 0
        out = capsys.readouterr()
        objects = [json.loads(line) for line in out.out.splitlines() if line]
        assert len(objects) == len(source.gold)
        extracted_titles = {o["title"] for o in objects}
        gold_titles = {g.values["title"] for g in source.gold}
        assert extracted_titles == gold_titles
