"""Tests for record detection and segmentation."""

from repro.htmlkit.tidy import tidy
from repro.wrapper.records import segment_records
from repro.wrapper.tokens import tokenize_element


def pages_from(sources):
    return [
        tokenize_element(tidy(source).find("body"), page_index=i)
        for i, source in enumerate(sources)
    ]


def list_page(count, extra=""):
    records = "".join(
        f"<li><div class='t'>title {i}</div><div class='p'>price {i}</div>"
        f"<span class='x'>note {i}</span></li>"
        for i in range(count)
    )
    return f"<body>{extra}<div id='main'>{records}</div></body>"


class TestListDetection:
    def test_varying_counts(self):
        pages = pages_from([list_page(4), list_page(6), list_page(5)])
        segmentation = segment_records(pages, min_support=3)
        assert segmentation is not None
        assert segmentation.is_list_source
        assert [len(s) for s in segmentation.spans_per_page] == [4, 6, 5]

    def test_constant_counts_still_detected(self):
        # The "too regular" case: same record count on every page.
        pages = pages_from([list_page(5)] * 4)
        segmentation = segment_records(pages, min_support=3)
        assert segmentation is not None
        assert segmentation.is_list_source
        assert all(len(s) == 5 for s in segmentation.spans_per_page)

    def test_outermost_repetition_wins(self):
        # Records contain inner repeated spans; the record level (li) must
        # win over the deeper span repetition.
        records = lambda n: "".join(
            f"<li><div class='t'>t{i}</div>"
            + "".join(f"<span class='a'>w{j}</span>" for j in range(3))
            + "</li>"
            for i in range(n)
        )
        pages = pages_from(
            [f"<body><div id='m'>{records(n)}</div></body>" for n in (4, 5, 6)]
        )
        segmentation = segment_records(pages, min_support=3)
        first_role = segmentation.record_class.ordered_roles[0]
        assert first_role[1] == "li"

    def test_record_sequences_extracted(self):
        pages = pages_from([list_page(3), list_page(3)])
        segmentation = segment_records(pages, min_support=2)
        sequences = segmentation.record_sequences(pages)
        assert len(sequences) == 6
        assert all(seq[0].value == "li" for seq in sequences)


class TestDetailDetection:
    def test_single_record_pages(self):
        detail = (
            "<body><div id='main'><div class='t'>title {}</div>"
            "<div class='p'>price {}</div><div class='d'>extra {}</div>"
            "</div></body>"
        )
        pages = pages_from([detail.format(i, i, i) for i in range(5)])
        segmentation = segment_records(pages, min_support=3)
        assert segmentation is not None
        assert not segmentation.is_list_source
        assert all(len(s) == 1 for s in segmentation.spans_per_page)


class TestUnstructured:
    def test_random_pages_rejected(self):
        pages = pages_from(
            [
                "<body><p>one paragraph of prose</p></body>",
                "<body><div><div><span>totally different</span></div></div></body>",
                "<body><ul><li>x</li></ul><b>misc</b></body>",
            ]
        )
        assert segment_records(pages, min_support=2) is None

    def test_empty_input(self):
        assert segment_records([], min_support=3) is None
