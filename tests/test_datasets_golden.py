"""Tests for gold-object generation."""

import pytest

from repro.datasets.domains import DOMAINS, domain_spec
from repro.datasets.golden import generate_gold
from repro.sod.instances import ObjectInstance, validate_instance


class TestGenerateGold:
    def test_deterministic(self):
        domain = domain_spec("albums")
        a = generate_gold(domain, 10, seed=1)
        b = generate_gold(domain, 10, seed=1)
        assert [x.values for x in a] == [y.values for y in b]

    def test_count(self):
        domain = domain_spec("books")
        assert len(generate_gold(domain, 17, seed=2)) == 17

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_gold_valid_against_sod(self, name):
        domain = domain_spec(name)
        for gold in generate_gold(domain, 10, seed=3):
            instance = ObjectInstance(values=gold.values)
            report = validate_instance(domain.sod, instance)
            assert report.ok, (name, gold.values, report.issues)

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_flat_keys_subset_of_attributes(self, name):
        domain = domain_spec(name)
        for gold in generate_gold(domain, 10, seed=4):
            assert set(gold.flat) <= set(domain.attributes)

    def test_optional_rate(self):
        domain = domain_spec("albums")
        gold = generate_gold(domain, 200, seed=5, optional_rate=0.75)
        with_date = sum(1 for g in gold if "date" in g.flat)
        assert 0.6 * 200 < with_date < 0.9 * 200

    def test_optional_absent_when_disabled(self):
        domain = domain_spec("albums")
        gold = generate_gold(domain, 50, seed=6, optional_present=False)
        assert all("date" not in g.flat for g in gold)

    def test_books_have_one_to_three_authors(self):
        domain = domain_spec("books")
        for gold in generate_gold(domain, 50, seed=7):
            assert 1 <= len(gold.values["authors"]) <= 3

    def test_concert_address_has_zip(self):
        domain = domain_spec("concerts")
        gold = generate_gold(domain, 50, seed=8)
        addresses = [
            g.values["location"]["address"]
            for g in gold
            if "address" in g.values["location"]
        ]
        assert addresses
        for address in addresses:
            assert address.rsplit(" ", 1)[1].isdigit()

    def test_normalized_flat(self):
        domain = domain_spec("cars")
        gold = generate_gold(domain, 1, seed=9)[0]
        normalized = gold.normalized_flat()
        assert normalized["brand"] == [gold.values["brand"].lower()]
