"""Schema-contract inference and the S501–S504 rules.

Each rule gets a seeded-regression fixture proving it fires, a negative
twin proving it stays quiet on conforming code, and the snapshot layer
is pinned byte-identical between cold, ``--cache`` and ``--changed-only``
runs — the same determinism bar every other reprolint pass meets.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    analyze_paths,
    build_rules,
    load_snapshot,
    project_schemas,
    render_snapshot,
    schemas_snapshot,
)
from repro.analysis.cli import main
from repro.analysis.engine import collect_files
from repro.analysis.graph import ProjectGraph
from repro.analysis.schemas import FAMILIES

BENCH_OK = '''\
"""Bench fixture."""
BENCH_SCHEMA_VERSION = 1


class BenchSession:
    """Session."""

    def capture(self):
        """Writer."""
        return {"schema_version": BENCH_SCHEMA_VERSION, "systems": {}}


def compare_documents(old, new):
    """Reader."""
    return old.get("systems"), new.get("schema_version")
'''

BENCH_DRIFT = '''\
"""Bench fixture with drift on both sides."""
BENCH_SCHEMA_VERSION = 1


class BenchSession:
    """Session."""

    def capture(self):
        """Writer emits 'ghost' nothing reads."""
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "systems": {},
            "ghost": 1,
        }


def compare_documents(old, new):
    """Reader requires 'phantom' nothing writes."""
    return old.get("systems"), old["phantom"], new.get("schema_version")
'''

STORE_UNGUARDED = '''\
"""Registry fixture with a bare subscript on external input."""
REGISTRY_SCHEMA_VERSION = 1


class RegistryEntry:
    """Entry."""

    def to_dict(self):
        """Writer."""
        return {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data):
        """Reader subscripting without a guard."""
        return data["signature"]
'''

STORE_GUARDED = '''\
"""Registry fixture converting KeyError to a typed error."""
REGISTRY_SCHEMA_VERSION = 1


class RegistryError(ValueError):
    """Typed error."""


class RegistryEntry:
    """Entry."""

    def to_dict(self):
        """Writer."""
        return {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data):
        """Reader with the guard."""
        try:
            return data["signature"]
        except KeyError as exc:
            raise RegistryError(str(exc)) from exc
'''

STORE_HELPER = '''\
"""Registry fixture reading through a _require-style helper chain."""
REGISTRY_SCHEMA_VERSION = 1


class RegistryError(ValueError):
    """Typed error."""


def _require(data, key):
    """Typed required fetch."""
    try:
        return data[key]
    except KeyError as exc:
        raise RegistryError(str(exc)) from exc


class RegistryEntry:
    """Entry."""

    def to_dict(self):
        """Writer."""
        return {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data):
        """Reader routing through the helper."""
        return _require(data, "signature")
'''


def write_tree(tmp_path, tree):
    for rel, source in tree.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def findings_for(tmp_path, tree, rule_ids, scan="metrics"):
    root = write_tree(tmp_path, tree)
    report = analyze_paths(
        [root / scan], root=root, rules=build_rules(rule_ids)
    )
    return report.open_findings


class TestInference:
    def test_writer_reader_and_version_inferred(self, tmp_path):
        root = write_tree(tmp_path, {"metrics/bench.py": BENCH_DRIFT})
        graph = ProjectGraph.build(root, collect_files([root]))
        contract = project_schemas(graph).contracts["bench"]
        assert contract.version == 1
        assert "ghost" in contract.writer_keys()
        assert contract.required_keys() == ["phantom"]
        assert "systems" in contract.optional_keys()

    def test_helper_chain_resolves_key_and_guard(self, tmp_path):
        root = write_tree(tmp_path, {"registry/store.py": STORE_HELPER})
        graph = ProjectGraph.build(root, collect_files([root]))
        contract = project_schemas(graph).contracts["registry_entry"]
        reads = [r for r in contract.reads if r.key == "signature"]
        assert reads and all(r.required and r.guarded for r in reads)
        assert all(r.via == "_require" for r in reads)

    def test_real_tree_families_all_matched(self):
        import repro

        src = __import__("pathlib").Path(repro.__file__).parents[1]
        graph = ProjectGraph.build(src.parent, collect_files([src]))
        schemas = project_schemas(graph)
        assert sorted(schemas.contracts) == sorted(
            family.name for family in FAMILIES
        )
        for contract in schemas.families():
            assert contract.writer_count or contract.reader_count, (
                f"family {contract.family.name} matched no functions"
            )


class TestS501Drift:
    def test_written_never_read_and_required_never_written(self, tmp_path):
        findings = findings_for(
            tmp_path, {"metrics/bench.py": BENCH_DRIFT}, ["S501"]
        )
        messages = [f.message for f in findings]
        assert any("'ghost' is written" in m for m in messages)
        assert any("'phantom' is read as required" in m for m in messages)

    def test_conforming_pair_is_quiet(self, tmp_path):
        assert not findings_for(
            tmp_path, {"metrics/bench.py": BENCH_OK}, ["S501"]
        )

    def test_one_sided_family_is_quiet(self, tmp_path):
        # Writers with no readers in scope (trace_event-style) can't drift.
        source = '''\
        """Pipeline fixture."""


        class PipelineEvent:
            """Event."""

            def to_json(self):
                """Writer only."""
                return {"event": self.kind, "mystery": 1}
        '''
        assert not findings_for(
            tmp_path, {"core/pipeline.py": source}, ["S501"], scan="core"
        )


class TestS502VersionBump:
    def make_snapshot(self, root, source):
        write_tree(root, {"metrics/bench.py": source})
        graph = ProjectGraph.build(root, collect_files([root / "metrics"]))
        (root / "schemas.json").write_text(
            render_snapshot(schemas_snapshot(project_schemas(graph))),
            encoding="utf-8",
        )

    def test_shape_change_without_bump_fires(self, tmp_path):
        self.make_snapshot(tmp_path, BENCH_OK)
        write_tree(tmp_path, {"metrics/bench.py": BENCH_DRIFT})
        report = analyze_paths(
            [tmp_path / "metrics"], root=tmp_path, rules=build_rules(["S502"])
        )
        (finding,) = [
            f for f in report.open_findings if "BENCH_SCHEMA_VERSION" in f.message
        ]
        assert "without bumping" in finding.message
        assert "'ghost'" in finding.message

    def test_shape_change_with_bump_asks_for_regeneration(self, tmp_path):
        self.make_snapshot(tmp_path, BENCH_OK)
        bumped = BENCH_DRIFT.replace(
            "BENCH_SCHEMA_VERSION = 1", "BENCH_SCHEMA_VERSION = 2"
        )
        write_tree(tmp_path, {"metrics/bench.py": bumped})
        report = analyze_paths(
            [tmp_path / "metrics"], root=tmp_path, rules=build_rules(["S502"])
        )
        assert any(
            "regenerate" in f.message and "without bumping" not in f.message
            for f in report.open_findings
        )

    def test_unchanged_tree_is_quiet(self, tmp_path):
        self.make_snapshot(tmp_path, BENCH_OK)
        report = analyze_paths(
            [tmp_path / "metrics"], root=tmp_path, rules=build_rules(["S502"])
        )
        assert not report.open_findings

    def test_missing_snapshot_is_quiet(self, tmp_path):
        write_tree(tmp_path, {"metrics/bench.py": BENCH_DRIFT})
        report = analyze_paths(
            [tmp_path / "metrics"], root=tmp_path, rules=build_rules(["S502"])
        )
        assert not report.open_findings


class TestS503ExternalInput:
    def test_unguarded_subscript_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {"registry/store.py": STORE_UNGUARDED},
            ["S503"],
            scan="registry",
        )
        (finding,) = findings
        assert "'signature'" in finding.message
        assert "KeyError" in finding.message

    def test_try_except_guard_is_quiet(self, tmp_path):
        assert not findings_for(
            tmp_path,
            {"registry/store.py": STORE_GUARDED},
            ["S503"],
            scan="registry",
        )

    def test_helper_guard_is_quiet(self, tmp_path):
        assert not findings_for(
            tmp_path,
            {"registry/store.py": STORE_HELPER},
            ["S503"],
            scan="registry",
        )

    def test_internal_family_exempt(self, tmp_path):
        # bench is not an external family: subscripts there are S504's
        # business (against committed history), not S503's.
        assert not findings_for(
            tmp_path, {"metrics/bench.py": BENCH_DRIFT}, ["S503"]
        )


class TestS504HistoryTolerance:
    def fixture(self, tmp_path, reader_line, history):
        source = BENCH_OK.replace(
            'return old.get("systems"), new.get("schema_version")',
            reader_line,
        )
        write_tree(tmp_path, {"metrics/bench.py": source})
        for name, doc in history.items():
            (tmp_path / name).write_text(json.dumps(doc), encoding="utf-8")
        report = analyze_paths(
            [tmp_path / "metrics"], root=tmp_path, rules=build_rules(["S504"])
        )
        return report.open_findings

    def test_key_missing_from_history_fires(self, tmp_path):
        findings = self.fixture(
            tmp_path,
            'return old["fresh_key"]',
            {"BENCH_0.json": {"schema_version": 1, "systems": {}}},
        )
        (finding,) = findings
        assert "'fresh_key'" in finding.message
        assert "BENCH_0.json" in finding.message

    def test_key_present_everywhere_is_quiet(self, tmp_path):
        assert not self.fixture(
            tmp_path,
            'return old["systems"]',
            {"BENCH_0.json": {"schema_version": 1, "systems": {}}},
        )

    def test_tolerant_get_is_quiet(self, tmp_path):
        assert not self.fixture(
            tmp_path,
            'return old.get("fresh_key")',
            {"BENCH_0.json": {"schema_version": 1, "systems": {}}},
        )

    def test_no_history_is_quiet(self, tmp_path):
        assert not self.fixture(tmp_path, 'return old["fresh_key"]', {})


class TestSnapshotCli:
    S_RULES = "S501,S502,S503,S504"

    def run(self, tmp_path, *extra):
        return main(
            [
                str(tmp_path / "metrics"),
                "--root",
                str(tmp_path),
                "--no-baseline",
                *extra,
            ]
        )

    def test_schemas_out_writes_canonical_snapshot(self, tmp_path, capsys):
        write_tree(tmp_path, {"metrics/bench.py": BENCH_OK})
        out = tmp_path / "schemas.json"
        assert (
            self.run(
                tmp_path, "--rules", self.S_RULES, "--schemas-out", str(out)
            )
            == 0
        )
        assert "schema snapshot written" in capsys.readouterr().err
        snapshot = load_snapshot(out)
        assert snapshot is not None
        assert snapshot["families"]["bench"]["version"] == 1
        assert "schema_version" in snapshot["families"]["bench"]["writer_keys"]

    def test_snapshot_byte_identical_cold_cache_changed_only(
        self, tmp_path, capsys, monkeypatch
    ):
        import subprocess

        write_tree(tmp_path, {"metrics/bench.py": BENCH_OK})
        subprocess.run(
            ["git", "init", "-q"], cwd=tmp_path, check=True
        )
        subprocess.run(
            ["git", "add", "-A"], cwd=tmp_path, check=True
        )
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
            cwd=tmp_path,
            check=True,
        )
        outs = {
            "cold": ["--schemas-out", str(tmp_path / "cold.json")],
            "cache": [
                "--cache",
                str(tmp_path / "cache.json"),
                "--schemas-out",
                str(tmp_path / "warm.json"),
            ],
            "cache2": [
                "--cache",
                str(tmp_path / "cache.json"),
                "--schemas-out",
                str(tmp_path / "warm2.json"),
            ],
        }
        monkeypatch.chdir(tmp_path)
        for extra in outs.values():
            assert self.run(tmp_path, "--rules", self.S_RULES, *extra) == 0
        assert self.run(
            tmp_path,
            "--rules",
            self.S_RULES,
            "--changed-only",
            "--schemas-out",
            str(tmp_path / "changed.json"),
        ) == 0
        capsys.readouterr()
        cold = (tmp_path / "cold.json").read_bytes()
        assert (tmp_path / "warm.json").read_bytes() == cold
        assert (tmp_path / "warm2.json").read_bytes() == cold
        assert (tmp_path / "changed.json").read_bytes() == cold


class TestRealTreeSnapshot:
    def test_committed_snapshot_matches_source(self):
        """The committed schemas.json must track the live tree exactly."""
        from pathlib import Path

        import repro

        src = Path(repro.__file__).parents[1]
        repo = src.parent
        committed = repo / "schemas.json"
        if not committed.exists():
            pytest.skip("no committed snapshot in this checkout")
        graph = ProjectGraph.build(repo, collect_files([src]))
        expected = render_snapshot(schemas_snapshot(project_schemas(graph)))
        assert committed.read_text(encoding="utf-8") == expected, (
            "schemas.json is stale — regenerate with "
            "PYTHONPATH=src python -m repro.analysis src --schemas-out "
            "schemas.json (and bump the family's *_SCHEMA_VERSION if the "
            "writer shape changed)"
        )
