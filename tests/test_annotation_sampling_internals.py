"""Internals of Algorithm 1: narrowing, ordering and block rates."""

from repro.annotation.sampling import (
    SampleSelectionConfig,
    _block_annotation_rate,
    _order_types,
    select_sample,
)
from repro.annotation.annotator import AnnotatedPage, PageAnnotator
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer


def page_with(artist=None, extra=""):
    inner = f"<div>{artist}</div>" if artist else "<div>nothing</div>"
    return tidy(f"<body><div id='m'><li>{inner}{extra}</li></div></body>")


class TestTypeOrdering:
    def test_gazetteers_before_predefined(self):
        gazetteer = GazetteerRecognizer("artist", ["A very distinctive name"])
        date = predefined_recognizer("date")
        ordered = _order_types([date, gazetteer], None)
        assert ordered[0] is gazetteer

    def test_selectivity_orders_within_group(self):
        # Eq. 2 damps instances by term frequency: a dictionary of common
        # strings is less selective than one of rare strings.
        sharp = GazetteerRecognizer("venue", ["Orpheum Hall", "Vega Dome"])
        blunt = GazetteerRecognizer("tag", ["new", "sale", "the"])
        common_words = {"new", "sale", "the"}

        def term_frequency(value):
            return 50.0 if value.lower() in common_words else 1.0

        ordered = _order_types([blunt, sharp], term_frequency)
        assert ordered[0] is sharp

    def test_predefined_selectivity_ordering(self):
        isbn = predefined_recognizer("isbn")
        year = predefined_recognizer("year")
        ordered = _order_types([year, isbn], None)
        assert ordered[0] is isbn  # ISBNs are far rarer than years


class TestBlockRates:
    def test_rates_average_over_pages(self):
        pages = []
        annotator = PageAnnotator()
        gazetteer = GazetteerRecognizer("artist", ["Muse"])
        for i in range(4):
            root = page_with("Muse" if i < 2 else None)
            annotated = AnnotatedPage(root=root, index=i)
            annotator.annotate(annotated, gazetteer)
            pages.append(annotated)
        signature_of = {}
        for annotated in pages:
            body = annotated.root.find("body")
            for node in body.iter_elements():
                signature_of[id(node)] = "main-block"
        rates = _block_annotation_rate(pages, signature_of)
        # Two pages with (li+div+text-parent chain) annotations, two without.
        assert 0 < rates["main-block"] <= 3

    def test_empty_pages(self):
        assert _block_annotation_rate([], {}) == {}


class TestNarrowing:
    def test_candidates_shrink_between_rounds(self):
        # 40 pages, only 10 of which carry artist hits: after the artist
        # round only rich pages should still be annotated with dates.
        artists = GazetteerRecognizer("artist", [f"Band {i}" for i in range(10)])
        date = predefined_recognizer("date", type_name="date")
        pages = []
        for i in range(40):
            artist = f"Band {i}" if i < 10 else None
            extra = "<span>May 11, 2010</span>"
            pages.append(page_with(artist, extra))
        run = select_sample(
            "narrowing",
            pages,
            [artists, date],
            config=SampleSelectionConfig(
                sample_size=5, narrowing_factor=0.3, min_candidates=10,
                enforce_alpha=False,
            ),
        )
        assert len(run.sample) == 5
        # The sample is drawn from the artist-bearing pages.
        assert all(page.index < 10 for page in run.sample)

    def test_sample_never_exceeds_page_count(self):
        pages = [page_with("Muse") for __ in range(3)]
        run = select_sample(
            "small",
            pages,
            [GazetteerRecognizer("artist", ["Muse"])],
            config=SampleSelectionConfig(sample_size=20, enforce_alpha=False),
        )
        assert len(run.sample) == 3
