"""RoadRunner optional/field discovery paths in detail."""

from repro.baselines.roadrunner import (
    RField,
    ROpt,
    RPlus,
    RoadRunnerSystem,
    RoadRunnerWrapperInducer,
    tokenize_page,
)
from repro.htmlkit.tidy import tidy
from repro.sod.dsl import parse_sod

SOD = parse_sod("t(a)")


def induce(sources):
    pages = [tokenize_page(tidy(source)) for source in sources]
    return RoadRunnerWrapperInducer().induce(pages)


def kinds(items):
    return [type(item).__name__ for item in items]


class TestOptionalDiscovery:
    def test_optional_on_wrapper_side(self):
        # First page has an extra chunk the second lacks.
        wrapper = induce(
            [
                "<body><div>x</div><p>extra</p><b>tail</b></body>",
                "<body><div>x</div><b>tail</b></body>",
            ]
        )
        assert any(isinstance(item, ROpt) for item in wrapper)

    def test_optional_on_sample_side(self):
        wrapper = induce(
            [
                "<body><div>x</div><b>tail</b></body>",
                "<body><div>x</div><p>extra</p><b>tail</b></body>",
            ]
        )
        assert any(isinstance(item, ROpt) for item in wrapper)

    def test_optional_matched_when_present_again(self):
        # Third page has the optional chunk again: alignment must follow
        # into the optional subexpression, not desync.
        wrapper = induce(
            [
                "<body><div>x</div><p>extra one</p><b>tail</b></body>",
                "<body><div>x</div><b>tail</b></body>",
                "<body><div>x</div><p>extra two</p><b>tail</b></body>",
            ]
        )
        optionals = [item for item in wrapper if isinstance(item, ROpt)]
        assert optionals
        # The optional's text became a field after seeing two variants.
        assert any(
            any(isinstance(sub, RField) for sub in opt.sub) for opt in optionals
        )

    def test_extraction_with_optional_field(self):
        pages = [
            tidy("<body><div>alpha</div><p>note one</p><b>t</b></body>"),
            tidy("<body><div>beta</div><b>t</b></body>"),
            tidy("<body><div>gamma</div><p>note two</p><b>t</b></body>"),
        ]
        output = RoadRunnerSystem().run("s", pages, SOD)
        assert not output.failed
        assert len(output.records) == 3
        values = [
            value
            for record in output.records
            for column in record.columns.values()
            for value in column
        ]
        assert "alpha" in values and "beta" in values and "gamma" in values


class TestIteratorEdges:
    def test_zero_repetitions_tolerated(self):
        # A page with no records at all must still align against a Plus.
        pages = [
            tidy("<body><ul><li><div>a</div></li><li><div>b</div></li>"
                 "<li><div>c</div></li></ul></body>"),
            tidy("<body><ul><li><div>d</div></li></ul></body>"),
            tidy("<body><ul></ul></body>"),
        ]
        output = RoadRunnerSystem().run("s", pages, SOD)
        assert not output.failed
        assert len(output.records) == 4  # a, b, c, d — nothing invented

    def test_nested_iterators(self):
        def book(title, authors):
            spans = "".join(f"<span>{author}</span>" for author in authors)
            return f"<li><div>{title}</div><p>{spans}</p></li>"

        pages = [
            tidy("<body><ul>" + book("t1", ["a1"]) + book("t2", ["a2", "a3"])
                 + "</ul></body>"),
            tidy("<body><ul>" + book("t3", ["a4", "a5", "a6"]) + "</ul></body>"),
        ]
        output = RoadRunnerSystem().run("s", pages, SOD)
        assert not output.failed
        # Record-level Plus discovered; author values extracted somewhere.
        values = [
            value
            for record in output.records
            for column in record.columns.values()
            for value in column
        ]
        assert "a5" in values
