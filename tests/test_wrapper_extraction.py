"""Tests for applying wrappers: record values and instance assembly."""

import pytest

from repro.annotation.annotator import annotate_page
from repro.sod.dsl import parse_sod
from repro.wrapper.extraction import (
    RecordValues,
    assemble_instance,
    extract_objects,
)
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.matching import MatchResult

CONCERT_SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


@pytest.fixture()
def figure3_wrapper(figure3_pages, figure3_recognizers):
    for page in figure3_pages:
        annotate_page(page, figure3_recognizers)
    return (
        generate_wrapper(
            "figure3", figure3_pages, CONCERT_SOD, WrapperConfig(support=2)
        ),
        figure3_pages,
    )


class TestEndToEndExtraction:
    def test_all_four_concerts_extracted(self, figure3_wrapper):
        wrapper, pages = figure3_wrapper
        objects = extract_objects(wrapper, pages, source="figure3")
        assert len(objects) == 4
        artists = [o.values["artist"] for o in objects]
        assert artists == ["Metallica", "Coldplay", "Madonna", "Muse"]

    def test_nested_location_assembled(self, figure3_wrapper):
        wrapper, pages = figure3_wrapper
        first = extract_objects(wrapper, pages)[0]
        assert first.values["location"]["theater"] == "Madison Square Garden"
        assert "237 West 42nd street" in first.values["location"]["address"]

    def test_punctuation_preserved(self, figure3_wrapper):
        wrapper, pages = figure3_wrapper
        first = extract_objects(wrapper, pages)[0]
        assert first.values["date"] == "Monday May 11, 8:00pm"

    def test_provenance_recorded(self, figure3_wrapper):
        wrapper, pages = figure3_wrapper
        objects = extract_objects(wrapper, pages, source="figure3")
        assert objects[0].source == "figure3"
        assert [o.page_index for o in objects] == [0, 1, 2, 2]

    def test_validates_against_sod(self, figure3_wrapper):
        from repro.sod.instances import validate_instance

        wrapper, pages = figure3_wrapper
        for instance in extract_objects(wrapper, pages):
            assert validate_instance(CONCERT_SOD, instance).ok


class TestAssembly:
    def simple_match(self):
        result = MatchResult()
        result.entity_to_slots = {"artist": [0], "date": [1]}
        result.matched = True
        return result

    def test_assemble_flat(self):
        record = RecordValues(fields={0: ["Muse"], 1: ["May 11"]})
        sod = parse_sod("concert(artist, date)")
        instance = assemble_instance(sod, self.simple_match(), record)
        assert instance.values == {"artist": "Muse", "date": "May 11"}

    def test_assemble_merges_slot_group(self):
        result = MatchResult()
        result.entity_to_slots = {"address": [3, 4]}
        record = RecordValues(fields={3: ["4 Penn Plaza"], 4: ["10001"]})
        sod = parse_sod("t(address)")
        instance = assemble_instance(sod, result, record)
        assert instance.values["address"] == "4 Penn Plaza 10001"

    def test_assemble_set_from_iterator(self):
        result = MatchResult()
        result.set_to_iterator = {"authors": 9}
        result.set_inner_slots = {"authors": {"author": [2]}}
        record = RecordValues(
            iterators={
                9: [
                    RecordValues(fields={2: ["Jane Austen"]}),
                    RecordValues(fields={2: ["Fiona Stafford"]}),
                ]
            }
        )
        sod = parse_sod("book(authors:{author}+)")
        instance = assemble_instance(sod, result, record)
        assert instance.values["authors"] == ["Jane Austen", "Fiona Stafford"]

    def test_assemble_set_fallback(self):
        result = MatchResult()
        result.set_fallback_slots = {"authors": {"author": [2]}}
        record = RecordValues(fields={2: ["Solo Author"]})
        sod = parse_sod("book(authors:{author}+)")
        instance = assemble_instance(sod, result, record)
        assert instance.values["authors"] == ["Solo Author"]

    def test_empty_record_yields_none(self):
        record = RecordValues()
        sod = parse_sod("concert(artist, date)")
        assert assemble_instance(sod, self.simple_match(), record) is None

    def test_missing_optional_omitted(self):
        result = MatchResult()
        result.entity_to_slots = {"artist": [0]}
        record = RecordValues(fields={0: ["Muse"]})
        sod = parse_sod("concert(artist, note?)")
        instance = assemble_instance(sod, result, record)
        assert "note" not in instance.values
