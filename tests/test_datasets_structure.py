"""Structural checks on every domain's rendered records.

The paper's outcomes hinge on specific markup phenomena; these tests pin
each domain's renderer to the structure the algorithms expect.
"""

import pytest

from repro.datasets.domains import domain_spec
from repro.datasets.sites import SiteSpec, generate_source
from repro.htmlkit import clean_tree, tidy
from repro.utils.text import normalize_text


def rendered(domain_name, archetype="clean", **kwargs):
    defaults = dict(total_objects=30, seed=("structure", domain_name, archetype))
    defaults.update(kwargs)
    spec = SiteSpec(
        name=f"structure-{domain_name}",
        domain=domain_name,
        archetype=archetype,
        **defaults,
    )
    domain = domain_spec(domain_name)
    source = generate_source(spec, domain)
    pages = [clean_tree(tidy(raw)) for raw in source.pages]
    return source, pages


class TestConcertStructure:
    def test_location_rendered_as_span_sequence(self):
        source, pages = rendered("concerts")
        gold_with_address = next(
            g for g in source.gold if "address" in g.values["location"]
        )
        page = pages[gold_with_address.page_index]
        theater = gold_with_address.values["location"]["theater"]
        spans = [
            span
            for span in page.find_all("span")
            if normalize_text(span.text_content()) == normalize_text(theater)
        ]
        assert spans, "theater must sit in its own span"

    def test_city_state_are_constant_template_text(self):
        __, pages = rendered("concerts")
        text = pages[0].text_content()
        assert "New York City" in text

    def test_address_spans_follow_theater(self):
        source, pages = rendered("concerts")
        gold = next(g for g in source.gold if "address" in g.values["location"])
        street = gold.values["location"]["address"].rsplit(" ", 1)[0]
        page_text = normalize_text(pages[gold.page_index].text_content())
        assert normalize_text(street) in page_text


class TestBookStructure:
    def test_authors_in_classed_spans(self):
        source, pages = rendered("books")
        page = pages[0]
        author_spans = page.find_all(
            "span", predicate=lambda e: e.attributes.get("class") == "author"
        )
        assert author_spans
        gold_authors = {
            normalize_text(author)
            for gold in source.gold
            if gold.page_index == 0
            for author in gold.values["authors"]
        }
        rendered_authors = {
            normalize_text(span.text_content()) for span in author_spans
        }
        assert rendered_authors <= gold_authors | rendered_authors
        assert gold_authors & rendered_authors

    def test_multi_author_books_render_multiple_spans(self):
        source, pages = rendered("books")
        multi = next(g for g in source.gold if len(g.values["authors"]) >= 2)
        page = pages[multi.page_index]
        names = {
            normalize_text(span.text_content())
            for span in page.find_all(
                "span", predicate=lambda e: e.attributes.get("class") == "author"
            )
        }
        for author in multi.values["authors"]:
            assert normalize_text(author) in names


class TestPublicationStructure:
    def test_titles_present_per_record(self):
        source, pages = rendered("publications", constant_record_count=6)
        for gold in source.gold[:6]:
            page_text = normalize_text(pages[gold.page_index].text_content())
            assert normalize_text(gold.values["title"]) in page_text


class TestCarStructure:
    def test_model_is_separate_noise_field(self):
        # The model name is rendered but is NOT part of the gold brand; the
        # renderer must keep it in its own element so clean extraction of
        # the brand is structurally possible.
        source, pages = rendered("cars")
        gold = source.gold[0]
        page = pages[gold.page_index]
        brand = normalize_text(gold.values["brand"])
        containers = [
            element
            for element in page.iter_elements()
            if brand in normalize_text(element.own_text())
            and element.tag in ("div", "p")
        ]
        assert containers
        # The brand's own container text is the brand (plus label), not
        # brand+model+price concatenated.
        assert all(
            normalize_text(gold.values["price"])
            not in normalize_text(container.own_text())
            for container in containers
        )


class TestArchetypePhenomena:
    @pytest.mark.parametrize(
        "domain_name", ["concerts", "albums", "books", "publications", "cars"]
    )
    def test_partial_inline_renders_joined_text(self, domain_name):
        source, pages = rendered(domain_name, archetype="partial_inline")
        assert source.gold
        # Some text node holds two attributes' values together.
        gold = source.gold[0]
        flat = gold.normalized_flat()
        page_nodes = [
            normalize_text(node.text_content())
            for node in pages[gold.page_index].iter_text_nodes()
        ]
        joined_nodes = [
            text
            for text in page_nodes
            if sum(
                1
                for values in flat.values()
                if any(value and value in text for value in values)
            )
            >= 2
        ]
        assert joined_nodes, domain_name
