"""Tests for text normalization helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.text import collapse_whitespace, normalize_text, tokenize_words


class TestCollapseWhitespace:
    def test_collapses_runs(self):
        assert collapse_whitespace("a  b\t\nc") == "a b c"

    def test_strips_ends(self):
        assert collapse_whitespace("  hello  ") == "hello"

    def test_empty(self):
        assert collapse_whitespace("   ") == ""


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Hello World") == "hello world"

    def test_punctuation_insensitive(self):
        assert normalize_text("January 14, 1997") == normalize_text("january 14 1997")

    def test_currency_symbols_dropped(self):
        assert normalize_text("$12.99") == normalize_text("12.99")

    def test_time_separators(self):
        assert normalize_text("8:00pm") == normalize_text("8 00pm")

    def test_inner_word_punctuation_kept(self):
        # B.B stays one token: dots inside words are part of the value.
        assert normalize_text("B.B King") == "b.b king"

    def test_idempotent(self):
        once = normalize_text("The  Quick, Brown Fox!")
        assert normalize_text(once) == once

    @given(st.text(max_size=200))
    def test_idempotent_property(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(st.text(max_size=200))
    def test_always_lowercase(self, text):
        assert normalize_text(text) == normalize_text(text).lower()


class TestTokenizeWords:
    def test_splits_on_punctuation(self):
        assert tokenize_words("May 11, 8:00pm") == ["May", "11", "8", "00pm"]

    def test_keeps_inner_apostrophes_and_dots(self):
        assert tokenize_words("O'Brien B.B") == ["O'Brien", "B.B"]

    def test_empty(self):
        assert tokenize_words("...!!!") == []

    @given(st.text(max_size=200))
    def test_tokens_are_nonempty(self, text):
        assert all(token for token in tokenize_words(text))
