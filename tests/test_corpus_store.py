"""Tests for the indexed sentence corpus."""

from repro.corpus.store import Corpus


class TestCorpus:
    def test_count_phrase_exact(self):
        corpus = Corpus(["The band played loud.", "Another band arrived."])
        assert corpus.count_phrase("band") == 2

    def test_count_phrase_case_insensitive(self):
        corpus = Corpus(["Metallica rocks."])
        assert corpus.count_phrase("metallica") == 1
        assert corpus.count_phrase("METALLICA") == 1

    def test_multiword_phrase(self):
        corpus = Corpus(["I saw Madison Square Garden.", "Madison had a garden."])
        assert corpus.count_phrase("Madison Square Garden") == 1

    def test_plural_bridging(self):
        # Query "band" finds sentences mentioning only "bands".
        corpus = Corpus(["Bands such as Muse are widely known."])
        assert corpus.sentences_with_phrase("Band") == [
            "Bands such as Muse are widely known."
        ]

    def test_no_false_positive_on_word_subset(self):
        corpus = Corpus(["square garden here"])
        assert corpus.count_phrase("garden square") == 0  # order matters

    def test_empty_phrase(self):
        corpus = Corpus(["something"])
        assert corpus.count_phrase("") == 0
        assert corpus.count_phrase("   ") == 0

    def test_empty_corpus(self):
        corpus = Corpus()
        assert len(corpus) == 0
        assert corpus.count_phrase("x") == 0

    def test_blank_sentences_skipped(self):
        corpus = Corpus(["", "   ", "real sentence"])
        assert len(corpus) == 1

    def test_sentences_iteration(self):
        sentences = ["a b c", "d e f"]
        corpus = Corpus(sentences)
        assert list(corpus.sentences()) == sentences

    def test_whitespace_collapsed(self):
        corpus = Corpus(["two   spaces   here"])
        assert corpus.count_phrase("two spaces") == 1

    def test_candidate_ids_superset_of_hits(self):
        corpus = Corpus(["alpha beta", "beta gamma", "alpha gamma"])
        ids = corpus.candidate_sentence_ids("alpha beta")
        assert 0 in ids
        # candidate filter may include non-hits, substring check prunes them
        assert corpus.count_phrase("alpha beta") == 1
