"""Edge cases of the render-model substrate."""

from repro.htmlkit.tidy import tidy
from repro.vision.layout import LayoutEngine
from repro.vision.segmentation import (
    main_content_block,
    segment_page,
    select_central_block,
)


class TestLayoutEdges:
    def test_empty_body(self):
        root = tidy("<body></body>")
        layout = LayoutEngine().layout(root)
        assert layout.canvas.height > 0

    def test_boxes_inside_canvas_horizontally(self):
        root = tidy(
            "<body><div>" + "text " * 30 + "</div><p><span>inline</span></p></body>"
        )
        layout = LayoutEngine().layout(root)
        for element in layout.elements():
            rect = layout.rect_of(element)
            assert rect.x >= -1e-6
            assert rect.right <= layout.canvas.width + 1e-6

    def test_two_side_navs(self):
        root = tidy(
            "<body><nav><a>a</a></nav><aside><p>ads</p></aside>"
            "<div>" + "content " * 40 + "</div></body>"
        )
        layout = LayoutEngine().layout(root)
        nav = root.find("nav")
        aside = root.find("aside")
        div = root.find("div")
        # Both side regions are narrower than the content.
        assert layout.rect_of(nav).width < layout.rect_of(div).width
        assert layout.rect_of(aside).width < layout.rect_of(div).width
        # And they do not overlap each other.
        assert (
            layout.rect_of(nav).intersection_area(layout.rect_of(aside)) < 1e-6
        )

    def test_deterministic(self):
        source = "<body><div><p>a</p><p>bb</p></div></body>"
        one = LayoutEngine().layout(tidy(source))
        two = LayoutEngine().layout(tidy(source))
        assert one.canvas == two.canvas


class TestSegmentationEdges:
    def test_page_without_block_children(self):
        tree = segment_page(tidy("<body>loose text only</body>"))
        assert select_central_block(tree).element.tag == "body"

    def test_nested_blocks_both_present(self):
        tree = segment_page(
            tidy(
                "<body><div id='outer'>"
                + "<div id='inner'>" + "content " * 30 + "</div>"
                + "</div></body>"
            )
        )
        ids = {
            block.element.attributes.get("id")
            for block in tree.all_blocks()
            if block.element.attributes.get("id")
        }
        assert {"outer", "inner"} <= ids

    def test_vote_breaks_cross_page_disagreement(self):
        # Two page variants; the majority signature must win.
        common = (
            "<body><header><h1>x</h1></header>"
            "<div id='main' class='c'>" + "content " * 40 + "</div></body>"
        )
        odd = (
            "<body><div id='other' class='d'>" + "stuff " * 40 + "</div></body>"
        )
        trees = [segment_page(tidy(common)) for __ in range(3)]
        trees.append(segment_page(tidy(odd)))
        signature = main_content_block(trees)
        assert "id=main" in signature

    def test_small_block_elements_still_segment(self):
        # Block elements span their parent's width, so even a one-word div
        # has visual area and appears in the block tree.
        tree = segment_page(
            tidy("<body><div id='m'>" + "content " * 40 + "<div>x</div></div></body>")
        )
        inner = [
            block
            for block in tree.all_blocks()
            if block.element.text_content() == "x"
        ]
        assert len(inner) == 1
        # But it never wins the central-block vote against its parent.
        winner = select_central_block(tree)
        assert winner.element.attributes.get("id") == "m"
