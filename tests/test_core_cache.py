"""The preprocessing cache: correctness, isolation, reuse across passes."""

import pytest

import repro.core.cache as cache_module
from repro.core import ObjectRunner, PreprocessCache, RunParams
from repro.datasets import domain_spec, generate_source
from repro.datasets.knowledge import completion_entries
from repro.datasets.sites import SiteSpec
from repro.htmlkit.serialize import to_html
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.registry import RecognizerRegistry

PAGE = "<html><body><div><p>hello <b>world</b></p></div></body></html>"
OTHER = "<html><body><ul><li>item</li></ul></body></html>"


class TestPreprocessCache:
    def test_hit_and_miss_accounting(self):
        cache = PreprocessCache()
        first = cache.clean_pages([PAGE, OTHER, PAGE])
        assert first.misses == 2
        assert first.hits == 1
        second = cache.clean_pages([PAGE, OTHER])
        assert second.misses == 0
        assert second.hits == 2
        assert cache.stats() == {
            "hits": 3, "misses": 2, "races": 0, "entries": 2,
        }

    def test_returns_equal_trees(self):
        cache = PreprocessCache()
        one = cache.clean_page(PAGE)
        two = cache.clean_page(PAGE)
        assert to_html(one) == to_html(two)

    def test_returned_trees_are_isolated_copies(self):
        cache = PreprocessCache()
        one = cache.clean_page(PAGE)
        two = cache.clean_page(PAGE)
        assert one is not two
        # Mutating one copy (as the annotation stage does) must not leak
        # into subsequently served copies.
        for node in one.iter_text_nodes():
            node.annotations.add("artist")
        three = cache.clean_page(PAGE)
        assert all(not node.annotations for node in three.iter_text_nodes())

    def test_lru_eviction(self):
        cache = PreprocessCache(max_entries=1)
        cache.clean_page(PAGE)
        cache.clean_page(OTHER)  # evicts PAGE
        assert len(cache) == 1
        cache.clean_page(PAGE)
        assert cache.misses == 3

    def test_clear(self):
        cache = PreprocessCache()
        cache.clean_page(PAGE)
        cache.clear()
        assert len(cache) == 0
        cache.clean_page(PAGE)
        assert cache.misses == 2

    def test_same_key_race_counts_once(self, monkeypatch):
        """Regression: two threads computing the same page used to both
        count a miss.  The loser must count a ``race`` instead, and serve
        the winner's tree."""
        import threading

        barrier = threading.Barrier(2, timeout=10)
        real_tidy = cache_module.tidy

        def rendezvous_tidy(raw):
            # Hold both threads inside the compute window so each passes
            # the first lock before either reaches the second.
            barrier.wait()
            return real_tidy(raw)

        monkeypatch.setattr(cache_module, "tidy", rendezvous_tidy)
        cache = PreprocessCache()
        trees = []

        def request():
            trees.append(cache.clean_page(PAGE))

        threads = [threading.Thread(target=request) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats() == {
            "hits": 0, "misses": 1, "races": 1, "entries": 1,
        }
        assert to_html(trees[0]) == to_html(trees[1])


class TestRunnerCacheReuse:
    @pytest.fixture(scope="class")
    def albums_source(self):
        domain = domain_spec("albums")
        spec = SiteSpec(
            name="cache-albums",
            domain="albums",
            archetype="clean",
            total_objects=40,
            seed=("cache", "albums"),
        )
        return domain, generate_source(spec, domain)

    def _enrichment_runner(self, domain, source, passes):
        completion = completion_entries(domain, source.gold, coverage=0.15)
        registry = RecognizerRegistry()
        registry.register(
            GazetteerRecognizer("artist", completion.get("artist", {}))
        )
        registry.register(
            GazetteerRecognizer("title", completion.get("title", {}))
        )
        return ObjectRunner(
            domain.sod,
            registry=registry,
            params=RunParams(
                enrich_dictionaries=True, enrichment_passes=passes
            ),
        )

    def test_enrichment_passes_reuse_cached_preprocessing(
        self, albums_source, monkeypatch
    ):
        """Regression: pass 2+ must not re-tidy the raw pages."""
        domain, source = albums_source
        tidy_calls = []
        real_tidy = cache_module.tidy

        def counting_tidy(raw):
            tidy_calls.append(1)
            return real_tidy(raw)

        monkeypatch.setattr(cache_module, "tidy", counting_tidy)
        runner = self._enrichment_runner(domain, source, passes=3)
        result = runner.run_source("cache-albums", source.pages)
        assert result.ok
        # Every page tidied exactly once despite three full passes.
        assert len(tidy_calls) == len(source.pages)
        assert runner.cache.hits >= 2 * len(source.pages)

    def test_repeated_runs_share_the_runner_cache(self, albums_source):
        domain, source = albums_source
        runner = self._enrichment_runner(domain, source, passes=1)
        runner.run_source("cache-albums", source.pages)
        misses_after_first = runner.cache.misses
        runner.run_source("cache-albums", source.pages)
        assert runner.cache.misses == misses_after_first

    def test_injected_cache_shared_across_runners(self, albums_source):
        domain, source = albums_source
        shared = PreprocessCache()
        first = self._enrichment_runner(domain, source, passes=1)
        first.cache = shared
        first.run_source("cache-albums", source.pages)
        second = ObjectRunner(
            domain.sod,
            registry=RecognizerRegistry(),
            params=RunParams(),
            cache=shared,
        )
        pages = second.prepare_pages(source.pages)
        assert len(pages) == len(source.pages)
        assert shared.misses == len(source.pages)

    def test_enrichment_results_unchanged_by_caching(self, albums_source):
        # The cached trees must be byte-equivalent to freshly tidied ones:
        # a run with a cold cache and one with a warm cache agree exactly.
        domain, source = albums_source
        cold = self._enrichment_runner(domain, source, passes=2).run_source(
            "cache-albums", source.pages
        )
        warm_runner = self._enrichment_runner(domain, source, passes=2)
        warm_runner.prepare_pages(source.pages)  # pre-warm
        warm = warm_runner.run_source("cache-albums", source.pages)
        assert cold.ok and warm.ok
        assert [o.values for o in cold.objects] == [
            o.values for o in warm.objects
        ]
