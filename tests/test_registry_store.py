"""Tests for the content-addressed wrapper registry store."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.annotation.annotator import annotate_page
from repro.errors import RegistryError
from repro.htmlkit import pages_fingerprint
from repro.registry import (
    KIND_DISCARD,
    KIND_WRAPPER,
    REGISTRY_SCHEMA_VERSION,
    RegistryEntry,
    StagedRegistryView,
    StoredDiscard,
    WrapperRegistry,
    apply_staged_views,
    signature_for,
    write_json_atomic,
)
from repro.sod.dsl import parse_sod
from repro.wrapper.generate import WrapperConfig, generate_wrapper
from repro.wrapper.serialize import wrapper_to_dict

SOD = parse_sod(
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)


@pytest.fixture()
def induced(figure3_pages, figure3_recognizers):
    """A real wrapper plus the fingerprint of the pages it came from."""
    for page in figure3_pages:
        annotate_page(page, figure3_recognizers)
    wrapper = generate_wrapper(
        "figure3", figure3_pages, SOD, WrapperConfig(support=2)
    )
    return wrapper, pages_fingerprint(figure3_pages)


def registry_bytes(root):
    """Every registry file's bytes, keyed by relative path."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


class TestSignature:
    def test_sod_spelling_invariant(self):
        flat = parse_sod(
            "concert(artist, date<kind=predefined>, "
            "location(theater, address<kind=predefined>?))"
        )
        spaced = parse_sod(
            "concert( artist , date<kind=predefined> , "
            "location( theater , address<kind=predefined>? ) )"
        )
        assert signature_for(flat, "fp") == signature_for(spaced, "fp")

    def test_fingerprint_changes_signature(self):
        assert signature_for(SOD, "fp-a") != signature_for(SOD, "fp-b")


class TestRoundTrip:
    def test_serialize_store_load_serialize_is_byte_stable(
        self, tmp_path, induced
    ):
        wrapper, fingerprint = induced
        before = json.dumps(wrapper_to_dict(wrapper), sort_keys=True)
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        loaded = WrapperRegistry(tmp_path).lookup(SOD, fingerprint)
        after = json.dumps(wrapper_to_dict(loaded), sort_keys=True)
        assert after == before

    def test_lookup_counts_hits_and_misses(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        assert registry.lookup(SOD, fingerprint) is None
        registry.put(SOD, fingerprint, wrapper)
        assert registry.lookup(SOD, fingerprint) is not None
        stats = registry.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_reopened_registry_sees_entries(self, tmp_path, induced):
        wrapper, fingerprint = induced
        WrapperRegistry(tmp_path).put(SOD, fingerprint, wrapper)
        reopened = WrapperRegistry(tmp_path)
        assert reopened.lookup(SOD, fingerprint) is not None


class TestDiskLayout:
    def test_no_temp_files_left_behind(self, tmp_path, induced):
        wrapper, fingerprint = induced
        WrapperRegistry(tmp_path).put(SOD, fingerprint, wrapper)
        assert not sorted(Path(tmp_path).rglob("*.tmp"))

    def test_index_is_sorted_and_schema_versioned(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        registry.put(SOD, "zz-other-template", wrapper)
        registry.put(SOD, "aa-other-template", wrapper)
        index = json.loads(registry.index_path.read_text())
        assert index["schema_version"] == REGISTRY_SCHEMA_VERSION
        signatures = list(index["entries"])
        assert signatures == sorted(signatures)

    def test_repeat_store_keeps_incumbent(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        entry_bytes = registry_bytes(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        assert registry.stats()["races"] == 1
        assert registry_bytes(tmp_path) == entry_bytes

    def test_smaller_source_id_wins_in_either_order(self, tmp_path, induced):
        # Replica sources can induce under the same signature; the
        # canonical rule keeps the lexicographically smaller source id,
        # so the final bytes do not depend on encounter order.
        wrapper, fingerprint = induced
        first = replace(wrapper, source="bbb-replica")
        second = replace(wrapper, source="aaa-replica")
        one = WrapperRegistry(tmp_path / "one")
        one.put(SOD, fingerprint, first)
        one.put(SOD, fingerprint, second)
        two = WrapperRegistry(tmp_path / "two")
        two.put(SOD, fingerprint, second)
        two.put(SOD, fingerprint, first)
        assert registry_bytes(tmp_path / "one") == registry_bytes(
            tmp_path / "two"
        )
        (__, row), = one.index_rows()
        assert row["source"] == "aaa-replica"
        assert one.stats()["stores"] == 1
        assert one.stats()["races"] == 1

    def test_write_json_atomic_is_canonical(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"b": 1, "a": 2})
        write_json_atomic(tmp_path / "doc2.json", {"a": 2, "b": 1})
        assert path.read_bytes() == (tmp_path / "doc2.json").read_bytes()
        assert path.read_text().endswith("\n")


class TestDemoteVerifyGc:
    def test_demote_removes_entry(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        signature = registry.put(SOD, fingerprint, wrapper)
        assert registry.demote(signature)
        assert registry.lookup(SOD, fingerprint) is None
        assert not registry.entry_path(signature).exists()
        assert registry.stats()["demotions"] == 1
        assert not registry.demote(signature)

    def test_verify_reports_missing_entry_and_orphan(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        signature = registry.put(SOD, fingerprint, wrapper)
        registry.entry_path(signature).rename(
            registry.entry_path("0" * 64)
        )
        problems = registry.verify()
        assert any("no entry file" in p for p in problems)
        assert any("orphan" in p for p in problems)

    def test_gc_removes_orphans_only(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        signature = registry.put(SOD, fingerprint, wrapper)
        orphan = registry.entry_path("f" * 64)
        orphan.write_text("{}")
        removed = registry.gc()
        assert removed == [orphan.name]
        assert registry.entry_path(signature).exists()
        assert registry.verify() == []

    def test_gc_dry_run_previews_without_deleting(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        orphans = [
            registry.entry_path(letter * 64) for letter in ("a", "b", "c")
        ]
        for orphan in orphans:
            orphan.write_text("{}")
        preview = registry.gc(dry_run=True)
        assert preview == sorted(orphan.name for orphan in orphans)
        assert all(orphan.exists() for orphan in orphans)
        # The real run removes exactly the previewed set.
        assert registry.gc() == preview
        assert not any(orphan.exists() for orphan in orphans)

    def test_corrupt_entry_fails_verification(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        signature = registry.put(SOD, fingerprint, wrapper)
        registry.entry_path(signature).write_text("{not json")
        assert registry.verify()
        with pytest.raises(RegistryError):
            registry.get(signature)


class TestEntrySchema:
    def test_rejects_wrong_schema_version(self):
        with pytest.raises(RegistryError):
            RegistryEntry.from_dict({"schema_version": 99})

    def test_rejects_non_object(self):
        with pytest.raises(RegistryError):
            RegistryEntry.from_dict(["nope"])

    def test_rejects_missing_field(self):
        with pytest.raises(RegistryError):
            RegistryEntry.from_dict(
                {"schema_version": REGISTRY_SCHEMA_VERSION, "signature": "x"}
            )


class TestMerge:
    def test_shards_merge_counting_conflicts(self, tmp_path, induced):
        wrapper, fingerprint = induced
        shard_a = WrapperRegistry(tmp_path / "a")
        shard_b = WrapperRegistry(tmp_path / "b")
        shard_a.put(SOD, fingerprint, wrapper)
        shard_b.put(SOD, fingerprint, wrapper)
        shard_b.put(SOD, "only-in-b", wrapper)
        merged = WrapperRegistry.merged(tmp_path / "m", [shard_a, shard_b])
        assert len(merged.index_rows()) == 2
        assert merged.stats()["races"] == 1

    def test_merge_is_part_order_independent(self, tmp_path, induced):
        # Two shards whose sources collided on one signature: whichever
        # part order the merge sees, the canonical winner (smaller
        # source id) prevails and the merged bytes are identical.
        wrapper, fingerprint = induced
        shard_a = WrapperRegistry(tmp_path / "a")
        shard_b = WrapperRegistry(tmp_path / "b")
        shard_a.put(SOD, fingerprint, replace(wrapper, source="zz-late"))
        shard_b.put(SOD, fingerprint, replace(wrapper, source="aa-early"))
        WrapperRegistry.merged(tmp_path / "ab", [shard_a, shard_b])
        WrapperRegistry.merged(tmp_path / "ba", [shard_b, shard_a])
        assert registry_bytes(tmp_path / "ab") == registry_bytes(
            tmp_path / "ba"
        )
        merged = WrapperRegistry(tmp_path / "ab")
        (__, row), = merged.index_rows()
        assert row["source"] == "aa-early"

    def test_merge_bytes_equal_serial_construction(self, tmp_path, induced):
        wrapper, fingerprint = induced
        shard_a = WrapperRegistry(tmp_path / "a")
        shard_b = WrapperRegistry(tmp_path / "b")
        shard_a.put(SOD, fingerprint, wrapper)
        shard_b.put(SOD, "only-in-b", wrapper)
        WrapperRegistry.merged(tmp_path / "m", [shard_a, shard_b])
        serial = WrapperRegistry(tmp_path / "s")
        serial.put(SOD, fingerprint, wrapper)
        serial.put(SOD, "only-in-b", wrapper)
        assert registry_bytes(tmp_path / "m") == registry_bytes(tmp_path / "s")


class TestStagedView:
    def test_own_writes_visible_others_deferred(self, tmp_path, induced):
        wrapper, fingerprint = induced
        base = WrapperRegistry(tmp_path)
        writer = StagedRegistryView(base)
        reader = StagedRegistryView(base)
        writer.put(SOD, fingerprint, wrapper)
        assert writer.lookup(SOD, fingerprint) is not None
        assert reader.lookup(SOD, fingerprint) is None
        assert base.lookup(SOD, fingerprint) is None

    def test_apply_in_input_order_is_deterministic(self, tmp_path, induced):
        wrapper, fingerprint = induced
        base = WrapperRegistry(tmp_path / "one")
        views = [StagedRegistryView(base), StagedRegistryView(base)]
        views[0].put(SOD, fingerprint, wrapper)
        views[1].put(SOD, fingerprint, wrapper)
        apply_staged_views(base, views)
        other = WrapperRegistry(tmp_path / "two")
        swapped = [StagedRegistryView(other), StagedRegistryView(other)]
        swapped[1].put(SOD, fingerprint, wrapper)
        swapped[0].put(SOD, fingerprint, wrapper)
        apply_staged_views(other, swapped)
        assert registry_bytes(tmp_path / "one") == registry_bytes(tmp_path / "two")
        assert base.stats()["stores"] == 1
        assert base.stats()["races"] == 1

    def test_staged_demotion_applies_before_puts(self, tmp_path, induced):
        wrapper, fingerprint = induced
        base = WrapperRegistry(tmp_path)
        signature = base.put(SOD, fingerprint, wrapper)
        view = StagedRegistryView(base)
        view.demote(signature)
        assert view.lookup(SOD, fingerprint) is None
        apply_staged_views(base, [view])
        assert base.lookup(SOD, fingerprint) is None


class TestDiscardTombstones:
    def test_put_discard_roundtrips_as_hit(self, tmp_path):
        registry = WrapperRegistry(tmp_path)
        registry.put_discard(
            SOD, "fp", source="doomed", stage="wrapper", reason="no match"
        )
        stored = WrapperRegistry(tmp_path).lookup(SOD, "fp")
        assert isinstance(stored, StoredDiscard)
        assert stored == StoredDiscard(
            source="doomed", stage="wrapper", reason="no match"
        )

    def test_tombstone_lookup_counts_a_hit(self, tmp_path):
        registry = WrapperRegistry(tmp_path)
        registry.put_discard(SOD, "fp", source="s", stage="wrapper", reason="r")
        registry.lookup(SOD, "fp")
        stats = registry.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["stores"] == 1

    def test_index_rows_carry_kind(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        registry.put_discard(SOD, "fp", source="s", stage="wrapper", reason="r")
        kinds = sorted(row["kind"] for __, row in registry.index_rows())
        assert kinds == [KIND_DISCARD, KIND_WRAPPER]

    def test_wrapper_beats_tombstone_across_kinds(self, tmp_path, induced):
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put(SOD, fingerprint, wrapper)
        registry.put_discard(
            SOD, fingerprint, source="s", stage="wrapper", reason="r"
        )
        assert registry.stats() == {
            "hits": 0, "misses": 0, "stores": 1, "races": 1, "demotions": 0
        }
        assert not isinstance(registry.lookup(SOD, fingerprint), StoredDiscard)

    def test_wrapper_shadows_earlier_tombstone(self, tmp_path, induced):
        # A successful induction from any source replaces a discard
        # tombstone for the same signature — even one whose source id
        # sorts first — so warm runs extract instead of replaying the
        # discard.
        wrapper, fingerprint = induced
        registry = WrapperRegistry(tmp_path)
        registry.put_discard(
            SOD, fingerprint, source="aaa", stage="wrapper", reason="r"
        )
        registry.put(SOD, fingerprint, wrapper)
        assert registry.stats()["races"] == 1
        assert not isinstance(registry.lookup(SOD, fingerprint), StoredDiscard)
        (__, row), = registry.index_rows()
        assert row["kind"] == KIND_WRAPPER

    def test_discard_entry_schema_is_validated(self):
        entry = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "signature": "sig",
            "kind": "discard",
            "sod": "t(a)",
            "fingerprint": "fp",
            "source": "s",
            "wrapper": None,
            "discard": None,
        }
        with pytest.raises(RegistryError, match="no discard block"):
            RegistryEntry.from_dict(entry)
        entry["kind"] = "nonsense"
        with pytest.raises(RegistryError, match="unknown entry kind"):
            RegistryEntry.from_dict(entry)

    def test_staged_view_buffers_and_applies_tombstones(self, tmp_path):
        base = WrapperRegistry(tmp_path)
        view = StagedRegistryView(base)
        view.put_discard(SOD, "fp", source="s", stage="wrapper", reason="r")
        assert isinstance(view.lookup(SOD, "fp"), StoredDiscard)
        assert base.lookup(SOD, "fp") is None
        apply_staged_views(base, [view])
        assert isinstance(
            WrapperRegistry(tmp_path).lookup(SOD, "fp"), StoredDiscard
        )

    def test_merged_preserves_tombstones_and_kind_rows(self, tmp_path):
        shard = WrapperRegistry(tmp_path / "shard")
        shard.put_discard(SOD, "fp", source="s", stage="wrapper", reason="r")
        combined = WrapperRegistry.merged(tmp_path / "merged", [shard])
        assert isinstance(combined.lookup(SOD, "fp"), StoredDiscard)
        assert registry_bytes(tmp_path / "shard") == registry_bytes(
            tmp_path / "merged"
        )
