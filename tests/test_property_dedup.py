"""Property tests on de-duplication invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dedup import DedupConfig, deduplicate
from repro.sod.instances import ObjectInstance

_titles = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])
_prices = st.sampled_from(["$1", "$2", "$3"])


@st.composite
def _objects(draw):
    count = draw(st.integers(0, 12))
    return [
        ObjectInstance(
            values={"title": draw(_titles), "price": draw(_prices)},
            source=draw(st.sampled_from(["a", "b"])),
        )
        for __ in range(count)
    ]


CONFIG = DedupConfig(key_attributes=("title",))


class TestDedupInvariants:
    @settings(max_examples=150, deadline=None)
    @given(_objects())
    def test_kept_plus_merged_is_input(self, objects):
        result = deduplicate(objects, CONFIG)
        assert result.kept + result.merged == len(objects)

    @settings(max_examples=150, deadline=None)
    @given(_objects())
    def test_kept_objects_are_input_objects(self, objects):
        result = deduplicate(objects, CONFIG)
        input_ids = {id(instance) for instance in objects}
        assert all(id(instance) in input_ids for instance in result.objects)

    @settings(max_examples=150, deadline=None)
    @given(_objects())
    def test_idempotent(self, objects):
        once = deduplicate(objects, CONFIG)
        twice = deduplicate(once.objects, CONFIG)
        assert twice.merged == 0
        assert [o.values for o in twice.objects] == [o.values for o in once.objects]

    @settings(max_examples=150, deadline=None)
    @given(_objects())
    def test_groups_partition_input(self, objects):
        result = deduplicate(objects, CONFIG)
        grouped = [instance for group in result.groups for instance in group]
        assert sorted(id(i) for i in grouped) == sorted(id(i) for i in objects)

    @settings(max_examples=100, deadline=None)
    @given(_objects())
    def test_no_two_kept_duplicates(self, objects):
        result = deduplicate(objects, CONFIG)
        keys = [
            (
                tuple(sorted(instance.normalized_flat().get("title", []))),
                tuple(sorted(instance.normalized_flat().get("price", []))),
            )
            for instance in result.objects
        ]
        assert len(keys) == len(set(keys))
