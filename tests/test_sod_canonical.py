"""Tests for SOD canonicalization (paper Figure 4)."""

from repro.sod.canonical import atoms_at_tuple_level, canonicalize, nested_sets
from repro.sod.dsl import parse_sod
from repro.sod.types import EntityType, SetType, TupleType


class TestCanonicalize:
    def test_figure4_merge(self):
        # {t1, {t2}, {t31, t32}} -> {t1, t31, t32, {t2}}
        sod = parse_sod("root(t1, s:{t2}*, inner(t31, t32))")
        canonical = canonicalize(sod)
        names = [c.name for c in canonical.components]
        assert set(names) == {"t1", "s", "t31", "t32"}
        atoms = [c for c in canonical.components if isinstance(c, EntityType)]
        assert [a.name for a in atoms] == ["t1", "t31", "t32"]

    def test_deep_tuple_nesting_flattens(self):
        sod = parse_sod("a(x, b(y, c(z)))")
        canonical = canonicalize(sod)
        assert [c.name for c in canonical.components] == ["x", "y", "z"]

    def test_set_boundary_preserved(self):
        sod = parse_sod("root(s:{inner(a, b)}+)")
        canonical = canonicalize(sod)
        set_type = canonical.components[0]
        assert isinstance(set_type, SetType)
        assert isinstance(set_type.inner, TupleType)

    def test_tuple_inside_set_canonicalized(self):
        sod = parse_sod("root(s:{outer(a, deeper(b))}+)")
        canonical = canonicalize(sod)
        inner = canonical.components[0].inner
        assert [c.name for c in inner.components] == ["a", "b"]

    def test_entity_unchanged(self):
        entity = EntityType("x")
        assert canonicalize(entity) is entity

    def test_input_not_mutated(self):
        sod = parse_sod("a(x, b(y))")
        before = str(sod)
        canonicalize(sod)
        assert str(sod) == before

    def test_concert_sod(self):
        sod = parse_sod(
            "concert(artist, date<kind=predefined>, location(theater, address?))"
        )
        canonical = canonicalize(sod)
        assert [c.name for c in canonical.components] == [
            "artist",
            "date",
            "theater",
            "address",
        ]

    def test_idempotent(self):
        sod = parse_sod("a(x, b(y, s:{z}*))")
        once = canonicalize(sod)
        assert str(canonicalize(once)) == str(once)


class TestHelpers:
    def test_atoms_at_tuple_level(self):
        sod = parse_sod("book(title, price, authors:{author}+)")
        assert [a.name for a in atoms_at_tuple_level(sod)] == ["title", "price"]

    def test_atoms_for_entity_sod(self):
        assert [a.name for a in atoms_at_tuple_level(EntityType("x"))] == ["x"]

    def test_nested_sets(self):
        sod = parse_sod("book(title, authors:{author}+, tags:{tag}*)")
        assert [s.name for s in nested_sets(sod)] == ["authors", "tags"]

    def test_nested_sets_of_set_sod(self):
        sod = parse_sod("t(s:{x}+)")
        set_type = sod.components[0]
        assert nested_sets(set_type) == [set_type]
