"""Tests for canonical-SOD / template matching."""

from repro.sod.dsl import parse_sod
from repro.wrapper.matching import match_sod, partially_matchable
from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    Template,
)


def slot(slot_id, annotation=None, count=5):
    field = FieldSlot(slot_id=slot_id)
    for __ in range(count):
        field.record_annotations({annotation} if annotation else set())
    return field


def concert_template():
    fields = [
        slot(0, "artist"),
        slot(1, "date"),
        slot(2, "theater"),
        slot(3, "address"),
        slot(4, "address"),
    ]
    return Template(roots=[ElementTemplate(tag="li", children=list(fields))])


def book_template():
    author = slot(3, "author")
    iterator = IteratorSlot(
        slot_id=10,
        unit=ElementTemplate(tag="span", attr_class="a", children=[author]),
    )
    return Template(
        roots=[
            ElementTemplate(
                tag="li",
                children=[slot(0, "title"), slot(1, "price"), iterator],
            )
        ]
    )


class TestTupleMatching:
    def test_concert_full_match(self):
        sod = parse_sod(
            "concert(artist, date<kind=predefined>, "
            "location(theater, address<kind=predefined>?))"
        )
        result = match_sod(sod, concert_template())
        assert result.matched
        assert result.entity_to_slots["artist"] == [0]
        assert result.entity_to_slots["address"] == [3, 4]  # merged spans

    def test_missing_required_reported(self):
        sod = parse_sod("concert(artist, date, somethingelse)")
        result = match_sod(sod, concert_template())
        assert not result.matched
        assert result.missing == ["somethingelse"]

    def test_optional_absence_tolerated(self):
        sod = parse_sod("t(artist, extra?)")
        result = match_sod(sod, concert_template())
        assert result.matched
        assert "extra" not in result.entity_to_slots

    def test_each_slot_used_once(self):
        # Two entities cannot claim the same dominant slot.
        sod = parse_sod("t(artist, performer)")
        template = concert_template()
        result = match_sod(sod, template)
        assert not result.matched  # no slot annotated "performer"


class TestSetMatching:
    def test_set_maps_to_iterator(self):
        sod = parse_sod("book(title, price<kind=predefined>, authors:{author}+)")
        result = match_sod(sod, book_template())
        assert result.matched
        assert result.set_to_iterator["authors"] == 10
        assert result.set_inner_slots["authors"]["author"] == [3]

    def test_set_falls_back_to_plain_slot(self):
        # No iterator in the template, but multiplicity admits one value.
        template = Template(
            roots=[
                ElementTemplate(
                    tag="li", children=[slot(0, "title"), slot(1, "author")]
                )
            ]
        )
        sod = parse_sod("book(title, authors:{author}+)")
        result = match_sod(sod, template)
        assert result.matched
        assert result.set_fallback_slots["authors"]["author"] == [1]

    def test_optional_set_may_be_absent(self):
        template = Template(
            roots=[ElementTemplate(tag="li", children=[slot(0, "title")])]
        )
        sod = parse_sod("book(title, tags:{tag}*)")
        result = match_sod(sod, template)
        assert result.matched


class TestConflictingFallback:
    def test_shared_slot_for_inline_pair(self):
        # One slot annotated half title / half author: both entities map
        # there in the second pass (the "TITLE by AUTHOR" situation).
        shared = FieldSlot(slot_id=0)
        for __ in range(5):
            shared.record_annotations({"title", "author"})
        template = Template(
            roots=[ElementTemplate(tag="li", children=[shared, slot(1, "price")])]
        )
        sod = parse_sod("book(title, author, price<kind=predefined>)")
        result = match_sod(sod, template)
        assert result.matched
        assert result.entity_to_slots["title"] == [0]
        assert result.entity_to_slots["author"] == [0]

    def test_low_share_not_used(self):
        noisy = FieldSlot(slot_id=0)
        for __ in range(19):
            noisy.record_annotations({"other"})
        noisy.record_annotations({"title"})  # 5% share < 20% minimum
        template = Template(roots=[ElementTemplate(tag="li", children=[noisy])])
        result = match_sod(parse_sod("t(title)"), template)
        assert not result.matched


class TestDisjunction:
    def test_left_branch_preferred(self):
        sod = parse_sod("t(choice(artist | nothing))")
        result = match_sod(sod, concert_template())
        assert result.matched
        assert "artist" in result.entity_to_slots

    def test_right_branch_fallback(self):
        sod = parse_sod("t(choice(nothing | artist))")
        result = match_sod(sod, concert_template())
        assert result.matched
        assert "artist" in result.entity_to_slots


class TestPartialMatchability:
    def test_full_match_is_matchable(self):
        sod = parse_sod("t(artist)")
        assert partially_matchable(sod, concert_template(), set())

    def test_missing_with_page_annotations_matchable(self):
        sod = parse_sod("t(artist, venue)")
        assert partially_matchable(sod, concert_template(), {"venue"})

    def test_missing_without_annotations_not_matchable(self):
        sod = parse_sod("t(artist, venue)")
        assert not partially_matchable(sod, concert_template(), set())
