"""Tests for the RoadRunner baseline."""

from repro.baselines.roadrunner import (
    RoadRunnerSystem,
    RoadRunnerWrapperInducer,
    RField,
    RPlus,
    tokenize_page,
)
from repro.htmlkit.tidy import tidy
from repro.sod.dsl import parse_sod

SOD = parse_sod("t(a)")


def page(records):
    body = "".join(f"<li><div>{value}</div></li>" for value in records)
    return tidy(f"<body><ul>{body}</ul></body>")


def induce(pages):
    return RoadRunnerWrapperInducer().induce([tokenize_page(p) for p in pages])


def flatten_types(items):
    out = []
    for item in items:
        out.append(type(item).__name__)
        if isinstance(item, RPlus):
            out.extend(flatten_types(item.unit))
    return out


class TestInduction:
    def test_string_mismatch_becomes_field(self):
        wrapper = induce([page(["alpha"]), page(["beta"])])
        assert any(isinstance(item, RField) for item in wrapper)

    def test_equal_strings_stay_literal(self):
        wrapper = induce([page(["same"]), page(["same"])])
        assert not any(isinstance(item, RField) for item in wrapper)

    def test_iterator_discovered_on_count_mismatch(self):
        wrapper = induce([page(["a", "b"]), page(["c", "d", "e"])])
        assert any(isinstance(item, RPlus) for item in wrapper)

    def test_no_iterator_on_constant_counts(self):
        # The documented RoadRunner failure: constant record counts give no
        # repetition evidence, so no iterator is learned.
        wrapper = induce([page(["a", "b"]), page(["c", "d"])])
        assert not any("RPlus" in t for t in flatten_types(wrapper))

    def test_single_page_wrapper_is_literal(self):
        wrapper = induce([page(["a"])])
        assert not any(isinstance(item, RField) for item in wrapper)


class TestExtraction:
    def test_varying_lists_extract_per_record(self):
        pages = [page(["a", "b"]), page(["c", "d", "e"]), page(["f"])]
        output = RoadRunnerSystem().run("s", pages, SOD)
        assert not output.failed
        assert len(output.records) == 6  # one per <li> record

    def test_constant_lists_extract_per_page(self):
        pages = [page(["a", "b"]), page(["c", "d"]), page(["e", "f"])]
        output = RoadRunnerSystem().run("s", pages, SOD)
        # No iterator -> one row per page with both values in separate
        # fields: the partially-correct signature from the paper.
        assert len(output.records) == 3
        assert all(len(record.columns) >= 2 for record in output.records)

    def test_optional_chunk_tolerated(self):
        with_extra = tidy(
            "<body><ul><li><div>a</div><p>extra</p></li>"
            "<li><div>b</div></li></ul></body>"
        )
        without = tidy("<body><ul><li><div>c</div></li></ul></body>")
        output = RoadRunnerSystem().run("s", [with_extra, without], SOD)
        assert not output.failed

    def test_schema_blind(self):
        # The SOD argument must not influence RoadRunner's output.
        pages = [page(["a", "b"]), page(["c", "d", "e"])]
        one = RoadRunnerSystem().run("s", pages, parse_sod("t(a)"))
        two = RoadRunnerSystem().run("s", pages, parse_sod("u(x, y)"))
        assert len(one.records) == len(two.records)

    def test_all_pcdata_extracted(self):
        # RoadRunner extracts everything, including chrome text fields.
        pages = [
            tidy(f"<body><h1>banner {i}</h1><ul><li><div>v{i}</div></li>"
                 f"<li><div>w{i}</div></li><li><div>u{i}</div></li></ul></body>")
            for i in range(3)
        ]
        output = RoadRunnerSystem().run("s", pages, SOD)
        values = [
            value
            for record in output.records
            for column_values in record.columns.values()
            for value in column_values
        ]
        assert any("banner" in value for value in values)
