"""Tests for the SOD DSL parser."""

import pytest

from repro.errors import SodSyntaxError
from repro.sod.dsl import parse_sod
from repro.sod.types import (
    DisjunctionType,
    EntityType,
    SetType,
    TupleType,
)


class TestBasicParsing:
    def test_flat_tuple(self):
        sod = parse_sod("car(brand, price)")
        assert isinstance(sod, TupleType)
        assert sod.name == "car"
        assert [c.name for c in sod.components] == ["brand", "price"]

    def test_entity_defaults(self):
        sod = parse_sod("t(x)")
        entity = sod.components[0]
        assert isinstance(entity, EntityType)
        assert entity.kind == "isInstanceOf"
        assert not entity.optional

    def test_annotations(self):
        sod = parse_sod("t(when<kind=predefined,recognizer=date>)")
        entity = sod.components[0]
        assert entity.kind == "predefined"
        assert entity.recognizer == "date"

    def test_optional_marker(self):
        sod = parse_sod("t(a, b?)")
        assert not sod.components[0].optional
        assert sod.components[1].optional

    def test_optional_with_annotations(self):
        sod = parse_sod("t(a<kind=predefined>?)")
        entity = sod.components[0]
        assert entity.kind == "predefined"
        assert entity.optional


class TestComplexTypes:
    def test_nested_tuple(self):
        sod = parse_sod("concert(artist, location(theater, address?))")
        location = sod.components[1]
        assert isinstance(location, TupleType)
        assert [c.name for c in location.components] == ["theater", "address"]

    def test_set_with_plus(self):
        sod = parse_sod("book(title, authors:{author}+)")
        authors = sod.components[1]
        assert isinstance(authors, SetType)
        assert str(authors.multiplicity) == "+"
        assert authors.inner.name == "author"

    def test_set_multiplicities(self):
        for symbol, rendered in [("*", "*"), ("+", "+"), ("?", "?"), ("1", "1")]:
            sod = parse_sod(f"t(s:{{x}}{symbol})")
            assert str(sod.components[0].multiplicity) == rendered

    def test_set_range_multiplicity(self):
        sod = parse_sod("t(s:{x}2-5)")
        multiplicity = sod.components[0].multiplicity
        assert (multiplicity.low, multiplicity.high) == (2, 5)

    def test_set_default_multiplicity_plus(self):
        sod = parse_sod("t(s:{x})")
        assert str(sod.components[0].multiplicity) == "+"

    def test_disjunction(self):
        sod = parse_sod("t(either(a | b))")
        either = sod.components[0]
        assert isinstance(either, DisjunctionType)
        assert either.left.name == "a"
        assert either.right.name == "b"

    def test_set_of_tuple(self):
        sod = parse_sod("catalog(items:{item(name, price)}*)")
        items = sod.components[0]
        assert isinstance(items.inner, TupleType)

    def test_paper_concert_sod(self):
        sod = parse_sod(
            "concert(artist, date<kind=predefined>, "
            "location(theater, address<kind=predefined>?))"
        )
        assert sod.name == "concert"
        location = sod.components[2]
        assert location.components[1].optional


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "t(",
            "t()",
            "t(a,)",
            "t(a b)",
            "t(a | b | c)",  # disjunction must be binary... inside tuple syntax
            "t(s:{x)",
            "t(a<kind>)",
            "t(a) trailing",
            "(a)",
        ],
    )
    def test_invalid_rejected(self, text):
        with pytest.raises(SodSyntaxError):
            parse_sod(text)

    def test_error_carries_offset_info(self):
        with pytest.raises(SodSyntaxError) as excinfo:
            parse_sod("t(a,,b)")
        assert "offset" in str(excinfo.value)


class TestWhitespace:
    def test_whitespace_insensitive(self):
        compact = parse_sod("t(a,b:{c}+)")
        spaced = parse_sod("  t ( a , b : { c } + )  ")
        assert str(compact) == str(spaced)
