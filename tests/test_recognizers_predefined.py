"""Tests for the system-predefined recognizers."""

import pytest

from repro.errors import UnknownTypeError
from repro.recognizers.predefined import predefined_names, predefined_recognizer


class TestRegistryOfPredefined:
    def test_names_listed(self):
        names = predefined_names()
        assert {"date", "address", "price", "phone", "isbn", "year"} <= set(names)

    def test_unknown_raises(self):
        with pytest.raises(UnknownTypeError):
            predefined_recognizer("nope")

    def test_type_name_override(self):
        recognizer = predefined_recognizer("date", type_name="release_date")
        (match,) = recognizer.find("out on May 11, 2010")
        assert match.type_name == "release_date"


class TestDates:
    @pytest.mark.parametrize(
        "text",
        [
            "Saturday August 8, 2010 8:00pm",
            "Monday May 11, 8:00pm",
            "Friday June 19 7:00p",
            "May 11, 2010",
            "2010-08-08",
            "12/05/2010",
            "3 March 2011",
        ],
    )
    def test_formats_recognized(self, text):
        recognizer = predefined_recognizer("date")
        assert recognizer.find(f"when: {text} end"), text

    def test_plain_words_not_dates(self):
        recognizer = predefined_recognizer("date")
        assert recognizer.find("the concert hall is big") == []


class TestAddresses:
    @pytest.mark.parametrize(
        "text",
        [
            "237 West 42nd street",
            "4 Penn Plaza",
            "Delancey St",
            "131 W 55th St",
        ],
    )
    def test_streets_recognized(self, text):
        recognizer = predefined_recognizer("address")
        assert recognizer.find(f"at {text} tonight"), text

    def test_zip_codes_recognized(self):
        recognizer = predefined_recognizer("address")
        assert recognizer.find("NY 10036 USA")


class TestPrices:
    @pytest.mark.parametrize("text", ["$12.99", "$1,250.00", "€30", "15.50 dollars"])
    def test_prices_recognized(self, text):
        recognizer = predefined_recognizer("price")
        assert recognizer.find(f"only {text} today"), text

    def test_bare_numbers_not_prices(self):
        recognizer = predefined_recognizer("price")
        assert recognizer.find("route 66 is long") == []


class TestOthers:
    def test_phone(self):
        recognizer = predefined_recognizer("phone")
        assert recognizer.find("call (212) 555-0123 now")

    def test_isbn(self):
        recognizer = predefined_recognizer("isbn")
        assert recognizer.find("ISBN 978-0-306-40615-7 hardcover")

    def test_year(self):
        recognizer = predefined_recognizer("year")
        (match,) = recognizer.find("published 2007.")
        assert match.value == "2007"

    def test_email(self):
        recognizer = predefined_recognizer("email")
        assert recognizer.find("mail us at info@example.org today")

    def test_url(self):
        recognizer = predefined_recognizer("url")
        assert recognizer.find("see http://example.org/page for details")
