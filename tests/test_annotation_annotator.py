"""Tests for the DOM annotator."""

from repro.annotation.annotator import AnnotatedPage, PageAnnotator, annotate_page
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer

PAGE = """
<html><body><li>
<div>Metallica</div>
<div>Monday May 11, 8:00pm</div>
<div><span><a>Madison Square Garden</a></span><span>237 West 42nd street</span></div>
</li></body></html>
"""


def artist_gazetteer():
    return GazetteerRecognizer("artist", ["Metallica", "Muse"])


class TestAnnotate:
    def test_text_node_annotated(self):
        page = AnnotatedPage(root=tidy(PAGE))
        PageAnnotator().annotate(page, artist_gazetteer())
        artist_div = page.root.find_all("div")[0]
        text_node = next(artist_div.iter_text_nodes())
        assert "artist" in text_node.annotations

    def test_parent_element_annotated(self):
        page = AnnotatedPage(root=tidy(PAGE))
        PageAnnotator().annotate(page, artist_gazetteer())
        artist_div = page.root.find_all("div")[0]
        assert "artist" in artist_div.annotations

    def test_matches_recorded(self):
        page = AnnotatedPage(root=tidy(PAGE))
        found = PageAnnotator().annotate(page, artist_gazetteer())
        assert [m.value for m in found] == ["Metallica"]
        assert page.annotation_count("artist") == 1

    def test_full_node_match_gets_bonus(self):
        page = AnnotatedPage(root=tidy("<body><div>Metallica</div></body>"))
        found = PageAnnotator(full_node_bonus=0.1).annotate(page, artist_gazetteer())
        assert found[0].confidence > GazetteerRecognizer(
            "artist", {"Metallica": 1.0}
        ).entries().get("Metallica", 0) - 0.2  # bonus applied, capped at 1.0
        assert found[0].confidence == 1.0

    def test_partial_node_match_no_bonus(self):
        page = AnnotatedPage(
            root=tidy("<body><div>Tonight Metallica plays</div></body>")
        )
        gazetteer = GazetteerRecognizer("artist", {"Metallica": 0.8})
        found = PageAnnotator().annotate(page, gazetteer)
        assert found[0].confidence == 0.8

    def test_scope_restriction(self):
        page = AnnotatedPage(
            root=tidy(
                "<body><div id='a'>Metallica</div><div id='b'>Muse</div></body>"
            )
        )
        scope = page.root.find_all("div")[0]
        found = PageAnnotator().annotate(page, artist_gazetteer(), within=scope)
        assert [m.value for m in found] == ["Metallica"]

    def test_multiple_annotations_per_node(self):
        page = AnnotatedPage(root=tidy("<body><div>May 11, 2010</div></body>"))
        annotator = PageAnnotator()
        annotator.annotate(page, predefined_recognizer("date"))
        annotator.annotate(page, predefined_recognizer("year"))
        text_node = next(page.root.find("div").iter_text_nodes())
        assert {"date", "year"} <= text_node.annotations


class TestConvenience:
    def test_annotate_page_runs_all(self):
        page = annotate_page(
            tidy(PAGE),
            [
                artist_gazetteer(),
                predefined_recognizer("date"),
                predefined_recognizer("address"),
            ],
            index=3,
        )
        assert page.index == 3
        assert page.annotated_types() == {"artist", "date", "address"}

    def test_annotation_count_total(self):
        page = annotate_page(
            tidy(PAGE), [artist_gazetteer(), predefined_recognizer("date")]
        )
        assert page.annotation_count() == page.annotation_count(
            "artist"
        ) + page.annotation_count("date")
