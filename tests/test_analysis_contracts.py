"""The C201 stage-contract rule: fixtures plus the real stage modules."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_file
from repro.analysis.rules import StageContractRule, stage_contracts
from repro.core.pipeline import REGISTRY_STAGE_ORDER, stage_registry

REPO_ROOT = Path(__file__).resolve().parents[1]
STAGES_DIR = REPO_ROOT / "src" / "repro" / "core" / "stages"

FIELDS = frozenset(
    {"source", "params", "pages", "raw_pages", "regions", "wrapper", "result"}
)


def run_contract_rule(tmp_path, source, known_fields=FIELDS):
    path = tmp_path / "stagemod.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rule = StageContractRule(known_fields=known_fields)
    return [
        f for f in analyze_file(path, tmp_path, [rule]) if f.rule == "C201"
    ]


GOOD_STAGE = """
    from repro.core.pipeline import Stage, register_stage

    @register_stage
    class GoodStage(Stage):
        name = "good"
        reads = ("raw_pages",)
        writes = ("pages",)

        def run(self, ctx):
            ctx.pages = [raw.upper() for raw in ctx.raw_pages]
            ctx.count("pages", len(ctx.pages))
"""


class TestContractFixtures:
    def test_compliant_stage_clean(self, tmp_path):
        assert not run_contract_rule(tmp_path, GOOD_STAGE)

    def test_missing_declaration_flagged(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Undeclared(Stage):
                name = "undeclared"

                def run(self, ctx):
                    ctx.pages = []
            """,
        )
        assert any("must declare reads and writes" in f.message for f in findings)

    def test_undeclared_read_flagged(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Sneaky(Stage):
                name = "sneaky"
                reads = ()
                writes = ("pages",)

                def run(self, ctx):
                    ctx.pages = list(ctx.regions)
            """,
        )
        assert any(
            "reads ctx.regions" in f.message and "does not declare" in f.message
            for f in findings
        )

    def test_undeclared_write_flagged(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Grabby(Stage):
                name = "grabby"
                reads = ("pages",)
                writes = ()

                def run(self, ctx):
                    ctx.wrapper = object()
            """,
        )
        assert any("writes ctx.wrapper" in f.message for f in findings)

    def test_mutation_through_field_needs_write(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Through(Stage):
                name = "through"
                reads = ("result",)
                writes = ()

                def run(self, ctx):
                    ctx.result.objects = []
            """,
        )
        assert any("writes ctx.result" in f.message for f in findings)

    def test_unknown_field_in_declaration_flagged(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Typo(Stage):
                name = "typo"
                reads = ("pagez",)
                writes = ()

                def run(self, ctx):
                    return None
            """,
        )
        assert any("unknown context field 'pagez'" in f.message for f in findings)

    def test_read_after_declared_write_allowed(self, tmp_path):
        assert not run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class WriteThenRead(Stage):
                name = "wtr"
                reads = ()
                writes = ("pages",)

                def run(self, ctx):
                    ctx.pages = []
                    ctx.count("n", len(ctx.pages))
            """,
        )

    def test_helper_method_with_ctx_param_checked(self, tmp_path):
        findings = run_contract_rule(
            tmp_path,
            """
            from repro.core.pipeline import Stage, register_stage

            @register_stage
            class Helpered(Stage):
                name = "helpered"
                reads = ("pages",)
                writes = ()

                def run(self, ctx):
                    self._helper(ctx)

                def _helper(self, ctx):
                    return ctx.wrapper
            """,
        )
        assert any(
            "reads ctx.wrapper" in f.message and "_helper" in f.message
            for f in findings
        )

    def test_unregistered_class_ignored(self, tmp_path):
        assert not run_contract_rule(
            tmp_path,
            """
            class NotAStage:
                def run(self, ctx):
                    ctx.anything_goes = 1
            """,
        )


class TestRealStages:
    def stage_files(self):
        return sorted(STAGES_DIR.glob("*.py"))

    def test_rule_covers_all_registered_stages(self):
        names = set()
        for path in self.stage_files():
            tree = ast.parse(path.read_text(encoding="utf-8"))
            names.update(c.stage_name for c in stage_contracts(tree))
        assert names == set(REGISTRY_STAGE_ORDER)
        assert names == set(stage_registry())

    def test_real_stage_modules_clean(self):
        rule = StageContractRule()
        for path in self.stage_files():
            findings = [
                f
                for f in analyze_file(path, REPO_ROOT, [rule])
                if f.rule == "C201"
            ]
            assert findings == [], f"{path.name}: {findings}"

    @pytest.mark.parametrize("name", REGISTRY_STAGE_ORDER)
    def test_registered_classes_declare_contracts(self, name):
        cls = stage_registry()[name]
        assert isinstance(cls.reads, tuple)
        assert isinstance(cls.writes, tuple)
        # Declarations live on the concrete class, not inherited defaults.
        assert "reads" in cls.__dict__ and "writes" in cls.__dict__

    def test_declared_fields_exist_on_context(self):
        from repro.core.pipeline import PipelineContext

        context_fields = set(PipelineContext.__dataclass_fields__)
        for name, cls in stage_registry().items():
            unknown = (set(cls.reads) | set(cls.writes)) - context_fields
            assert not unknown, f"{name}: {unknown}"


def run_transitive_rule(tmp_path, files):
    """Run C202 over a fixture tree (whole-program mode)."""
    from repro.analysis import analyze_paths, build_rules

    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = analyze_paths(
        [tmp_path], root=tmp_path, rules=build_rules(["C202"]), jobs=1
    )
    return [f for f in report.findings if f.rule == "C202"]


TRANSITIVE_STAGE = """
    from repro.core.pipeline import Stage, register_stage
    from helpers import {helper}

    @register_stage
    class Laundering(Stage):
        name = "laundering"
        reads = ("raw_pages",)
        writes = ("pages",)

        def run(self, ctx):
            {helper}(ctx)
"""


class TestTransitiveContractsC202:
    def test_undeclared_write_through_helper_flagged(self, tmp_path):
        findings = run_transitive_rule(
            tmp_path,
            {
                "stagemod.py": TRANSITIVE_STAGE.format(helper="sneaky"),
                "helpers.py": """
                    def sneaky(ctx):
                        ctx.regions = []
                """,
            },
        )
        assert len(findings) == 1
        assert "writes ctx.regions" in findings[0].message
        assert findings[0].path == "stagemod.py"  # anchored at the call site

    def test_undeclared_read_through_two_hops_flagged(self, tmp_path):
        findings = run_transitive_rule(
            tmp_path,
            {
                "stagemod.py": TRANSITIVE_STAGE.format(helper="outer"),
                "helpers.py": """
                    def outer(ctx):
                        return inner(ctx)

                    def inner(ctx):
                        return ctx.wrapper
                """,
            },
        )
        assert len(findings) == 1
        assert "reads ctx.wrapper" in findings[0].message

    def test_declared_access_through_helper_clean(self, tmp_path):
        assert not run_transitive_rule(
            tmp_path,
            {
                "stagemod.py": TRANSITIVE_STAGE.format(helper="honest"),
                "helpers.py": """
                    def honest(ctx):
                        ctx.pages = list(ctx.raw_pages)
                """,
            },
        )

    def test_observability_fields_always_allowed(self, tmp_path):
        assert not run_transitive_rule(
            tmp_path,
            {
                "stagemod.py": TRANSITIVE_STAGE.format(helper="counting"),
                "helpers.py": """
                    def counting(ctx):
                        ctx.count("pages", 1)
                """,
            },
        )

    def test_declared_write_allows_helper_read_of_same_field(self, tmp_path):
        assert not run_transitive_rule(
            tmp_path,
            {
                "stagemod.py": TRANSITIVE_STAGE.format(helper="rereads"),
                "helpers.py": """
                    def rereads(ctx):
                        ctx.pages = [p for p in ctx.pages]
                """,
            },
        )
