"""Tests for extracted-object de-duplication."""

from repro.core.dedup import DedupConfig, deduplicate
from repro.sod.instances import ObjectInstance


def obj(**values):
    return ObjectInstance(values=values)


class TestDeduplicate:
    def test_exact_duplicates_merged(self):
        objects = [
            obj(title="Silent Rivers", price="$10.00"),
            obj(title="Silent Rivers", price="$10.00"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 1
        assert result.merged == 1

    def test_distinct_objects_kept(self):
        objects = [
            obj(title="Silent Rivers", price="$10.00"),
            obj(title="Golden Horizon", price="$10.00"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 2
        assert result.merged == 0

    def test_normalization_applied(self):
        objects = [
            obj(title="Silent Rivers", price="$10.00"),
            obj(title="silent  rivers", price="10.00"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 1

    def test_containment_variants_merged(self):
        objects = [
            obj(title="Hamlet", price="$8.00"),
            obj(title="Hamlet Penguin Classics Edition", price="$8.00"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 1

    def test_containment_disabled(self):
        objects = [
            obj(title="Hamlet", price="$8.00"),
            obj(title="Hamlet Penguin Classics Edition", price="$8.00"),
        ]
        config = DedupConfig(
            key_attributes=("title",), allow_value_containment=False
        )
        assert deduplicate(objects, config).kept == 2

    def test_conflicting_nonkey_attribute_blocks_merge(self):
        objects = [
            obj(title="Silent Rivers", price="$10.00"),
            obj(title="Silent Rivers", price="$99.99"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 2

    def test_most_complete_representative_kept(self):
        sparse = obj(title="Silent Rivers")
        rich = obj(title="Silent Rivers", price="$10.00", date="May 2010")
        result = deduplicate(
            [sparse, rich], DedupConfig(key_attributes=("title",))
        )
        assert result.objects == [rich]

    def test_multi_key(self):
        objects = [
            obj(artist="Muse", date="May 11", theater="MSG"),
            obj(artist="Muse", date="May 12", theater="MSG"),
            obj(artist="Muse", date="May 11", theater="MSG"),
        ]
        config = DedupConfig(key_attributes=("artist", "date"))
        assert deduplicate(objects, config).kept == 2

    def test_missing_key_never_merges(self):
        objects = [obj(price="$10.00"), obj(price="$10.00")]
        config = DedupConfig(key_attributes=("title",))
        assert deduplicate(objects, config).kept == 2

    def test_nested_and_set_values(self):
        objects = [
            obj(title="T", authors=["A B", "C D"]),
            obj(title="T", authors=["C D", "A B"]),  # order-insensitive
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert result.kept == 1

    def test_order_preserved(self):
        objects = [
            obj(title="B Title", price="$2"),
            obj(title="A Title", price="$1"),
            obj(title="B Title", price="$2"),
        ]
        result = deduplicate(objects, DedupConfig(key_attributes=("title",)))
        assert [o.values["title"] for o in result.objects] == ["B Title", "A Title"]

    def test_cross_source_merge(self):
        left = ObjectInstance(values={"title": "T", "price": "$5"}, source="siteA")
        right = ObjectInstance(values={"title": "T", "price": "$5"}, source="siteB")
        result = deduplicate([left, right], DedupConfig(key_attributes=("title",)))
        assert result.kept == 1
        assert len(result.groups[0]) == 2

    def test_empty_input(self):
        result = deduplicate([])
        assert result.kept == 0
        assert result.merged == 0
