"""Tests for the exception hierarchy and result containers."""

import pytest

from repro.core.faults import SourceFailure
from repro.core.results import MultiSourceResult, SourceResult, StageTimings
from repro.errors import (
    AnnotationError,
    DatasetError,
    EvaluationError,
    HtmlParseError,
    InjectedFaultError,
    MatchingError,
    MultiSourceError,
    RecognizerError,
    ReproError,
    SodError,
    SodSyntaxError,
    SourceDiscardedError,
    TransientSourceError,
    UnknownTypeError,
    WrapperError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            HtmlParseError,
            SodError,
            SodSyntaxError,
            RecognizerError,
            UnknownTypeError,
            AnnotationError,
            WrapperError,
            MatchingError,
            DatasetError,
            EvaluationError,
            TransientSourceError,
            MultiSourceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_injected_fault_is_not_a_repro_error(self):
        # Injected crashes must look like genuinely unexpected failures,
        # so no library except handler may swallow them.
        assert issubclass(InjectedFaultError, RuntimeError)
        assert not issubclass(InjectedFaultError, ReproError)

    def test_sod_syntax_is_sod_error(self):
        assert issubclass(SodSyntaxError, SodError)

    def test_matching_is_wrapper_error(self):
        assert issubclass(MatchingError, WrapperError)

    def test_unknown_type_is_recognizer_error(self):
        assert issubclass(UnknownTypeError, RecognizerError)


class TestSourceDiscardedError:
    def test_carries_context(self):
        error = SourceDiscardedError("emusic", stage="annotation", reason="no hits")
        assert error.source == "emusic"
        assert error.stage == "annotation"
        assert error.reason == "no hits"
        assert "emusic" in str(error)
        assert "annotation" in str(error)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise SourceDiscardedError("x", stage="wrapper", reason="r")


class TestStageTimings:
    def test_total_sums_stages(self):
        timings = StageTimings(
            preprocess=1.0, annotation=2.0, wrapping=3.0, extraction=0.5
        )
        assert timings.total == 6.5

    def test_defaults_zero(self):
        assert StageTimings().total == 0.0

    def test_as_dict_covers_every_field(self):
        # as_dict is derived from dataclasses.fields, so a new stage field
        # can never silently drop out of totals or reports.
        import dataclasses

        timings = StageTimings(
            preprocess=1.0, annotation=2.0, wrapping=3.0, extraction=0.5
        )
        as_dict = timings.as_dict()
        assert set(as_dict) == {
            f.name for f in dataclasses.fields(StageTimings)
        }
        assert sum(as_dict.values()) == timings.total


class TestResultContainers:
    def test_source_result_ok_logic(self):
        result = SourceResult(source="s")
        assert not result.ok  # no wrapper yet
        result.discarded = True
        assert not result.ok

    def test_multi_source_counters(self):
        ok = SourceResult(source="a")
        ok.wrapper = object()  # any non-None wrapper
        bad = SourceResult(source="b", discarded=True)
        multi = MultiSourceResult(results={"a": ok, "b": bad})
        assert multi.sources_ok == 1
        assert multi.sources_discarded == 1

    def test_multi_source_failures(self):
        failure = SourceFailure(
            source="c", stage="wrapping", error="RuntimeError: boom"
        )
        multi = MultiSourceResult(results={}, failures={"c": failure})
        assert multi.sources_failed == 1
        assert multi.failures["c"].attempts == 1

    def test_failures_default_empty(self):
        assert MultiSourceResult().failures == {}
        assert MultiSourceResult().sources_failed == 0


class TestMultiSourceError:
    def test_carries_partial_and_failure(self):
        failure = SourceFailure(source="b", stage="wrapping", error="boom")
        partial = MultiSourceResult(failures={"b": failure})
        error = MultiSourceError(
            "source 'b' failed", partial=partial, failure=failure
        )
        assert error.partial is partial
        assert error.failure is failure

    def test_defaults_to_no_context(self):
        error = MultiSourceError("bare")
        assert error.partial is None
        assert error.failure is None
