"""Tests for DOM node operations."""

import pytest

from repro.htmlkit.dom import Element, Text, clone


@pytest.fixture()
def tree():
    root = Element("html")
    body = root.append(Element("body"))
    div = body.append(Element("div", {"class": "main", "id": "x"}))
    div.append(Text("hello "))
    span = div.append(Element("span"))
    span.append(Text("world"))
    return root, body, div, span


class TestGeometry:
    def test_ancestors(self, tree):
        root, body, div, span = tree
        assert list(span.ancestors()) == [div, body, root]

    def test_root(self, tree):
        root, __, __, span = tree
        assert span.root() is root

    def test_depth(self, tree):
        root, __, __, span = tree
        assert root.depth() == 0
        assert span.depth() == 3

    def test_index_in_parent(self, tree):
        __, __, div, span = tree
        assert span.index_in_parent() == 1
        assert div.index_in_parent() == 0


class TestMutation:
    def test_append_sets_parent(self):
        parent = Element("div")
        child = Element("p")
        parent.append(child)
        assert child.parent is parent

    def test_remove_clears_parent(self):
        parent = Element("div")
        child = parent.append(Element("p"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_insert(self):
        parent = Element("div")
        parent.append(Element("a"))
        parent.insert(0, Element("b"))
        assert [c.tag for c in parent.children] == ["b", "a"]

    def test_replace_children(self):
        parent = Element("div")
        old = parent.append(Element("a"))
        new = Element("b")
        parent.replace_children([new])
        assert old.parent is None
        assert new.parent is parent


class TestTraversal:
    def test_iter_preorder(self, tree):
        root, __, __, __ = tree
        tags = [n.tag for n in root.iter() if isinstance(n, Element)]
        assert tags == ["html", "body", "div", "span"]

    def test_find_all_with_predicate(self, tree):
        root, __, div, __ = tree
        found = root.find_all("div", predicate=lambda e: e.attributes.get("id") == "x")
        assert found == [div]

    def test_find_first(self, tree):
        root, __, __, span = tree
        assert root.find("span") is span

    def test_iter_text_nodes(self, tree):
        root, __, __, __ = tree
        texts = [t.text for t in root.iter_text_nodes()]
        assert texts == ["hello ", "world"]


class TestPathsAndText:
    def test_dom_path(self, tree):
        __, __, __, span = tree
        assert span.dom_path() == "html/body/div/span"

    def test_indexed_path_distinguishes_siblings(self):
        parent = Element("div")
        a = parent.append(Element("p"))
        b = parent.append(Element("p"))
        assert a.indexed_path() != b.indexed_path()

    def test_signature_includes_attributes(self, tree):
        __, __, div, __ = tree
        assert "class=main" in div.signature()
        assert "id=x" in div.signature()

    def test_text_content_collapses(self, tree):
        __, __, div, __ = tree
        assert div.text_content() == "hello world"

    def test_own_text_excludes_descendants(self, tree):
        __, __, div, __ = tree
        assert div.own_text() == "hello"


class TestClone:
    def test_deep_copy_with_annotations(self, tree):
        root, __, div, __ = tree
        div.annotations.add("artist")
        copy = clone(root)
        copied_div = copy.find("div")
        assert copied_div is not div
        assert copied_div.annotations == {"artist"}
        # Mutating the copy leaves the original untouched.
        copied_div.annotations.add("other")
        assert div.annotations == {"artist"}

    def test_clone_text(self):
        text = Text("x")
        text.annotations.add("date")
        copy = clone(text)
        assert isinstance(copy, Text)
        assert copy.text == "x"
        assert copy.annotations == {"date"}
