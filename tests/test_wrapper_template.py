"""Tests for the template tree model."""

from collections import Counter

from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
    Template,
)


def make_template():
    title = FieldSlot(slot_id=0)
    author = FieldSlot(slot_id=1)
    unit = ElementTemplate(tag="span", attr_class="a", children=[author])
    iterator = IteratorSlot(slot_id=2, unit=unit, min_repeats=1, max_repeats=3)
    root = ElementTemplate(
        tag="li",
        children=[
            ElementTemplate(tag="div", children=[title]),
            iterator,
            StaticSlot("In Stock"),
        ],
    )
    return Template(roots=[root]), title, author, iterator


class TestStructure:
    def test_iter_nodes_covers_everything(self):
        template, *_ = make_template()
        kinds = Counter(type(n).__name__ for n in template.iter_nodes())
        assert kinds["FieldSlot"] == 2
        assert kinds["IteratorSlot"] == 1
        assert kinds["StaticSlot"] == 1
        assert kinds["ElementTemplate"] == 3

    def test_field_slots(self):
        template, title, author, __ = make_template()
        assert template.field_slots() == [title, author]

    def test_tuple_level_excludes_iterator_fields(self):
        template, title, author, __ = make_template()
        assert template.tuple_level_fields() == [title]

    def test_set_level_fields(self):
        template, __, author, iterator = make_template()
        assert template.set_level_fields() == {iterator.slot_id: [author]}

    def test_describe_renders(self):
        template, *_ = make_template()
        text = template.describe()
        assert "<li>" in text
        assert "'In Stock'" in text


class TestFieldSlotAnnotations:
    def test_dominant_above_threshold(self):
        slot = FieldSlot(slot_id=0)
        for __ in range(8):
            slot.record_annotations({"artist"})
        for __ in range(2):
            slot.record_annotations({"date"})
        assert slot.dominant_annotation(threshold=0.7) == "artist"

    def test_no_dominant_below_threshold(self):
        slot = FieldSlot(slot_id=0)
        for __ in range(5):
            slot.record_annotations({"artist"})
        for __ in range(5):
            slot.record_annotations({"date"})
        assert slot.dominant_annotation(threshold=0.7) is None

    def test_unannotated_occurrences_do_not_dilute(self):
        # Dominance is over *annotated* occurrences (dictionaries are
        # incomplete; 20% coverage must still generalize).
        slot = FieldSlot(slot_id=0)
        for __ in range(2):
            slot.record_annotations({"artist"})
        for __ in range(8):
            slot.record_annotations(set())
        assert slot.dominant_annotation() == "artist"

    def test_conflicting_flag(self):
        slot = FieldSlot(slot_id=0)
        slot.record_annotations({"artist"})
        assert not slot.conflicting
        slot.record_annotations({"date"})
        assert slot.conflicting

    def test_no_annotations_no_dominant(self):
        slot = FieldSlot(slot_id=0)
        slot.record_annotations(set())
        assert slot.dominant_annotation() is None

    def test_describe_with_type(self):
        slot = FieldSlot(slot_id=0)
        slot.record_annotations({"artist"})
        assert slot.describe() == '* type="artist"'
