"""Documentation coverage: every public item carries a docstring."""

import ast
from pathlib import Path

import pytest

import repro

SRC_ROOT = Path(repro.__file__).parent

MODULES = sorted(SRC_ROOT.rglob("*.py"))


def _public_defs(tree: ast.Module):
    """Yield (kind, name, node) for public module-level defs and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield "function", node.name, node
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield "class", node.name, node
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if member.name.startswith("_"):
                        continue
                    yield "method", f"{node.name}.{member.name}", member


@pytest.mark.parametrize(
    "path", MODULES, ids=[str(p.relative_to(SRC_ROOT)) for p in MODULES]
)
def test_module_and_public_items_documented(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"
    missing = []
    for kind, name, node in _public_defs(tree):
        if kind == "method" and _is_trivial_accessor(node):
            continue
        if not ast.get_docstring(node):
            missing.append(f"{kind} {name}")
    assert not missing, f"{path}: undocumented public items: {missing}"


def _is_trivial_accessor(node) -> bool:
    """Properties/dunders of one return statement may document themselves."""
    body = [
        statement
        for statement in node.body
        if not isinstance(statement, ast.Expr)
    ]
    return len(body) == 1 and isinstance(body[0], ast.Return)
