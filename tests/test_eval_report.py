"""Tests for report rendering."""

from repro.datasets.catalog import catalog_entries
from repro.eval.classify import SourceEvaluation
from repro.eval.metrics import aggregate_domain
from repro.eval.report import format_table1_row, render_comparison_table


def evaluation(correct=10, partial=0, incorrect=0):
    e = SourceEvaluation(source="s", system="sys")
    e.objects_total = correct + partial + incorrect
    e.objects_correct = correct
    e.objects_partial = partial
    e.objects_incorrect = incorrect
    e.attribute_class = {"a": "correct", "b": "partial"}
    return e


class TestTable1Row:
    def test_row_contains_paper_and_measured(self):
        entry = catalog_entries()[0]
        line = format_table1_row(entry, evaluation())
        assert "paper[" in line and "measured[" in line
        assert entry.spec.name in line

    def test_discarded_entry(self):
        emusic = next(e for e in catalog_entries() if e.paper.discarded)
        line = format_table1_row(emusic, None)
        assert "discarded" in line
        assert "not run" in line

    def test_measured_discarded(self):
        entry = catalog_entries()[0]
        e = evaluation()
        e.discarded = True
        line = format_table1_row(entry, e)
        assert "measured[discarded]" in line


class TestComparisonTable:
    def test_renders_all_systems_and_domains(self):
        metrics = {
            "objectrunner": [aggregate_domain("albums", "objectrunner", [evaluation()])],
            "exalg": [aggregate_domain("albums", "exalg", [evaluation(5, 5, 0)])],
        }
        table = render_comparison_table("Table III", metrics)
        assert "Table III" in table
        assert "albums" in table
        assert "objectrunner Pc" in table
        assert "100.0%" in table

    def test_paper_rows_included(self):
        metrics = {
            "objectrunner": [aggregate_domain("albums", "objectrunner", [evaluation()])],
        }
        paper = {"albums": {"objectrunner": (74.52, 100.0)}}
        table = render_comparison_table("T", metrics, paper)
        assert "(paper)" in table
        assert "74.5%" in table

    def test_missing_domain_rendered_as_dash(self):
        metrics = {
            "objectrunner": [aggregate_domain("albums", "objectrunner", [evaluation()])],
            "exalg": [aggregate_domain("cars", "exalg", [evaluation()])],
        }
        table = render_comparison_table("T", metrics)
        assert "-" in table
