"""Fixture-based positive/negative cases for each determinism rule."""

import textwrap

import pytest

from repro.analysis import analyze_file, build_rules


def run_rule(tmp_path, rule_id, source, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return [
        f
        for f in analyze_file(path, tmp_path, build_rules([rule_id]))
        if f.rule == rule_id
    ]


class TestUnseededRandomD101:
    def test_import_flagged(self, tmp_path):
        assert run_rule(tmp_path, "D101", "import random\n")

    def test_from_import_flagged(self, tmp_path):
        assert run_rule(tmp_path, "D101", "from random import choice\n")

    def test_call_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "D101",
            "import random\n\ndef f():\n    return random.random()\n",
        )
        assert len(findings) == 2  # the import and the call

    def test_rng_module_exempt(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D101",
            "import random\n",
            name="utils/rng.py",
        )

    def test_deterministic_rng_not_flagged(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D101",
            "from repro.utils.rng import DeterministicRng\n"
            "def f():\n    return DeterministicRng(0).random()\n",
        )


class TestWallClockD102:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.time_ns()", "datetime.now()",
         "datetime.datetime.now()", "datetime.utcnow()", "date.today()"],
    )
    def test_clock_calls_flagged(self, tmp_path, call):
        assert run_rule(
            tmp_path, "D102", f"def f():\n    return {call}\n"
        )

    def test_perf_counter_allowed(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D102",
            "import time\n\ndef f():\n    return time.perf_counter()\n",
        )

    def test_observer_module_exempt(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D102",
            "import time\n\ndef f():\n    return time.time()\n",
            name="core/pipeline.py",
        )


class TestWallSleepD105:
    def test_sleep_call_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "D105",
            "import time\n\ndef f():\n    time.sleep(0.5)\n",
        )
        assert len(findings) == 1
        assert "wall-sleep" in findings[0].message

    def test_sleep_import_flagged(self, tmp_path):
        assert run_rule(tmp_path, "D105", "from time import sleep\n")

    def test_faults_module_exempt(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D105",
            "import time\n\ndef wall_sleep(s):\n    time.sleep(s)\n",
            name="core/faults.py",
        )

    def test_injected_sleep_callable_allowed(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D105",
            "def f(sleep):\n    sleep(0.5)\n",
        )

    def test_other_time_functions_allowed(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D105",
            "import time\n\ndef f():\n    return time.perf_counter()\n",
        )


class TestSetOrderD103:
    def test_tuple_over_set_intersection_flagged(self, tmp_path):
        assert run_rule(
            tmp_path,
            "D103",
            "def f(a, b):\n    return tuple(set(a) & set(b))\n",
        )

    def test_list_over_set_flagged(self, tmp_path):
        assert run_rule(tmp_path, "D103", "def f(a):\n    return list(set(a))\n")

    def test_join_over_set_flagged(self, tmp_path):
        assert run_rule(
            tmp_path, "D103", "def f(a):\n    return ', '.join({x for x in a})\n"
        )

    def test_listcomp_over_set_flagged(self, tmp_path):
        assert run_rule(
            tmp_path, "D103", "def f(a):\n    return [x for x in set(a)]\n"
        )

    def test_dictcomp_over_set_flagged(self, tmp_path):
        assert run_rule(
            tmp_path, "D103", "def f(a):\n    return {x: 1 for x in set(a)}\n"
        )

    def test_accumulating_loop_over_set_flagged(self, tmp_path):
        assert run_rule(
            tmp_path,
            "D103",
            "def f(a):\n"
            "    out = []\n"
            "    for x in set(a):\n"
            "        out.append(x)\n"
            "    return out\n",
        )

    def test_sorted_neutralizes(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D103",
            "def f(a, b):\n    return tuple(sorted(set(a) & set(b)))\n",
        )

    def test_membership_test_not_flagged(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D103",
            "def f(a, x):\n    return x in set(a)\n",
        )

    def test_order_insensitive_loop_not_flagged(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D103",
            "def f(a):\n"
            "    seen = set()\n"
            "    for x in set(a):\n"
            "        seen.add(x)\n"
            "    return seen\n",
        )

    def test_list_of_plain_sequence_not_flagged(self, tmp_path):
        assert not run_rule(tmp_path, "D103", "def f(a):\n    return list(a)\n")


class TestUnsortedListingD104:
    def test_os_listdir_flagged(self, tmp_path):
        assert run_rule(
            tmp_path,
            "D104",
            "import os\n\ndef f(d):\n    return os.listdir(d)\n",
        )

    def test_glob_flagged(self, tmp_path):
        assert run_rule(
            tmp_path,
            "D104",
            "import glob\n\ndef f(p):\n    return glob.glob(p)\n",
        )

    def test_path_iterdir_flagged(self, tmp_path):
        assert run_rule(
            tmp_path, "D104", "def f(path):\n    return [p for p in path.iterdir()]\n"
        )

    def test_path_rglob_flagged(self, tmp_path):
        assert run_rule(
            tmp_path, "D104", "def f(path):\n    return list(path.rglob('*.py'))\n"
        )

    def test_sorted_listing_allowed(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D104",
            "import os\n\ndef f(d):\n    return sorted(os.listdir(d))\n",
        )

    def test_sorted_comprehension_allowed(self, tmp_path):
        assert not run_rule(
            tmp_path,
            "D104",
            "def f(path):\n"
            "    return sorted(p.name for p in path.iterdir())\n",
        )


class TestSharedStateT301:
    def _analyze_tree(self, tmp_path, files):
        from repro.analysis import analyze_paths, build_rules

        for name, source in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = analyze_paths(
            [tmp_path], root=tmp_path, rules=build_rules(["T301"]), jobs=1
        )
        return [f for f in report.findings if f.rule == "T301"]

    POOL = """
        from concurrent.futures import ThreadPoolExecutor
        import state

        def run_all(items):
            with ThreadPoolExecutor() as pool:
                return [f.result() for f in [pool.submit(state.work, i) for i in items]]
    """

    def test_module_dict_write_in_reachable_module_flagged(self, tmp_path):
        findings = self._analyze_tree(
            tmp_path,
            {
                "poolmod.py": self.POOL,
                "state.py": """
                    _CACHE = {}

                    def work(item):
                        _CACHE[item] = item * 2
                        return _CACHE[item]
                """,
            },
        )
        assert any("'_CACHE'" in f.message for f in findings)

    def test_global_rebind_flagged(self, tmp_path):
        findings = self._analyze_tree(
            tmp_path,
            {
                "poolmod.py": self.POOL,
                "state.py": """
                    TOTAL = 0

                    def work(item):
                        global TOTAL
                        TOTAL += item
                        return TOTAL
                """,
            },
        )
        assert any("'TOTAL'" in f.message for f in findings)

    def test_mutating_method_call_flagged(self, tmp_path):
        findings = self._analyze_tree(
            tmp_path,
            {
                "poolmod.py": self.POOL,
                "state.py": """
                    _SEEN = []

                    def work(item):
                        _SEEN.append(item)
                        return item
                """,
            },
        )
        assert any("'_SEEN'" in f.message for f in findings)

    def test_unreachable_module_not_flagged(self, tmp_path):
        findings = self._analyze_tree(
            tmp_path,
            {
                "poolmod.py": self.POOL,
                "state.py": """
                    def work(item):
                        return item
                """,
                "island.py": """
                    _CACHE = {}

                    def mutate(item):
                        _CACHE[item] = item
                """,
            },
        )
        assert not findings

    def test_local_state_not_flagged(self, tmp_path):
        findings = self._analyze_tree(
            tmp_path,
            {
                "poolmod.py": self.POOL,
                "state.py": """
                    def work(items):
                        cache = {}
                        for item in items:
                            cache[item] = item
                        return cache
                """,
            },
        )
        assert not findings


def analyze_tree(tmp_path, rule_id, files, scan=None):
    """Run one whole-program rule over a fixture tree.

    ``scan`` names the subdirectory to lint (default: everything); the
    rest of the tree still exists on disk, e.g. as A501's tests/
    reference universe.
    """
    from repro.analysis import analyze_paths, build_rules

    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    target = tmp_path / scan if scan else tmp_path
    report = analyze_paths(
        [target], root=tmp_path, rules=build_rules([rule_id]), jobs=1
    )
    return [f for f in report.findings if f.rule == rule_id]


class TestTaintToArtifactD106:
    def test_helper_laundered_clock_reaches_json_dump(self, tmp_path):
        """The seeded regression: time.time() laundered through a helper."""
        findings = analyze_tree(
            tmp_path,
            "D106",
            {
                "app.py": """
                    import json
                    import time

                    def persist(obj, fh):
                        json.dump(obj, fh)

                    def emit(fh):
                        stamp = time.time()
                        persist(stamp, fh)
                """,
            },
        )
        assert len(findings) == 1
        assert "CLOCK" in findings[0].message
        assert "persist()" in findings[0].message
        assert "persist(stamp, fh)" in findings[0].snippet

    def test_direct_env_taint_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "D106",
            {
                "app.py": """
                    import json
                    import os

                    def emit(fh):
                        json.dump(os.environ.get("HOME", ""), fh)
                """,
            },
        )
        assert len(findings) == 1
        assert "ENV" in findings[0].message

    def test_set_order_into_dump_flagged_and_sorted_is_clean(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "D106",
            {
                "app.py": """
                    import json

                    def bad(items, fh):
                        json.dump(list(set(items)), fh)

                    def good(items, fh):
                        json.dump(sorted(set(items)), fh)
                """,
            },
        )
        assert len(findings) == 1
        assert "SET_ORDER" in findings[0].message

    def test_deterministic_payload_clean(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "D106",
            {
                "app.py": (
                    "import json\n\ndef emit(fh):\n"
                    "    json.dump({'n': 1}, fh)\n"
                ),
            },
        )


class TestExceptionContractE401:
    STAGE = """
        from errors import StageError
        from helpers import work, fallback

        class register_stage:
            def __init__(self, cls):
                pass

        @register_stage
        class Clean:
            def run(self, ctx):
                return work(ctx)
    """

    def test_builtin_raise_in_reachable_helper_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "E401",
            {
                "errors.py": "class StageError(Exception):\n    pass\n",
                "stages.py": self.STAGE,
                "helpers.py": """
                    def work(ctx):
                        raise ValueError("boom")

                    def fallback(ctx):
                        return None
                """,
            },
        )
        assert any("ValueError" in f.message for f in findings)

    def test_project_error_raise_clean(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "E401",
            {
                "errors.py": "class StageError(Exception):\n    pass\n",
                "stages.py": self.STAGE,
                "helpers.py": """
                    from errors import StageError

                    def work(ctx):
                        raise StageError("declared contract")

                    def fallback(ctx):
                        return None
                """,
            },
        )
        assert not findings

    def test_unreachable_helper_not_checked_for_raises(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "E401",
            {
                "errors.py": "class StageError(Exception):\n    pass\n",
                "stages.py": self.STAGE,
                "helpers.py": """
                    def work(ctx):
                        return None

                    def fallback(ctx):
                        return None

                    def offline():
                        raise ValueError("never on the stage path")
                """,
            },
        )
        assert not findings

    def test_bare_except_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "E401",
            {
                "mod.py": """
                    def f():
                        try:
                            return 1
                        except:
                            return 0
                """,
            },
        )
        assert any("bare" in f.message.lower() for f in findings)

    def test_silent_broad_swallow_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "E401",
            {
                "mod.py": """
                    def f():
                        try:
                            return 1
                        except Exception:
                            pass
                """,
            },
        )
        assert len(findings) == 1

    def test_broad_handler_that_reraises_clean(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "E401",
            {
                "mod.py": """
                    def f():
                        try:
                            return 1
                        except Exception:
                            raise
                """,
            },
        )

    def test_boundary_module_exempt(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "E401",
            {
                "core/pipeline.py": """
                    def f():
                        try:
                            return 1
                        except:
                            pass
                """,
            },
        )


class TestApiDriftA501:
    def test_broken_all_export_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": '__all__ = ["gone"]\n\n\ndef here():\n    return 1\n',
                "other.py": "from mod import here\n\nhere()\n",
            },
        )
        assert any("'gone'" in f.message for f in findings)

    def test_unresolvable_project_import_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": "def here():\n    return 1\n",
                "other.py": "from mod import missing\n\nmissing()\n",
            },
        )
        assert any(
            "'from mod import missing'" in f.message for f in findings
        )

    def test_unreferenced_public_symbol_flagged(self, tmp_path):
        findings = analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": "def orphan():\n    return 1\n",
            },
        )
        assert any("'orphan'" in f.message for f in findings)

    def test_symbol_referenced_by_sibling_module_clean(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": "def used():\n    return 1\n",
                "other.py": "from mod import used\n\nused()\n",
            },
        )

    def test_symbol_used_inside_own_module_clean(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": (
                    "LIMIT = 3\n\n\ndef capped(x):\n"
                    "    return min(x, LIMIT)\n\n\ncapped(1)\n"
                ),
            },
        )

    def test_symbol_referenced_from_tests_dir_clean(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "A501",
            {
                "src/mod.py": "def probed():\n    return 1\n",
                "tests/test_mod.py": (
                    "from mod import probed\n\n\ndef test_probed():\n"
                    "    assert probed() == 1\n"
                ),
            },
            scan="src",
        )

    def test_underscored_symbol_ignored(self, tmp_path):
        assert not analyze_tree(
            tmp_path,
            "A501",
            {
                "mod.py": "def _internal():\n    return 1\n",
            },
        )
