"""Tests for the extraction service and its JSON-lines request loop."""

import io
import json

import pytest

from repro.registry import WrapperRegistry
from repro.service import ExtractionService, serve_loop
from tests.conftest import FIGURE3_P1, FIGURE3_P2, FIGURE3_P3

SOD = (
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)
DICTS = {
    "artist": ["Metallica", "Coldplay", "Madonna", "Muse"],
    "theater": [
        "Madison Square Garden",
        "Bowery Ballroom",
        "The Town Hall",
        "B.B King Blues and Grill",
    ],
}
PAGES = [FIGURE3_P1, FIGURE3_P2, FIGURE3_P3]


def extract_request(request_id, source="req"):
    return {
        "id": request_id,
        "sod": SOD,
        "pages": PAGES,
        "dicts": DICTS,
        "source": source,
    }


@pytest.fixture()
def service(tmp_path):
    return ExtractionService(WrapperRegistry(tmp_path))


class TestExtractionService:
    def test_cold_then_warm_identical_objects(self, service):
        cold = service.handle(extract_request(1, source="cold"))
        warm = service.handle(extract_request(2, source="warm"))
        assert cold["ok"] and cold["outcome"] == "miss"
        assert warm["ok"] and warm["outcome"] == "hit"
        assert warm["objects"] == cold["objects"]
        assert cold["objects"][0]["artist"] == "Metallica"

    def test_runners_are_memoized_per_sod_and_dicts(self, service):
        service.handle(extract_request(1))
        service.handle(extract_request(2))
        assert service.stats()["runners"] == 1
        other = extract_request(3)
        other["dicts"] = {"artist": ["Metallica"]}
        service.handle(other)
        assert service.stats()["runners"] == 2

    def test_stats_counters(self, service):
        service.handle(extract_request(1))
        service.handle(extract_request(2))
        stats = service.handle({"id": 3, "cmd": "stats"})["stats"]
        assert stats["requests"] == 2
        assert stats["requests_failed"] == 0
        assert stats["registry"]["hits"] == 1
        assert stats["registry"]["misses"] == 1
        assert stats["registry"]["stores"] == 1

    def test_request_validation(self, service):
        assert not service.handle({"id": 1, "pages": PAGES})["ok"]
        assert not service.handle({"id": 2, "sod": SOD, "pages": []})["ok"]
        assert not service.handle({"id": 3, "cmd": "bogus"})["ok"]
        assert not service.handle(["not", "an", "object"])["ok"]

    def test_errors_are_isolated_per_request(self, service):
        broken = extract_request(1)
        broken["sod"] = "broken(("
        response = service.handle(broken)
        assert response["ok"] is False
        assert response["id"] == 1
        assert "error" in response
        # The loop survives: the next request still extracts.
        assert service.handle(extract_request(2))["ok"]
        assert service.stats()["requests_failed"] == 1

    def test_bad_dicts_rejected(self, service):
        request = extract_request(1)
        request["dicts"] = ["not", "a", "mapping"]
        assert service.handle(request)["ok"] is False


class TestServeLoop:
    def run_loop(self, tmp_path, requests, extra_text=""):
        stdin = io.StringIO(
            "\n".join(json.dumps(r) for r in requests) + "\n" + extra_text
        )
        stdout = io.StringIO()
        served = serve_loop(WrapperRegistry(tmp_path), stdin, stdout)
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        return served, responses

    def test_cold_warm_stats_shutdown(self, tmp_path):
        served, responses = self.run_loop(
            tmp_path,
            [
                extract_request(1, source="cold"),
                extract_request(2, source="warm"),
                {"id": 3, "cmd": "stats"},
                {"id": 4, "cmd": "shutdown"},
            ],
        )
        assert served == 4
        cold, warm, stats, bye = responses
        assert cold["outcome"] == "miss" and warm["outcome"] == "hit"
        assert warm["objects"] == cold["objects"]
        assert stats["stats"]["registry"]["hits"] == 1
        assert bye["shutdown"] is True

    def test_shutdown_stops_reading(self, tmp_path):
        served, responses = self.run_loop(
            tmp_path,
            [{"id": 1, "cmd": "shutdown"}, {"id": 2, "cmd": "stats"}],
        )
        assert served == 1
        assert len(responses) == 1

    def test_invalid_json_line_gets_error_response(self, tmp_path):
        served, responses = self.run_loop(
            tmp_path,
            [{"id": 1, "cmd": "stats"}],
            extra_text="{definitely not json\n",
        )
        assert served == 1
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        assert "not valid JSON" in responses[1]["error"]

    def test_blank_lines_are_skipped(self, tmp_path):
        stdin = io.StringIO('\n\n{"id": 1, "cmd": "stats"}\n\n')
        stdout = io.StringIO()
        served = serve_loop(WrapperRegistry(tmp_path), stdin, stdout)
        assert served == 1

    def test_eof_without_shutdown_ends_loop(self, tmp_path):
        served, responses = self.run_loop(tmp_path, [{"id": 1, "cmd": "stats"}])
        assert served == 1
        assert responses[-1].get("shutdown") is None


class TestProtocolEdges:
    """Malformed protocol input: typed errors, loop alive, counters sane."""

    def run_lines(self, tmp_path, lines):
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        served = serve_loop(WrapperRegistry(tmp_path), stdin, stdout)
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        return served, responses

    def test_truncated_json_line_keeps_loop_alive(self, tmp_path):
        served, responses = self.run_lines(
            tmp_path,
            [
                '{"id": 1, "cmd": "sta',  # truncated mid-object
                json.dumps({"id": 2, "cmd": "stats"}),
                json.dumps({"id": 3, "cmd": "shutdown"}),
            ],
        )
        truncated, stats, bye = responses
        assert truncated["ok"] is False
        assert truncated["id"] is None
        assert "not valid JSON" in truncated["error"]
        # The garbage line was never a served request, and no extraction
        # was attempted or failed on its account.
        assert served == 2
        assert stats["stats"]["requests"] == 0
        assert stats["stats"]["requests_failed"] == 0
        assert bye["shutdown"] is True

    def test_non_dict_payload_gets_typed_error(self, tmp_path):
        served, responses = self.run_lines(
            tmp_path,
            [
                json.dumps(["not", "an", "object"]),
                json.dumps('"just a string"'),
                json.dumps({"id": 2, "cmd": "stats"}),
            ],
        )
        assert served == 3
        for response in responses[:2]:
            assert response["ok"] is False
            assert response["id"] is None
            assert "must be a JSON object" in response["error"]
        assert responses[2]["ok"] is True
        assert responses[2]["stats"]["requests"] == 0

    def test_unknown_request_keys_rejected_with_names(self, tmp_path):
        served, responses = self.run_lines(
            tmp_path,
            [
                json.dumps({"id": 7, "cmd": "stats", "verbose": True}),
                json.dumps({"id": 8, "sod": "a(b)", "payges": []}),
                json.dumps({"id": 9, "cmd": "stats"}),
            ],
        )
        assert served == 3
        first, second, stats = responses
        assert first["ok"] is False and first["id"] == 7
        assert "'verbose'" in first["error"]
        assert second["ok"] is False and second["id"] == 8
        assert "'payges'" in second["error"]
        assert "known:" in second["error"]
        # Rejected-before-dispatch requests never reach the extraction
        # counters, and nothing counts as an internal failure.
        assert stats["stats"]["requests"] == 0
        assert stats["stats"]["requests_failed"] == 0

    def test_loop_survives_mixed_garbage_then_extracts(self, tmp_path):
        served, responses = self.run_lines(
            tmp_path,
            [
                '{"broken',
                json.dumps([1, 2]),
                json.dumps({"id": 1, "bogus_key": 1}),
                json.dumps(extract_request(2, source="after-garbage")),
            ],
        )
        assert served == 3  # bad-JSON line is not a served request
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert responses[-1]["outcome"] == "miss"
        assert responses[-1]["objects"]
