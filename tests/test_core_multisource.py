"""Tests for multi-source runs with cross-source de-duplication."""

import pytest

from repro.core import ObjectRunner
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec


@pytest.fixture(scope="module")
def two_sources():
    """Two album sites rendering overlapping gold objects."""
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    # Same seed -> same gold objects, different site names -> different
    # markup styles: the redundant-Web situation.
    shared = dict(
        domain="albums", archetype="clean", total_objects=30, seed="multi"
    )
    spec_a = SiteSpec(name="storeA", **shared)
    spec_b = SiteSpec(name="storeB", **shared)
    source_a = generate_source(spec_a, domain)
    source_b = generate_source(spec_b, domain)
    return domain, knowledge, source_a, source_b


class TestRunSources:
    def test_all_sources_processed(self, two_sources):
        domain, knowledge, source_a, source_b = two_sources
        runner = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        )
        outcome = runner.run_sources(
            {"storeA": source_a.pages, "storeB": source_b.pages}
        )
        assert outcome.sources_ok == 2
        assert len(outcome.objects) == 60  # 30 + 30, no dedup requested

    def test_cross_source_dedup(self, two_sources):
        # A mirror site carrying exactly the same items: the redundant-Web
        # situation dedup exists for.
        domain, knowledge, source_a, __ = two_sources
        runner = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        )
        outcome = runner.run_sources(
            {"storeA": source_a.pages, "storeA-mirror": source_a.pages},
            deduplicate_across=True,
            dedup_keys=("title", "artist"),
        )
        assert outcome.duplicates_merged >= 25
        assert len(outcome.objects) <= 35

    def test_discarded_source_does_not_block_others(self, two_sources):
        domain, knowledge, source_a, __ = two_sources
        runner = ObjectRunner(
            domain.sod,
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        )
        outcome = runner.run_sources(
            {
                "storeA": source_a.pages,
                "junk": ["<html><body><p>nothing</p></body></html>"] * 3,
            }
        )
        assert outcome.sources_ok == 1
        assert outcome.sources_discarded == 1
        assert len(outcome.objects) == 30
