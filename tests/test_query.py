"""Tests for the phase-two query engine."""

import pytest

from repro.errors import ReproError
from repro.query import Query, coerce_date, coerce_number
from repro.sod.instances import ObjectInstance


def albums():
    rows = [
        {"title": "Silent Rivers", "artist": "Neon Foxes", "price": "$12.99",
         "date": "March 4, 2008"},
        {"title": "Golden Horizon", "artist": "Crimson Arcade", "price": "$8.50",
         "date": "July 19, 2010"},
        {"title": "Paper Kingdom", "artist": "Neon Foxes", "price": "$25.00",
         "date": "May 2, 1999"},
        {"title": "Restless Echoes", "artist": "The Crimson Wolves",
         "price": "$19.99"},
    ]
    return [ObjectInstance(values=row) for row in rows]


class TestCoercion:
    def test_coerce_number(self):
        assert coerce_number("$12.99") == 12.99
        assert coerce_number("$1,250.00") == 1250.0
        assert coerce_number("no digits") is None

    def test_coerce_date(self):
        assert coerce_date("March 4, 2008") == (2008, 3, 4)
        assert coerce_date("Saturday May 29 7:00p") == (0, 5, 29)
        assert coerce_date("not a date") is None


class TestWhere:
    def test_equality_normalized(self):
        matched = Query(albums()).where("artist", "=", "neon  foxes").all()
        assert len(matched) == 2

    def test_inequality(self):
        matched = Query(albums()).where("artist", "!=", "Neon Foxes").all()
        assert len(matched) == 2

    def test_contains(self):
        matched = Query(albums()).where("artist", "contains", "crimson").all()
        assert {m.values["title"] for m in matched} == {
            "Golden Horizon",
            "Restless Echoes",
        }

    def test_numeric_comparison(self):
        cheap = Query(albums()).where("price", "<", 15).all()
        assert {m.values["title"] for m in cheap} == {
            "Silent Rivers",
            "Golden Horizon",
        }

    def test_exists(self):
        dated = Query(albums()).where("date", "exists").all()
        assert len(dated) == 3

    def test_chained_filters_conjunction(self):
        matched = (
            Query(albums())
            .where("artist", "=", "Neon Foxes")
            .where("price", ">", 20)
            .all()
        )
        assert [m.values["title"] for m in matched] == ["Paper Kingdom"]

    def test_unknown_operator(self):
        with pytest.raises(ReproError):
            Query(albums()).where("price", "~~", 1)

    def test_missing_attribute_never_matches_comparison(self):
        matched = Query(albums()).where("date", "<", 2000).all()
        # Only real dates participate; the date-less album is excluded.
        assert all("date" in m.values for m in matched)


class TestOrderAndProject:
    def test_order_by_price(self):
        ordered = Query(albums()).order_by("price").all()
        prices = [m.values["price"] for m in ordered]
        assert prices == ["$8.50", "$12.99", "$19.99", "$25.00"]

    def test_order_by_date(self):
        ordered = Query(albums()).where("date", "exists").order_by("date").all()
        assert [m.values["date"] for m in ordered] == [
            "May 2, 1999",
            "March 4, 2008",
            "July 19, 2010",
        ]

    def test_order_descending_and_limit(self):
        top = Query(albums()).order_by("price", descending=True).limit(2).all()
        assert [m.values["title"] for m in top] == ["Paper Kingdom", "Restless Echoes"]

    def test_select(self):
        rows = (
            Query(albums())
            .where("price", "<", 10)
            .select("title", "price")
        )
        assert rows == [{"title": "Golden Horizon", "price": "$8.50"}]

    def test_count_and_first(self):
        query = Query(albums()).where("artist", "contains", "crimson")
        assert query.count() == 2
        assert query.first() is not None

    def test_first_on_empty(self):
        assert Query(albums()).where("title", "=", "nope").first() is None


class TestImmutability:
    def test_clauses_do_not_mutate(self):
        base = Query(albums())
        narrowed = base.where("price", "<", 10)
        assert base.count() == 4
        assert narrowed.count() == 1

    def test_nested_values_flatten(self):
        concert = ObjectInstance(
            values={
                "artist": "Muse",
                "location": {"theater": "MSG", "address": "4 Penn Plaza"},
            }
        )
        matched = Query([concert]).where("theater", "=", "MSG").all()
        assert matched

    def test_set_values_any_semantics(self):
        book = ObjectInstance(values={"title": "T", "authors": ["A B", "C D"]})
        assert Query([book]).where("authors", "=", "C D").count() == 1


class TestAggregates:
    def test_distinct(self):
        artists = Query(albums()).distinct("artist")
        assert artists == ["Neon Foxes", "Crimson Arcade", "The Crimson Wolves"]

    def test_distinct_normalized_dedup(self):
        objects = albums() + [ObjectInstance(values={"artist": "NEON  FOXES"})]
        artists = Query(objects).distinct("artist")
        assert artists.count("Neon Foxes") == 1
        assert "NEON  FOXES" not in artists

    def test_group_by_counts(self):
        groups = Query(albums()).group_by("artist")
        assert len(groups["neon foxes"]) == 2
        assert len(groups["crimson arcade"]) == 1

    def test_group_by_missing_attribute(self):
        groups = Query(albums()).group_by("date")
        assert len(groups.get("", [])) == 1  # the undated album

    def test_group_by_respects_filters(self):
        groups = Query(albums()).where("price", ">", 15).group_by("artist")
        assert set(groups) == {"neon foxes", "the crimson wolves"}
