"""Tests for domain-level metric aggregation."""

import warnings

import pytest

from repro.eval.classify import SourceEvaluation
from repro.eval.metrics import aggregate_domain
from repro.metrics import default_registry


def evaluation(correct, partial, incorrect, attrs=("correct",), discarded=False):
    e = SourceEvaluation(source="s", system="sys")
    e.objects_total = correct + partial + incorrect
    e.objects_correct = correct
    e.objects_partial = partial
    e.objects_incorrect = incorrect
    e.discarded = discarded
    for index, status in enumerate(attrs):
        e.attribute_class[f"attr{index}"] = status
    return e


class TestAggregation:
    def test_pooled_precision(self):
        metrics = aggregate_domain(
            "albums",
            "sys",
            [evaluation(80, 0, 20), evaluation(0, 100, 0)],
        )
        assert metrics.objects_total == 200
        assert metrics.precision_correct == 0.4
        assert metrics.precision_partial == 0.9

    def test_rates_sum_to_one(self):
        metrics = aggregate_domain(
            "albums", "sys", [evaluation(50, 30, 20)]
        )
        total = (
            metrics.correct_rate + metrics.partial_rate + metrics.incorrect_rate
        )
        assert abs(total - 1.0) < 1e-9

    def test_missed_objects_count_incorrect(self):
        e = evaluation(5, 0, 0)
        e.objects_total = 10  # five objects never extracted
        metrics = aggregate_domain("albums", "sys", [e])
        assert metrics.incorrect_rate == 0.5

    def test_incomplete_source_rate(self):
        clean = evaluation(10, 0, 0, attrs=("correct", "correct"))
        partial = evaluation(0, 10, 0, attrs=("correct", "partial"))
        failed = evaluation(0, 0, 10, attrs=("incorrect",))
        metrics = aggregate_domain("albums", "sys", [clean, partial, failed])
        assert metrics.incomplete_source_rate == 2 / 3

    def test_discarded_counts_incomplete(self):
        discarded = evaluation(0, 0, 10, attrs=("incorrect",), discarded=True)
        metrics = aggregate_domain("albums", "sys", [discarded])
        assert metrics.incomplete_source_rate == 1.0

    def test_zero_gold_sources_excluded_from_rate(self):
        # A correctly-discarded unstructured source (no gold) does not make
        # the system's handling "incomplete".
        junk = evaluation(0, 0, 0, attrs=("correct",), discarded=True)
        clean = evaluation(10, 0, 0, attrs=("correct",))
        metrics = aggregate_domain("albums", "sys", [junk, clean])
        assert metrics.incomplete_source_rate == 0.0

    def test_empty_domain(self):
        metrics = aggregate_domain("albums", "sys", [])
        assert metrics.precision_correct == 0.0
        assert metrics.incomplete_source_rate == 0.0


class TestNegativeMissedClamp:
    """Regression: the clamp to zero missed objects must not be silent."""

    def over_counted(self):
        # Grader accounted for 12 objects against a gold total of 10.
        e = evaluation(6, 3, 3)
        e.objects_total = 10
        return aggregate_domain("albums", "sys", [e])

    def test_clamp_warns_and_counts(self):
        metrics = self.over_counted()
        before = default_registry().counter_value("eval.negative_missed")
        with pytest.warns(UserWarning, match="over-counting"):
            rate = metrics.incorrect_rate
        assert rate == 0.3  # incorrect only; missed clamped to 0
        after = default_registry().counter_value("eval.negative_missed")
        assert after == before + 1

    def test_consistent_grading_does_not_warn(self):
        metrics = aggregate_domain("albums", "sys", [evaluation(5, 3, 2)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert metrics.incorrect_rate == 0.2
