"""Tests for entity pools."""

from repro.datasets import pools
from repro.utils.rng import DeterministicRng


class TestPools:
    def test_deterministic(self):
        assert pools.artist_pool() == pools.artist_pool()
        assert pools.title_pool() == pools.title_pool()

    def test_distinct_values(self):
        for pool in (
            pools.artist_pool(),
            pools.venue_pool(),
            pools.person_pool(),
            pools.title_pool(),
            pools.publication_title_pool(),
            pools.car_brand_pool(),
        ):
            assert len(pool) == len(set(pool))

    def test_sizes(self):
        assert len(pools.artist_pool(50)) == 50
        assert len(pools.person_pool(100)) == 100

    def test_values_nonempty_and_multiword_ish(self):
        for value in pools.venue_pool(30):
            assert value.strip()
            assert len(value.split()) >= 2

    def test_different_seeds_differ(self):
        assert pools.artist_pool(seed="a") != pools.artist_pool(seed="b")


class TestValueGenerators:
    def test_street_address_shape(self):
        rng = DeterministicRng(1)
        address = pools.street_address(rng)
        parts = address.split()
        assert parts[0].isdigit()
        assert len(parts) >= 3

    def test_city_state_zip(self):
        rng = DeterministicRng(2)
        city, state, zip_code = pools.city_state_zip(rng)
        assert city and state
        assert len(zip_code) == 5 and zip_code.isdigit()

    def test_event_date_recognizable(self):
        from repro.recognizers.predefined import predefined_recognizer

        rng = DeterministicRng(3)
        recognizer = predefined_recognizer("date")
        for __ in range(20):
            date = pools.event_date(rng, with_year=rng.coin(0.5))
            assert recognizer.find(date), date

    def test_release_date_recognizable(self):
        from repro.recognizers.predefined import predefined_recognizer

        rng = DeterministicRng(4)
        recognizer = predefined_recognizer("date")
        for __ in range(20):
            assert recognizer.find(pools.release_date(rng))

    def test_price_recognizable(self):
        from repro.recognizers.predefined import predefined_recognizer

        rng = DeterministicRng(5)
        recognizer = predefined_recognizer("price")
        for __ in range(20):
            assert recognizer.find(pools.price(rng))
            assert recognizer.find(pools.car_price(rng))

    def test_price_bounds(self):
        rng = DeterministicRng(6)
        for __ in range(20):
            value = float(pools.price(rng, 5.0, 60.0).lstrip("$"))
            assert 5.0 <= value <= 60.0
