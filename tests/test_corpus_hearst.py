"""Tests for Hearst pattern matching."""

from repro.corpus.hearst import HearstPattern, default_patterns, find_matches
from repro.corpus.store import Corpus


class TestPatterns:
    def test_such_as(self):
        corpus = Corpus(["Artists such as Metallica are loud."])
        matches = find_matches(corpus, "Artist")
        assert {m.instance for m in matches} == {"Metallica"}

    def test_is_a(self):
        corpus = Corpus(["Coldplay is a Band from London."])
        matches = find_matches(corpus, "Band")
        assert {m.instance for m in matches} == {"Coldplay"}

    def test_and_other(self):
        corpus = Corpus(["Muse and other Bands toured."])
        matches = find_matches(corpus, "Band")
        assert {m.instance for m in matches} == {"Muse"}

    def test_plural_type_matched(self):
        corpus = Corpus(["Bands including Radiohead played."])
        assert find_matches(corpus, "Band")

    def test_enumeration_split(self):
        corpus = Corpus(["Bands such as Muse, Coldplay and Radiohead played."])
        matches = find_matches(corpus, "Band")
        assert {m.instance for m in matches} >= {"Muse", "Coldplay", "Radiohead"}

    def test_enumeration_kept_whole_when_disabled(self):
        corpus = Corpus(["Bands such as Muse and Coldplay played."])
        matches = find_matches(corpus, "Band", split_enumerations=False)
        assert any("Muse and Coldplay" in m.instance for m in matches)

    def test_multiword_instance(self):
        corpus = Corpus(["Venues such as Madison Square Garden are big."])
        matches = find_matches(corpus, "Venue")
        assert {m.instance for m in matches} == {"Madison Square Garden"}

    def test_lowercase_candidates_rejected(self):
        corpus = Corpus(["Bands such as whoever are unknown."])
        assert find_matches(corpus, "Band") == []

    def test_type_name_itself_not_an_instance(self):
        corpus = Corpus(["Bands such as Bands exist."])
        matches = find_matches(corpus, "Band")
        assert all(m.instance.lower() != "band" for m in matches)

    def test_pattern_name_recorded(self):
        corpus = Corpus(["Artists such as Prince Clone performed."])
        matches = find_matches(corpus, "Artist")
        assert matches[0].pattern == "such-as"

    def test_custom_pattern(self):
        corpus = Corpus(["my favourite Band, namely Muse, played."])
        pattern = HearstPattern("namely", "{type}, namely {x}")
        matches = find_matches(corpus, "Band", patterns=[pattern])
        assert {m.instance for m in matches} == {"Muse"}

    def test_no_matches_in_irrelevant_corpus(self):
        corpus = Corpus(["The weather was nice today."])
        assert find_matches(corpus, "Band") == []

    def test_default_patterns_cover_classics(self):
        names = {pattern.name for pattern in default_patterns()}
        assert {"such-as", "including", "and-other", "is-a"} <= names
