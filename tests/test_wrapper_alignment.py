"""Tests for the template-building aligner (role differentiation)."""

from repro.annotation.annotator import annotate_page
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.wrapper.alignment import TemplateBuilder, common_affixes, strip_affixes
from repro.wrapper.template import (
    ElementTemplate,
    FieldSlot,
    IteratorSlot,
    StaticSlot,
)


def records_from(sources, recognizers=None):
    """Each source is one record: a single <li> body child."""
    records = []
    for source in sources:
        root = tidy(source)
        if recognizers:
            annotate_page(root, recognizers)
        li = root.find("li")
        records.append([li])
    return records


class TestBasicAlignment:
    def test_constant_text_becomes_static(self):
        records = records_from(
            ["<li><div>In Stock</div></li>", "<li><div>In Stock</div></li>"]
        )
        template = TemplateBuilder().build(records)
        statics = [n for n in template.iter_nodes() if isinstance(n, StaticSlot)]
        assert [s.text for s in statics] == ["In Stock"]

    def test_varying_text_becomes_field(self):
        records = records_from(
            ["<li><div>Muse</div></li>", "<li><div>Coldplay</div></li>"]
        )
        template = TemplateBuilder().build(records)
        assert len(template.field_slots()) == 1

    def test_positional_differentiation(self):
        # Three same-tag divs per record: three distinct slots (<div>1..3).
        records = records_from(
            [
                "<li><div>A1</div><div>B1</div><div>C1</div></li>",
                "<li><div>A2</div><div>B2</div><div>C2</div></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        assert len(template.field_slots()) == 3

    def test_optional_column(self):
        records = records_from(
            [
                "<li><div class='a'>x1</div><div class='b'>y1</div></li>",
                "<li><div class='a'>x2</div></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        optional = [
            n
            for n in template.iter_nodes()
            if isinstance(n, ElementTemplate) and n.optional
        ]
        assert len(optional) == 1
        assert optional[0].attr_class == "b"


class TestAnnotations:
    def artist_recognizers(self):
        return [GazetteerRecognizer("artist", ["Muse", "Coldplay", "Madonna"])]

    def test_slot_inherits_annotation(self):
        records = records_from(
            ["<li><div>Muse</div></li>", "<li><div>Coldplay</div></li>"],
            self.artist_recognizers(),
        )
        template = TemplateBuilder().build(records)
        (slot,) = template.field_slots()
        assert slot.dominant_annotation() == "artist"

    def test_annotated_constant_stays_field(self):
        # The paper's "New York" case: constant but annotated -> data.
        recognizers = [GazetteerRecognizer("city", ["New York"])]
        records = records_from(
            ["<li><div>New York</div></li>", "<li><div>New York</div></li>"],
            recognizers,
        )
        template = TemplateBuilder().build(records)
        assert len(template.field_slots()) == 1
        assert not any(
            isinstance(n, StaticSlot) for n in template.iter_nodes()
        )

    def test_annotations_ignored_when_disabled(self):
        recognizers = [GazetteerRecognizer("city", ["New York"])]
        records = records_from(
            ["<li><div>New York</div></li>", "<li><div>New York</div></li>"],
            recognizers,
        )
        template = TemplateBuilder(use_annotations=False).build(records)
        assert len(template.field_slots()) == 0

    def test_incomplete_annotations_generalized(self):
        # 3 of 4 occurrences annotated (75% > 0.7 threshold).
        recognizers = [GazetteerRecognizer("artist", ["Muse", "Coldplay", "Madonna"])]
        records = records_from(
            [
                "<li><div>Muse</div></li>",
                "<li><div>Coldplay</div></li>",
                "<li><div>Madonna</div></li>",
                "<li><div>Unknown Act</div></li>",
            ],
            recognizers,
        )
        template = TemplateBuilder().build(records)
        (slot,) = template.field_slots()
        assert slot.dominant_annotation() == "artist"

    def test_conflicting_annotations_counted(self):
        artist = GazetteerRecognizer("artist", ["Muse"])
        venue = GazetteerRecognizer("venue", ["Muse"])  # ambiguous dictionary
        records = records_from(
            ["<li><div>Muse</div></li>", "<li><div>Muse</div></li>"],
            [artist, venue],
        )
        template = TemplateBuilder().build(records)
        assert template.conflicts >= 1


class TestIterators:
    def test_varying_repetition_becomes_iterator(self):
        records = records_from(
            [
                "<li><span class='a'>A</span></li>",
                "<li><span class='a'>B</span><span class='a'>C</span></li>",
                "<li><span class='a'>D</span><span class='a'>E</span>"
                "<span class='a'>F</span></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        iterators = template.iterator_slots()
        assert len(iterators) == 1
        assert iterators[0].min_repeats == 1
        assert iterators[0].max_repeats == 3

    def test_constant_repetition_stays_positional(self):
        # Always exactly two spans: two positional slots, no iterator.
        records = records_from(
            [
                "<li><span>A</span><span>B</span></li>",
                "<li><span>C</span><span>D</span></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        assert template.iterator_slots() == []
        assert len(template.field_slots()) == 2

    def test_set_level_fields_separated(self):
        records = records_from(
            [
                "<li><div class='t'>T1</div><span class='a'>A</span></li>",
                "<li><div class='t'>T2</div><span class='a'>B</span>"
                "<span class='a'>C</span></li>",
                "<li><div class='t'>T3</div><span class='a'>D</span>"
                "<span class='a'>E</span><span class='a'>F</span></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        tuple_slots = template.tuple_level_fields()
        set_slots = template.set_level_fields()
        assert len(tuple_slots) == 1
        assert sum(len(v) for v in set_slots.values()) == 1

    def test_narrow_count_range_stays_positional(self):
        # Counts of 1 vs 2 are as consistent with an optional second field
        # as with a set; without wider evidence the aligner keeps positions.
        records = records_from(
            [
                "<li><span class='a'>A</span></li>",
                "<li><span class='a'>B</span><span class='a'>C</span></li>",
                "<li><span class='a'>D</span><span class='a'>E</span></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        assert template.iterator_slots() == []
        assert len(template.field_slots()) == 2


class TestAffixes:
    def test_common_affixes(self):
        values = [["by", "Jane", "Austen"], ["by", "Mark", "Twain"]]
        assert common_affixes(values) == (1, 0)

    def test_common_suffix(self):
        values = [["5", "stars"], ["3", "stars"]]
        assert common_affixes(values) == (0, 1)

    def test_no_affixes(self):
        assert common_affixes([["a"], ["b"]]) == (0, 0)

    def test_strip_affixes(self):
        assert strip_affixes("by Jane Austen", 1, 0) == "Jane Austen"
        assert strip_affixes("5 stars", 0, 1) == "5"

    def test_strip_nothing_preserves_text(self):
        assert strip_affixes("May 11, 8:00pm", 0, 0) == "May 11, 8:00pm"

    def test_label_prefix_learned(self):
        records = records_from(
            [
                "<li><div>Price: $12.99</div></li>",
                "<li><div>Price: $5.00</div></li>",
            ]
        )
        template = TemplateBuilder().build(records)
        (slot,) = template.field_slots()
        assert slot.strip_prefix == 1
