"""End-to-end checks: every domain, every archetype outcome shape.

These are the small-scale versions of the Table I/III claims: on clean
sources ObjectRunner is fully correct; inline concatenation yields partial
objects; structural mixing yields incorrect objects; ObjectRunner never
does worse than the baselines.
"""

import pytest

from repro.baselines import ExAlgSystem, RoadRunnerSystem
from repro.core import ObjectRunnerSystem
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.eval import grade_source
from repro.htmlkit import clean_tree, tidy

DOMAIN_KWARGS = {
    "books": {"constant_record_count": 8},
    "publications": {"constant_record_count": 8},
}


def run_system(system, domain_name, archetype="clean", **kwargs):
    domain = domain_spec(domain_name)
    spec_kwargs = dict(total_objects=40, seed=("integ", domain_name, archetype))
    spec_kwargs.update(DOMAIN_KWARGS.get(domain_name, {}))
    spec_kwargs.update(kwargs)
    spec = SiteSpec(
        name=f"integ-{domain_name}-{archetype}",
        domain=domain_name,
        archetype=archetype,
        **spec_kwargs,
    )
    source = generate_source(spec, domain)
    pages = [clean_tree(tidy(raw)) for raw in source.pages]
    output = system(domain).run(spec.name, pages, domain.sod)
    return grade_source(domain, source.gold, output)


def objectrunner(domain):
    knowledge = build_knowledge(domain, coverage=0.2)
    return ObjectRunnerSystem(
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
    )


@pytest.mark.parametrize(
    "domain_name", ["concerts", "albums", "books", "publications", "cars"]
)
class TestCleanSources:
    def test_objectrunner_fully_correct(self, domain_name):
        evaluation = run_system(objectrunner, domain_name)
        assert evaluation.precision_correct == 1.0, evaluation.attribute_class

    def test_objectrunner_beats_or_ties_exalg(self, domain_name):
        ours = run_system(objectrunner, domain_name)
        theirs = run_system(lambda d: ExAlgSystem(), domain_name)
        assert ours.precision_correct >= theirs.precision_correct

    def test_objectrunner_beats_or_ties_roadrunner(self, domain_name):
        ours = run_system(objectrunner, domain_name)
        theirs = run_system(lambda d: RoadRunnerSystem(), domain_name)
        assert ours.precision_correct >= theirs.precision_correct


class TestArchetypeOutcomes:
    def test_partial_inline_yields_partial_objects(self):
        evaluation = run_system(objectrunner, "albums", archetype="partial_inline")
        assert evaluation.precision_correct == 0.0
        assert evaluation.precision_partial >= 0.9
        assert evaluation.attrs_partial >= 1

    def test_mixed_structure_yields_incorrect_attribute(self):
        evaluation = run_system(objectrunner, "albums", archetype="mixed_structure")
        assert evaluation.attrs_incorrect >= 1
        assert evaluation.precision_correct == 0.0

    def test_roadrunner_partial_on_too_regular_lists(self):
        evaluation = run_system(
            lambda d: RoadRunnerSystem(), "publications", archetype="clean"
        )
        # Constant record counts: no iterator evidence, objects split over
        # distinct fields -> partially correct at best.
        assert evaluation.precision_correct == 0.0
        assert evaluation.precision_partial > 0.5

    def test_detail_pages_extracted(self):
        evaluation = run_system(
            objectrunner, "concerts", page_type="detail", total_objects=25
        )
        assert evaluation.precision_correct == 1.0


class TestIrrelevantSod:
    def test_wrong_domain_sod_discards_source(self):
        # Self-validation: a cars SOD pointed at an album site must not
        # hallucinate cars — the partial-match gate discards the source
        # because no brand annotation ever appears.
        cars = domain_spec("cars")
        albums_spec = SiteSpec(
            name="integ-wrongdomain",
            domain="albums",
            archetype="clean",
            total_objects=40,
            seed=("integ", "wrongdomain"),
        )
        source = generate_source(albums_spec, domain_spec("albums"))
        knowledge = build_knowledge(cars, coverage=0.5)
        system = ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=cars.gazetteer_classes,
        )
        pages = [clean_tree(tidy(raw)) for raw in source.pages]
        output = system.run(albums_spec.name, pages, cars.sod)
        assert output.failed, "irrelevant source must be discarded, not wrapped"
