"""Tests for Str-ICNorm-Thresh scoring (paper Eq. 1)."""

from repro.corpus.hearst import find_matches
from repro.corpus.scoring import StrICNormThresh, _percentile_25, score_candidates
from repro.corpus.store import Corpus


def build_corpus(sentences):
    return Corpus(sentences)


class TestPercentile:
    def test_empty(self):
        assert _percentile_25([]) == 1

    def test_single(self):
        assert _percentile_25([4]) == 4

    def test_quartile(self):
        assert _percentile_25([1, 2, 3, 4]) == 1
        assert _percentile_25([10, 20, 30, 40, 50, 60, 70, 80]) == 20

    def test_minimum_one(self):
        assert _percentile_25([0, 0, 0, 0]) == 1


class TestScoring:
    def test_pattern_share_of_mentions_decides(self):
        # Muse: every mention is a pattern hit.  Oddity: one pattern hit
        # among many plain mentions -> lower Eq. 1 confidence.
        corpus = build_corpus(
            [
                "Bands such as Muse played.",
                "Bands such as Muse toured.",
                "Bands such as Muse released records.",
                "Bands such as Oddity played.",
                "Oddity was mentioned on the radio.",
                "The article about Oddity ran long.",
                "Oddity again, in passing.",
            ]
        )
        scores = score_candidates(corpus, find_matches(corpus, "Band"))["Band"]
        assert scores["Muse"] > scores["Oddity"]

    def test_common_string_damped(self):
        # "Paris" appears everywhere (high count(i)), so even with one
        # pattern hit its score sinks below an equally-hit rare string.
        sentences = ["Bands such as Paris played.", "Bands such as Zyx played."]
        sentences += ["Paris is lovely in spring."] * 20
        corpus = build_corpus(sentences)
        scores = score_candidates(corpus, find_matches(corpus, "Band"))["Band"]
        assert scores["Zyx"] > scores["Paris"]

    def test_score_zero_for_unseen_pair(self):
        corpus = build_corpus(["Bands such as Muse played."])
        scorer = StrICNormThresh(corpus)
        scorer.ingest(find_matches(corpus, "Band"))
        assert scorer.score("Nobody", "Band", count25=1) == 0.0

    def test_scores_positive_for_real_matches(self):
        corpus = build_corpus(["Artists such as Prince Clone performed."])
        scores = score_candidates(corpus, find_matches(corpus, "Artist"))["Artist"]
        assert all(value > 0 for value in scores.values())

    def test_multiple_types_scored_separately(self):
        corpus = build_corpus(
            [
                "Bands such as Muse played.",
                "Venues such as Fillmore Hall hosted.",
            ]
        )
        matches = find_matches(corpus, "Band") + find_matches(corpus, "Venue")
        by_type = score_candidates(corpus, matches)
        assert "Muse" in by_type["Band"]
        assert "Fillmore Hall" in by_type["Venue"]
        assert "Muse" not in by_type["Venue"]

    def test_empty_matches(self):
        corpus = build_corpus(["nothing relevant"])
        assert score_candidates(corpus, []) == {}
