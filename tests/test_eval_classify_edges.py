"""Edge cases of the grading scheme."""

from repro.baselines.interface import SystemOutput, TableRecord
from repro.datasets.domains import domain_spec
from repro.datasets.golden import GoldObject
from repro.eval.classify import grade_source
from repro.sod.instances import ObjectInstance

DOMAIN = domain_spec("albums")


def gold(title, artist, price, date=None, page_index=0):
    values = {"title": title, "artist": artist, "price": price}
    if date:
        values["date"] = date
    return GoldObject(
        values=values,
        flat={k: [v] for k, v in values.items()},
        page_index=page_index,
    )


def labelled(rows):
    return SystemOutput(
        system="objectrunner",
        source="s",
        objects=[
            ObjectInstance(values=values, page_index=page) for page, values in rows
        ],
    )


class TestEmptyAndDegenerate:
    def test_no_gold_objects(self):
        output = labelled([(0, {"title": "x"})])
        evaluation = grade_source(DOMAIN, [], output)
        assert evaluation.objects_total == 0
        assert evaluation.precision_correct == 0.0

    def test_no_output_rows(self):
        evaluation = grade_source(
            DOMAIN, [gold("T", "A", "$1")], labelled([])
        )
        assert evaluation.objects_incorrect == 1

    def test_extra_hallucinated_rows_do_not_add_credit(self):
        rows = [(0, {"title": "T", "artist": "A", "price": "$1"})]
        rows += [(0, {"title": f"Ghost {i}", "artist": "?", "price": "$9"})
                 for i in range(5)]
        evaluation = grade_source(DOMAIN, [gold("T", "A", "$1")], labelled(rows))
        assert evaluation.objects_total == 1
        assert evaluation.objects_correct == 1

    def test_rows_on_wrong_page_not_matched(self):
        rows = [(3, {"title": "T", "artist": "A", "price": "$1"})]
        evaluation = grade_source(
            DOMAIN, [gold("T", "A", "$1", page_index=0)], labelled(rows)
        )
        # Page-scoped matching: right values, wrong page -> no credit.
        assert evaluation.objects_correct == 0


class TestOptionalAttributeGrading:
    def test_extracted_value_for_absent_gold_is_not_penalized(self):
        # Gold has no date; the system extracted something date-like from
        # noise.  The attribute is ungraded (absent), per the paper's
        # denominator conventions.
        rows = [(0, {"title": "T", "artist": "A", "price": "$1",
                     "date": "May 2010"})]
        evaluation = grade_source(DOMAIN, [gold("T", "A", "$1")], labelled(rows))
        assert evaluation.attribute_class["date"] == "absent"
        assert evaluation.objects_correct == 1

    def test_partially_present_optional_counted_where_present(self):
        golds = [
            gold("T1", "A1", "$1", date="May 1, 2010", page_index=0),
            gold("T2", "A2", "$2", page_index=0),
        ]
        rows = [
            (0, {"title": "T1", "artist": "A1", "price": "$1",
                 "date": "May 1, 2010"}),
            (0, {"title": "T2", "artist": "A2", "price": "$2"}),
        ]
        evaluation = grade_source(DOMAIN, golds, labelled(rows))
        assert evaluation.attribute_class["date"] == "correct"
        assert evaluation.objects_correct == 2


class TestAffixStrippingForBaselines:
    def test_constant_label_prefix_forgiven(self):
        golds = [
            gold("T1", "A1", "$1.00", page_index=0),
            gold("T2", "A2", "$2.00", page_index=0),
            gold("T3", "A3", "$3.00", page_index=0),
        ]
        records = [
            TableRecord(
                columns={0: [f"T{i}"], 1: [f"A{i}"], 2: [f"Price: ${i}.00"]},
                page_index=0,
            )
            for i in (1, 2, 3)
        ]
        output = SystemOutput(system="roadrunner", source="s", records=records)
        evaluation = grade_source(DOMAIN, golds, output)
        assert evaluation.attribute_class["price"] == "correct"

    def test_varying_noise_not_forgiven(self):
        golds = [
            gold("T1", "A1", "$1.00", page_index=0),
            gold("T2", "A2", "$2.00", page_index=0),
            gold("T3", "A3", "$3.00", page_index=0),
        ]
        noise = ["Hot deal", "Last copy", "Members only"]
        records = [
            TableRecord(
                columns={0: [f"T{i}"], 1: [f"A{i}"],
                         2: [f"${i}.00 {noise[i - 1]}"]},
                page_index=0,
            )
            for i in (1, 2, 3)
        ]
        output = SystemOutput(system="roadrunner", source="s", records=records)
        evaluation = grade_source(DOMAIN, golds, output)
        assert evaluation.attribute_class["price"] == "incorrect"


class TestAttributeThreshold:
    def test_ninety_percent_rule(self):
        golds = [gold(f"T{i}", f"A{i}", f"${i}.00", page_index=0) for i in range(20)]
        rows = []
        for i in range(20):
            title = f"T{i}" if i != 0 else "wrong"
            rows.append((0, {"title": title, "artist": f"A{i}", "price": f"${i}.00"}))
        evaluation = grade_source(DOMAIN, golds, labelled(rows))
        # 19/20 = 95% correct -> attribute still classified correct.
        assert evaluation.attribute_class["title"] == "correct"
        assert evaluation.objects_correct == 19
