"""Tests for selectivity and page-score estimates (Eq. 2 / Eq. 3)."""

from repro.annotation.selectivity import (
    min_page_score,
    page_score,
    type_selectivity,
)
from repro.recognizers.base import Match
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_recognizer


def match(value, confidence=1.0, type_name="t"):
    return Match(0, len(value), value, type_name, confidence)


class TestTypeSelectivity:
    def test_gazetteer_uses_eq2(self):
        gazetteer = GazetteerRecognizer("artist", {"A": 1.0, "B": 0.5})
        # (1.0/1 + 0.5/1) / 2 entries
        assert type_selectivity(gazetteer) == 0.75

    def test_term_frequency_damps(self):
        gazetteer = GazetteerRecognizer("artist", {"Common": 1.0})
        high_tf = type_selectivity(gazetteer, term_frequency=lambda v: 10.0)
        low_tf = type_selectivity(gazetteer, term_frequency=lambda v: 1.0)
        assert high_tf < low_tf

    def test_empty_gazetteer_zero(self):
        assert type_selectivity(GazetteerRecognizer("t", {})) == 0.0

    def test_regex_recognizer_uses_weight(self):
        recognizer = predefined_recognizer("isbn")
        assert type_selectivity(recognizer) == recognizer.selectivity_weight()


class TestPageScore:
    def test_sums_confidences(self):
        matches = [match("A", 0.5), match("B", 0.7)]
        assert page_score(matches) == 1.2

    def test_term_frequency_division(self):
        matches = [match("Common", 1.0)]
        assert page_score(matches, term_frequency=lambda v: 4.0) == 0.25

    def test_empty(self):
        assert page_score([]) == 0.0


class TestMinPageScore:
    def test_minimum_over_types(self):
        scores = {"artist": 3.0, "date": 1.0}
        assert min_page_score(scores, ["artist", "date"]) == 1.0

    def test_missing_type_scores_zero(self):
        scores = {"artist": 3.0}
        assert min_page_score(scores, ["artist", "date"]) == 0.0

    def test_no_processed_types(self):
        assert min_page_score({"artist": 3.0}, []) == 0.0
