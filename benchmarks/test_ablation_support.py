"""Appendix-B ablation — the support parameter and its automatic variation.

The paper varies the support (minimal number of pages in which a token
must appear, 3-5) and re-executes when conflicting annotations indicate a
poor wrapper; the automatic loop "improved significantly the precision on
publication sources".  This bench runs fixed supports against the
auto-variation loop on the publication sources.
"""

from benchmarks.harness import (
    BENCH_SCALE,
    domain_spec,
    grade_source,
    make_system,
    pages_for,
    source_for,
)
from repro.core import RunParams
from repro.datasets import catalog_entries

FIXED_SUPPORTS = (3, 4, 5)


def _publication_entries():
    return [
        entry
        for entry in catalog_entries(scale=BENCH_SCALE)
        if entry.spec.domain == "publications"
        and entry.spec.archetype == "clean"
    ]


def _run(params: RunParams) -> float:
    total_correct = 0
    total = 0
    for entry in _publication_entries():
        domain = domain_spec("publications")
        source = source_for(entry)
        pages = pages_for(entry)
        system = make_system("objectrunner", entry, params=params)
        output = system.run(entry.spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        total_correct += evaluation.objects_correct
        total += evaluation.objects_total
    return total_correct / total if total else 0.0


def test_support_parameter_ablation(benchmark):
    def sweep():
        results = {
            f"support={support}": _run(
                RunParams(support_values=(support,))
            )
            for support in FIXED_SUPPORTS
        }
        results["auto (3-5)"] = _run(RunParams(support_values=(3, 4, 5)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"APPENDIX B (scale={BENCH_SCALE}) — publications Pc vs support")
    print("=" * 60)
    for label, precision in results.items():
        print(f"{label:<16}{precision:>8.2f}")

    # The auto-variation loop does at least as well as every fixed choice.
    auto = results["auto (3-5)"]
    for support in FIXED_SUPPORTS:
        assert auto >= results[f"support={support}"] - 1e-9
    assert auto >= 0.6
