"""Parallel multi-source execution: correctness and wall-clock.

``RunParams.max_workers`` runs independent sources concurrently on a
thread pool.  Correctness bar: the parallel run must be byte-identical to
the serial run (same objects, same order).  Wall-clock is reported for
both; on a GIL-bound CPython the pure-Python stages serialize on the
interpreter lock, so the assertion only requires that parallelism never
costs meaningfully more than serial — on free-threaded builds the same
code scales with cores.
"""

import json
import time

from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec

SOURCE_COUNT = 6


def _make_sources():
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)
    sources = {}
    for index in range(SOURCE_COUNT):
        spec = SiteSpec(
            name=f"parbench-{index}",
            domain="albums",
            archetype="clean",
            total_objects=25,
            seed=("parbench", index),
        )
        sources[spec.name] = generate_source(spec, domain).pages
    return domain, knowledge, sources


def _run(domain, knowledge, sources, max_workers):
    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(max_workers=max_workers),
    )
    started = time.perf_counter()
    outcome = runner.run_sources(sources)
    return outcome, time.perf_counter() - started


def test_parallel_matches_serial_and_reports_wallclock():
    domain, knowledge, sources = _make_sources()
    serial, serial_seconds = _run(domain, knowledge, sources, max_workers=1)
    parallel, parallel_seconds = _run(domain, knowledge, sources, max_workers=4)

    serial_bytes = json.dumps(
        [instance.values for instance in serial.objects], sort_keys=True
    ).encode()
    parallel_bytes = json.dumps(
        [instance.values for instance in parallel.objects], sort_keys=True
    ).encode()
    assert parallel_bytes == serial_bytes
    assert list(parallel.results) == list(serial.results)
    assert parallel.sources_ok == serial.sources_ok == SOURCE_COUNT

    print()
    print(f"RUN_SOURCES over {SOURCE_COUNT} sources")
    print("=" * 60)
    print(f"serial   (max_workers=1) {serial_seconds * 1000:9.1f} ms")
    print(f"parallel (max_workers=4) {parallel_seconds * 1000:9.1f} ms")
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"speedup  {speedup:.2f}x (GIL-bound builds hover near 1x)")
    # Parallel execution must never cost meaningfully more than serial.
    assert parallel_seconds < serial_seconds * 1.5
