"""Appendix-A ablation — dictionary coverage 10% vs 20% vs 40%.

The extended version of the paper reports extraction results at 10%
dictionary coverage next to the main 20% setting: quality degrades
gracefully, it does not collapse.  This bench sweeps the coverage knob on
one clean source per domain.
"""

from benchmarks.harness import (
    BENCH_SCALE,
    DOMAIN_ORDER,
    domain_spec,
    grade_source,
    knowledge_for,
    pages_for,
    source_for,
)
from repro.core import ObjectRunnerSystem
from repro.datasets import catalog_entries
from repro.datasets.knowledge import completion_entries

COVERAGES = (0.1, 0.2, 0.4)

#: One representative clean source per domain.
SOURCES = {
    "concerts": "eventorb-list",
    "albums": "towerrecords",
    "books": "bookdepository",
    "publications": "citebase",
    "cars": "usedcars",
}


def _run(coverage: float) -> dict[str, float]:
    precision = {}
    entries = {e.spec.name: e for e in catalog_entries(scale=BENCH_SCALE)}
    for domain_name in DOMAIN_ORDER:
        entry = entries[SOURCES[domain_name]]
        domain = domain_spec(domain_name)
        source = source_for(entry)
        pages = pages_for(entry)
        knowledge = knowledge_for(domain_name, coverage)
        extra = completion_entries(
            domain, source.gold, coverage=coverage,
            seed=("completion", entry.spec.name),
        )
        system = ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            extra_gazetteer_entries=extra,
        )
        output = system.run(entry.spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        precision[domain_name] = evaluation.precision_correct
    return precision


def test_dictionary_coverage_ablation(benchmark):
    def sweep():
        return {coverage: _run(coverage) for coverage in COVERAGES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"APPENDIX A (scale={BENCH_SCALE}) — Pc vs dictionary coverage")
    print("=" * 60)
    header = f"{'domain':<14}" + "".join(f"{c:>10.0%}" for c in COVERAGES)
    print(header)
    for domain in DOMAIN_ORDER:
        row = f"{domain:<14}"
        for coverage in COVERAGES:
            row += f"{results[coverage][domain]:>10.2f}"
        print(row)

    # Graceful behaviour: 20% coverage already achieves what 40% does on
    # most domains, and 10% is not catastrophically worse overall.
    mean = {
        coverage: sum(results[coverage].values()) / len(DOMAIN_ORDER)
        for coverage in COVERAGES
    }
    assert mean[0.2] >= mean[0.1] - 1e-9
    assert mean[0.4] >= mean[0.2] - 0.15
    assert mean[0.2] >= 0.6  # the paper's main setting works
