"""Figure 6(a) — object classification rates per system and domain.

For each (system, domain): the fraction of correct, partially correct and
incorrect objects.  The reproduced shape: ObjectRunner's correct bar is
the tallest in every domain; RoadRunner's mass sits in partial/incorrect.
"""

from benchmarks.harness import BENCH_SCALE, DOMAIN_ORDER, domain_metrics

SYSTEMS = ("objectrunner", "exalg", "roadrunner")


def _render(rates) -> str:
    lines = [
        "",
        f"FIGURE 6(a) (scale={BENCH_SCALE}) — object classification rates",
        "=" * 70,
        f"{'domain':<14}{'system':<14}{'correct':>10}{'partial':>10}{'incorrect':>11}",
    ]
    for domain in DOMAIN_ORDER:
        for system in SYSTEMS:
            correct, partial, incorrect = rates[(domain, system)]
            lines.append(
                f"{domain:<14}{system:<14}{correct:>9.2f} {partial:>9.2f} "
                f"{incorrect:>10.2f}"
            )
    return "\n".join(lines)


def test_fig6a_object_classification(benchmark):
    def run_all():
        rates = {}
        for system in SYSTEMS:
            for metrics in domain_metrics(system):
                rates[(metrics.domain, system)] = (
                    metrics.correct_rate,
                    metrics.partial_rate,
                    metrics.incorrect_rate,
                )
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(_render(rates))

    for domain in DOMAIN_ORDER:
        our_correct = rates[(domain, "objectrunner")][0]
        for baseline in ("exalg", "roadrunner"):
            assert our_correct >= rates[(domain, baseline)][0] - 1e-9, (
                domain,
                baseline,
            )
        # Rates are a distribution.
        for system in SYSTEMS:
            correct, partial, incorrect = rates[(domain, system)]
            assert abs(correct + partial + incorrect - 1.0) < 1e-6
