"""Shared machinery for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures.  The heavy
part — running all three systems over the 49-source catalog — is done once
per system and memoized here, so the table benches measure and report
without duplicating work.

Scale: ``REPRO_BENCH_SCALE`` (default 0.1) shrinks per-source object
counts relative to the paper's volumes; the *shape* of the results is what
is being reproduced, not the absolute workload.

The per-entry setup (knowledge, generated sources, system construction)
is shared with the ``repro bench`` capture engine
(:mod:`repro.metrics.bench`), so the interactive benchmark suite and the
persisted ``BENCH_<seq>.json`` artifacts measure the same machinery.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core import StageEventCollector
from repro.datasets import CatalogEntry, catalog_entries, domain_spec
from repro.eval import SourceEvaluation, aggregate_domain, grade_source
from repro.eval.metrics import DomainMetrics
from repro.htmlkit import clean_tree, tidy
from repro.metrics.bench import CatalogCache, build_system

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
DICTIONARY_COVERAGE = 0.2

#: Table III as published (domain -> system -> (Pc, Pp) in percent).
PAPER_TABLE3 = {
    "concerts": {"objectrunner": (86.10, 86.10), "exalg": (45.17, 45.17), "roadrunner": (6.95, 72.0)},
    "albums": {"objectrunner": (74.52, 100.0), "exalg": (69.88, 95.0), "roadrunner": (17.37, 82.0)},
    "books": {"objectrunner": (68.37, 68.37), "exalg": (50.10, 62.0), "roadrunner": (0.0, 50.10)},
    "publications": {"objectrunner": (65.21, 74.0), "exalg": (34.83, 56.0), "roadrunner": (0.0, 52.39)},
    "cars": {"objectrunner": (75.79, 100.0), "exalg": (75.79, 100.0), "roadrunner": (15.28, 72.0)},
}

#: Table II as published (domain -> (Pc, Pp) for SOD-based and random).
PAPER_TABLE2 = {
    "concerts": ((86.10, 86.10), (61.78, 61.78)),
    "albums": ((74.52, 100.0), (69.88, 95.0)),
    "books": ((68.37, 68.37), (56.36, 62.0)),
    "publications": ((65.21, 74.0), (65.21, 65.21)),
    "cars": ((75.79, 100.0), (75.79, 100.0)),
}

DOMAIN_ORDER = ("concerts", "albums", "books", "publications", "cars")


@dataclass
class SourceRun:
    """One system's graded run on one catalog source."""

    entry: CatalogEntry
    evaluation: SourceEvaluation
    wrap_seconds: float


_catalog_cache = CatalogCache()
_pages_cache: dict[str, list] = {}
_run_cache: dict[str, list[SourceRun]] = {}

#: Benchmark-wide pipeline observer: every ObjectRunner run made through
#: :func:`make_system` reports its stage timings and counters here, so
#: the benches read stage-level figures off events instead of poking at
#: result internals.
STAGE_EVENTS = StageEventCollector()


def stage_totals() -> dict[str, float]:
    """Accumulated wall-clock seconds per pipeline stage across all runs."""
    return dict(STAGE_EVENTS.elapsed)


def stage_counters() -> dict[str, int]:
    """Accumulated pipeline counters (pages annotated, objects, ...)."""
    return dict(STAGE_EVENTS.counters)


def knowledge_for(domain_name: str, coverage: float = DICTIONARY_COVERAGE):
    return _catalog_cache.knowledge(domain_name, coverage)


def source_for(entry: CatalogEntry):
    return _catalog_cache.source(entry)


def pages_for(entry: CatalogEntry):
    if entry.spec.name not in _pages_cache:
        source = source_for(entry)
        _pages_cache[entry.spec.name] = [
            clean_tree(tidy(raw)) for raw in source.pages
        ]
    return _pages_cache[entry.spec.name]


def make_system(
    name: str,
    entry: CatalogEntry,
    coverage: float = DICTIONARY_COVERAGE,
    params=None,
):
    """Instantiate a system by short name for one catalog source.

    Delegates to the shared factory (:func:`repro.metrics.bench.
    build_system`), subscribing the benchmark-wide ``STAGE_EVENTS``
    collector to every ObjectRunner pipeline.
    """
    return build_system(
        name,
        entry,
        _catalog_cache,
        coverage=coverage,
        params=params,
        observers=(STAGE_EVENTS,),
    )


def run_catalog(system_name: str, scale: float = BENCH_SCALE) -> list[SourceRun]:
    """Run one system over every catalog source (memoized)."""
    cache_key = f"{system_name}@{scale}"
    if cache_key in _run_cache:
        return _run_cache[cache_key]
    runs: list[SourceRun] = []
    for entry in catalog_entries(scale=scale):
        domain = domain_spec(entry.spec.domain)
        source = source_for(entry)
        pages = pages_for(entry)
        system = make_system(system_name, entry)
        output = system.run(entry.spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        runs.append(
            SourceRun(
                entry=entry,
                evaluation=evaluation,
                wrap_seconds=output.wrap_seconds,
            )
        )
    _run_cache[cache_key] = runs
    return runs


def domain_metrics(system_name: str, scale: float = BENCH_SCALE) -> list[DomainMetrics]:
    """Per-domain aggregation of one system's catalog runs."""
    runs = run_catalog(system_name, scale)
    metrics = []
    for domain_name in DOMAIN_ORDER:
        evaluations = [
            run.evaluation
            for run in runs
            if run.entry.spec.domain == domain_name
        ]
        metrics.append(aggregate_domain(domain_name, system_name, evaluations))
    return metrics
