"""Table III — ObjectRunner vs ExAlg vs RoadRunner (Pc/Pp per domain).

The reproduction target is the published *ordering*: OR dominates both
baselines on precision-for-correctness in every domain, ExAlg generally
beats RoadRunner, and RoadRunner collapses on the "too regular" book and
publication lists (Pc ~ 0 with a large partial mass).
"""

from benchmarks.harness import (
    BENCH_SCALE,
    DOMAIN_ORDER,
    PAPER_TABLE3,
    domain_metrics,
)
from repro.eval.report import render_comparison_table

SYSTEMS = ("objectrunner", "exalg", "roadrunner")


def test_table3_system_comparison(benchmark):
    def run_all():
        return {name: domain_metrics(name) for name in SYSTEMS}

    metrics_by_system = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_comparison_table(
            f"TABLE III (scale={BENCH_SCALE}) — Pc / Pp per system and domain",
            metrics_by_system,
            paper_rows=PAPER_TABLE3,
        )
    )

    by_domain = {
        system: {m.domain: m for m in metrics}
        for system, metrics in metrics_by_system.items()
    }
    for domain in DOMAIN_ORDER:
        ours = by_domain["objectrunner"][domain]
        exalg = by_domain["exalg"][domain]
        roadrunner = by_domain["roadrunner"][domain]
        # ObjectRunner never loses on correctness (the paper's headline).
        assert ours.precision_correct >= exalg.precision_correct - 1e-9, domain
        assert ours.precision_correct >= roadrunner.precision_correct - 1e-9, domain
    # RoadRunner collapses on the too-regular list domains: low Pc and a
    # wide Pc/Pp gap (objects extracted, but split over separate fields).
    # The per-record optional attributes in our pages hand RoadRunner a
    # little repetition evidence real pages would also give it, so the
    # bound is "collapses", not "exactly zero".
    for domain in ("books", "publications"):
        roadrunner = by_domain["roadrunner"][domain]
        ours = by_domain["objectrunner"][domain]
        assert roadrunner.precision_correct <= 0.3, domain
        assert ours.precision_correct - roadrunner.precision_correct >= 0.4, domain
    # ObjectRunner's overall margin over RoadRunner is large (paper: ~60%).
    our_mean = sum(
        by_domain["objectrunner"][d].precision_correct for d in DOMAIN_ORDER
    ) / len(DOMAIN_ORDER)
    rr_mean = sum(
        by_domain["roadrunner"][d].precision_correct for d in DOMAIN_ORDER
    ) / len(DOMAIN_ORDER)
    assert our_mean - rr_mean >= 0.3
