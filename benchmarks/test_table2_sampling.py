"""Table II — SOD-based vs random page-sample selection (Pc/Pp per domain).

The paper shows that selecting the wrapper-training sample by annotation
scores (Algorithm 1) beats a random sample.  At small sample budgets the
effect is strongest, so this bench uses a tight sample size relative to
the page count.
"""

from benchmarks.harness import (
    BENCH_SCALE,
    DOMAIN_ORDER,
    PAPER_TABLE2,
    domain_spec,
    grade_source,
    make_system,
    pages_for,
    source_for,
)
from repro.core import RunParams
from repro.datasets import catalog_entries
from repro.eval import aggregate_domain
from repro.eval.report import render_comparison_table

#: A small sample budget makes sample *choice* matter.
SAMPLE_SIZE = 6


def _run_mode(sod_based: bool):
    params = RunParams(
        sample_size=SAMPLE_SIZE,
        sod_based_sampling=sod_based,
        enforce_alpha=False,
    )
    metrics = []
    entries = [
        entry
        for entry in catalog_entries(scale=BENCH_SCALE)
        if not entry.paper.discarded
    ]
    for domain_name in DOMAIN_ORDER:
        evaluations = []
        for entry in entries:
            if entry.spec.domain != domain_name:
                continue
            domain = domain_spec(domain_name)
            source = source_for(entry)
            pages = pages_for(entry)
            system = make_system("objectrunner", entry, params=params)
            output = system.run(entry.spec.name, pages, domain.sod)
            evaluations.append(grade_source(domain, source.gold, output))
        metrics.append(
            aggregate_domain(
                domain_name,
                "sod-based" if sod_based else "random",
                evaluations,
            )
        )
    return metrics


def test_table2_sample_selection(benchmark):
    def run_both():
        return {
            "sod-based": _run_mode(True),
            "random": _run_mode(False),
        }

    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    paper_rows = {
        domain: {
            "sod-based": PAPER_TABLE2[domain][0],
            "random": PAPER_TABLE2[domain][1],
        }
        for domain in DOMAIN_ORDER
    }
    print()
    print(
        render_comparison_table(
            f"TABLE II (scale={BENCH_SCALE}, sample={SAMPLE_SIZE}) — "
            "SOD-based vs random sampling",
            metrics,
            paper_rows=paper_rows,
        )
    )

    sod_based = {m.domain: m for m in metrics["sod-based"]}
    random = {m.domain: m for m in metrics["random"]}
    # SOD-based selection never loses, and wins overall (the paper's claim).
    wins = 0
    for domain in DOMAIN_ORDER:
        assert (
            sod_based[domain].precision_correct
            >= random[domain].precision_correct - 0.05
        ), domain
        if sod_based[domain].precision_correct > random[domain].precision_correct:
            wins += 1
    total_sod = sum(sod_based[d].precision_correct for d in DOMAIN_ORDER)
    total_random = sum(random[d].precision_correct for d in DOMAIN_ORDER)
    assert total_sod >= total_random
