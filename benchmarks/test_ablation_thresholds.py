"""Ablation — the pipeline's two headline thresholds.

DESIGN.md calls out two tunables the paper fixes empirically:

- the block annotation-rate gate ``alpha`` (0.5): too low and junk sources
  slip through to produce garbage; too high and legitimate sources with
  20%-coverage dictionaries get discarded;
- the annotation generalization threshold (0.7): too low and conflicting
  slots get labelled; too high and incomplete dictionaries can't label
  anything.

This bench sweeps both around the paper's values on a probe set containing
clean sources and the unstructured one.
"""

from benchmarks.harness import (
    BENCH_SCALE,
    domain_spec,
    grade_source,
    make_system,
    pages_for,
    source_for,
)
from repro.core import RunParams
from repro.datasets import catalog_entries

PROBE_SOURCES = ("towerrecords", "eventorb-list", "bookdepository", "emusic")

ALPHAS = (0.1, 0.5, 3.0)
THRESHOLDS = (0.5, 0.7, 0.95)


def _run_probe(params: RunParams) -> dict[str, tuple[bool, float]]:
    """source -> (discarded, Pc) under the given parameters."""
    entries = {e.spec.name: e for e in catalog_entries(scale=BENCH_SCALE)}
    results = {}
    for name in PROBE_SOURCES:
        entry = entries[name]
        domain = domain_spec(entry.spec.domain)
        source = source_for(entry)
        pages = pages_for(entry)
        system = make_system("objectrunner", entry, params=params)
        output = system.run(entry.spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        results[name] = (evaluation.discarded, evaluation.precision_correct)
    return results


def test_threshold_ablation(benchmark):
    def sweep():
        by_alpha = {
            alpha: _run_probe(RunParams(alpha=alpha)) for alpha in ALPHAS
        }
        by_threshold = {
            threshold: _run_probe(
                RunParams(generalization_threshold=threshold)
            )
            for threshold in THRESHOLDS
        }
        return by_alpha, by_threshold

    by_alpha, by_threshold = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"THRESHOLD ABLATION (scale={BENCH_SCALE})")
    print("=" * 64)
    print("alpha sweep (paper: 0.5)  [discarded / Pc per probe source]")
    for alpha, results in by_alpha.items():
        row = f"  alpha={alpha:<5}"
        for name in PROBE_SOURCES:
            discarded, pc = results[name]
            row += f"  {name.split('-')[0]}:{'DISC' if discarded else f'{pc:.2f}'}"
        print(row)
    print("generalization threshold sweep (paper: 0.7)")
    for threshold, results in by_threshold.items():
        row = f"  thr={threshold:<6}"
        for name in PROBE_SOURCES:
            discarded, pc = results[name]
            row += f"  {name.split('-')[0]}:{'DISC' if discarded else f'{pc:.2f}'}"
        print(row)

    # At the paper's settings: clean probes extract perfectly, junk is
    # discarded.
    paper = _run_probe(RunParams())
    for name in PROBE_SOURCES:
        discarded, pc = paper[name]
        if name == "emusic":
            assert discarded
        else:
            assert not discarded and pc >= 0.9, name
    # The junk source fails the gate at every alpha in the sweep: its
    # pages carry essentially no annotations, so the separation the gate
    # provides is robust to the exact threshold — which is why the paper
    # could fix it at 50% without tuning.
    for alpha, results in by_alpha.items():
        assert results["emusic"][0], alpha
        for name in PROBE_SOURCES:
            if name != "emusic":
                assert not results[name][0], (alpha, name)
    # The generalization threshold tolerates the sweep on clean sources
    # (annotations there are consistent, so dominance is insensitive).
    for threshold, results in by_threshold.items():
        for name in PROBE_SOURCES:
            if name != "emusic":
                assert results[name][1] >= 0.8, (threshold, name)
