"""Benchmark-suite surface of the profiling harness.

Delegates to :mod:`repro.metrics.profiling` (the same pattern
:mod:`benchmarks.harness` follows for :mod:`repro.metrics.bench`), so the
interactive benchmark suite and ``repro bench --profile`` profile the
same machinery.  Run directly for a quick profile at a chosen scale::

    PYTHONPATH=src:. python -m benchmarks.profiling 0.02
"""

from __future__ import annotations

import sys

from repro.metrics.bench import BenchConfig
from repro.metrics.profiling import (
    PROJECT_FRAGMENTS,
    ProfileReport,
    ProfileRow,
    profile_session,
    render_profile,
)

__all__ = [
    "PROJECT_FRAGMENTS",
    "ProfileReport",
    "ProfileRow",
    "profile_session",
    "render_profile",
]


def main(argv: list[str] | None = None) -> int:
    """Profile the catalog at the scale given as the only argument."""
    args = sys.argv[1:] if argv is None else argv
    scale = float(args[0]) if args else 0.1
    report = profile_session(BenchConfig(scale=scale))
    print(render_profile(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
