"""Figure 6(b) — rate of incompletely managed sources per system/domain.

A source is incompletely managed when any attribute came out partially
correct or incorrect (or the system failed on it outright).  The paper
reports roughly 20% for ObjectRunner on concerts/albums/books, 40% on
publications, 10% on cars — and much higher rates for both baselines.
"""

from benchmarks.harness import BENCH_SCALE, DOMAIN_ORDER, domain_metrics

SYSTEMS = ("objectrunner", "exalg", "roadrunner")

#: Figure 6(b) as published (ObjectRunner bars).
PAPER_OR_RATES = {
    "concerts": 0.2,
    "albums": 0.2,
    "books": 0.2,
    "publications": 0.4,
    "cars": 0.1,
}


def test_fig6b_incomplete_sources(benchmark):
    def run_all():
        rates = {}
        for system in SYSTEMS:
            for metrics in domain_metrics(system):
                rates[(metrics.domain, system)] = metrics.incomplete_source_rate
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"FIGURE 6(b) (scale={BENCH_SCALE}) — incompletely managed sources")
    print("=" * 70)
    print(f"{'domain':<14}" + "".join(f"{s:>14}" for s in SYSTEMS) + f"{'paper OR':>10}")
    for domain in DOMAIN_ORDER:
        row = f"{domain:<14}"
        for system in SYSTEMS:
            row += f"{rates[(domain, system)]:>13.2f} "
        row += f"{PAPER_OR_RATES[domain]:>9.2f}"
        print(row)

    for domain in DOMAIN_ORDER:
        our_rate = rates[(domain, "objectrunner")]
        # ObjectRunner handles at least as many sources completely as the
        # baselines do, in every domain.
        for baseline in ("exalg", "roadrunner"):
            assert our_rate <= rates[(domain, baseline)] + 1e-9, (domain, baseline)
        # And in the same ballpark as the paper's bars (within 30 points).
        assert abs(our_rate - PAPER_OR_RATES[domain]) <= 0.3, domain
