"""Wrapping-time measurement (paper Section IV, opening paragraph).

"Once the necessary recognizers are in place, the wrapping time of our
algorithm ranged from 4 to 9 seconds [on a 2.8 GHz workstation, 2012].
Once the wrapper is constructed, the time required to extract the data
was negligible for all the tested sources."

We report the same statistics on our hardware and assert the qualitative
claims: wrapping is seconds-scale at worst, and extraction throughput per
object is orders of magnitude below wrapping cost.
"""

import time

from benchmarks.harness import BENCH_SCALE, run_catalog, stage_totals


def test_wrapping_time_statistics(benchmark):
    runs = benchmark.pedantic(
        lambda: run_catalog("objectrunner"), rounds=1, iterations=1
    )
    wrap_times = [
        run.wrap_seconds for run in runs if not run.evaluation.discarded
    ]
    print()
    print(f"WRAPPING TIME (scale={BENCH_SCALE}) — {len(wrap_times)} sources")
    print("=" * 60)
    print(f"min    {min(wrap_times) * 1000:9.1f} ms")
    print(f"mean   {sum(wrap_times) / len(wrap_times) * 1000:9.1f} ms")
    print(f"max    {max(wrap_times) * 1000:9.1f} ms")
    print("(paper: 4-9 s per source on a 2.8 GHz workstation, full volumes)")
    print("stage profile (from pipeline events, all runs pooled):")
    for stage, seconds in sorted(stage_totals().items()):
        print(f"  {stage:<14} {seconds * 1000:9.1f} ms")

    # Qualitative claim 1: wrapping is seconds-scale at worst.
    assert max(wrap_times) < 30.0
    # Qualitative claim 2: extraction itself is negligible next to
    # wrapping.  Re-extract one wrapped source and compare.
    from benchmarks.harness import domain_spec, make_system, pages_for
    from repro.datasets import catalog_entries

    entry = next(
        e for e in catalog_entries(scale=BENCH_SCALE) if e.spec.name == "towerrecords"
    )
    system = make_system("objectrunner", entry)
    pages = pages_for(entry)
    domain = domain_spec(entry.spec.domain)
    started = time.perf_counter()
    output = system.run(entry.spec.name, pages, domain.sod)
    total = time.perf_counter() - started
    extraction = total - output.wrap_seconds
    print(f"towerrecords: total {total:.2f}s, wrapping {output.wrap_seconds:.2f}s, "
          f"rest (annotation+extraction) {extraction:.2f}s, "
          f"{len(output.objects)} objects")
    assert output.objects
