"""Table I — ObjectRunner extraction results over all 49 sources.

Regenerates the per-source attribute/object tallies (Ac/Ap/Ai, Oc/Op/Oi)
and prints them beside the published row.  The expected *shape*: clean
sources fully correct, the partial-inline sources partial, the
mixed-structure sources incorrect, emusic discarded.
"""

from benchmarks.harness import BENCH_SCALE, run_catalog
from repro.eval.report import format_table1_row


def _render(runs) -> str:
    lines = ["", f"TABLE I (scale={BENCH_SCALE}) — ObjectRunner per source", "=" * 78]
    domain = None
    for run in runs:
        if run.entry.spec.domain != domain:
            domain = run.entry.spec.domain
            lines.append(f"-- {domain} --")
        lines.append(format_table1_row(run.entry, run.evaluation))
    return "\n".join(lines)


def test_table1_objectrunner_extraction(benchmark):
    runs = benchmark.pedantic(
        lambda: run_catalog("objectrunner"), rounds=1, iterations=1
    )
    print(_render(runs))

    # Shape assertions mirroring the paper's Table I.
    by_name = {run.entry.spec.name: run for run in runs}
    # emusic (unstructured) is discarded.
    assert by_name["emusic"].evaluation.discarded
    # Clean sources extract with fully-correct objects.
    clean = [
        run
        for run in runs
        if run.entry.spec.archetype == "clean" and not run.evaluation.discarded
    ]
    assert clean
    fully_correct = sum(
        1 for run in clean if run.evaluation.precision_correct >= 0.9
    )
    assert fully_correct / len(clean) >= 0.8
    # Partial-inline sources yield partially-correct objects.
    partial = [
        run
        for run in runs
        if run.entry.spec.archetype.startswith("partial_inline")
    ]
    assert all(run.evaluation.precision_correct <= 0.2 for run in partial)
    assert sum(
        1 for run in partial if run.evaluation.precision_partial >= 0.8
    ) >= len(partial) - 1
    # Mixed-structure sources yield incorrect attributes.
    mixed = [
        run for run in runs if run.entry.spec.archetype == "mixed_structure"
    ]
    assert all(run.evaluation.attrs_incorrect >= 1 for run in mixed)
