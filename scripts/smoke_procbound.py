"""CI smoke test: P602 catches the re-introduced miss-counter bug.

Writes a fixture tree that re-introduces the process backend's original
miss-counter bug shape — a worker-side counter absent from
``__getstate__``, so every worker's misses silently vanish on merge —
and asserts:

- the full P-rule pass (P601–P604) flags exactly that attribute (P602),
- the SARIF rendering of the run carries the finding,
- the repaired twin (counter added to ``__getstate__``) is clean.

Run from the repository root:
``PYTHONPATH=src python scripts/smoke_procbound.py``.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

BUGGY = '''\
"""Seeded regression: the miss counter never ships home."""
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass
class ShardTask:
    """Picklable task spec."""

    items: tuple


class ShardStats:
    """Worker stats whose homeward surface misses one counter."""

    def __init__(self):
        self._hits = 0
        self._misses = 0

    def record(self, hit):
        """Count one lookup."""
        if hit:
            self._hits += 1
        else:
            self._misses += 1

    def __getstate__(self):
        """Ships hits only — worker-side misses die with the worker."""
        return {"hits": self._hits}


def _worker(task):
    """Worker entrypoint."""
    stats = ShardStats()
    for item in task.items:
        stats.record(bool(item))
    return stats


def run(items, workers):
    """Dispatcher."""
    tasks = [ShardTask(items=tuple(items))]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker, tasks))
'''

FIXED = BUGGY.replace(
    '        """Ships hits only — worker-side misses die with the worker."""\n'
    '        return {"hits": self._hits}',
    '        """Ships both counters."""\n'
    '        return {"hits": self._hits, "misses": self._misses}',
)


def reprolint(root: Path, fmt: str = "json") -> tuple[int, dict]:
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            str(root / "backend"),
            "--root",
            str(root),
            "--no-baseline",
            "--rules",
            "P601,P602,P603,P604",
            "--format",
            fmt,
        ],
        capture_output=True,
        text=True,
    )
    return proc.returncode, json.loads(proc.stdout)


def write_fixture(root: Path, source: str) -> None:
    (root / "backend").mkdir(parents=True, exist_ok=True)
    (root / "backend" / "runner.py").write_text(source, encoding="utf-8")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        write_fixture(root, BUGGY)
        code, doc = reprolint(root)
        assert code == 1, f"buggy fixture must fail the lint, got {code}"
        open_findings = [
            f for f in doc["findings"] if f["status"] == "open"
        ]
        assert len(open_findings) == 1, open_findings
        finding = open_findings[0]
        assert finding["rule"] == "P602", finding
        assert "'_misses'" in finding["message"], finding
        print("ok: P602 flags the reintroduced miss-counter bug")

        code, sarif = reprolint(root, fmt="sarif")
        assert code == 1
        results = sarif["runs"][0]["results"]
        assert len(results) == 1 and results[0]["ruleId"] == "P602", results
        print("ok: SARIF rendering carries the finding")

        write_fixture(root, FIXED)
        code, doc = reprolint(root)
        assert code == 0, doc
        assert doc["summary"]["open"] == 0, doc["summary"]
        print("ok: repaired homeward surface is clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
