"""CI smoke test: ``repro serve`` as a subprocess, cold then warm.

Starts the service with an empty registry, sends the Figure 3 running
example twice plus a stats request, and asserts:

- the cold request induces (``outcome: miss``),
- the warm request is a registry hit (``outcome: hit``),
- both requests extract identical objects,
- the stats report records the hit,
- shutdown is acknowledged and the process exits 0.

Run from the repository root: ``PYTHONPATH=src python scripts/smoke_serve.py``.
"""

import json
import subprocess
import sys
import tempfile

SOD = (
    "concert(artist, date<kind=predefined>, "
    "location(theater, address<kind=predefined>?))"
)

DICTS = {
    "artist": ["Metallica", "Coldplay", "Madonna", "Muse"],
    "theater": [
        "Madison Square Garden",
        "Bowery Ballroom",
        "The Town Hall",
        "B.B King Blues and Grill",
    ],
}

PAGES = [
    """
<html><body><li>
<div>Metallica</div>
<div>Monday May 11, 8:00pm</div>
<div>
 <span><a>Madison Square Garden</a></span>
 <span>237 West 42nd street</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10036</span>
</div></li></body></html>
""",
    """
<html><body><li>
<div>Coldplay</div>
<div>Saturday August 8, 2010 8:00pm</div>
<div>
 <span><a>Bowery Ballroom</a></span>
 <span>Delancey St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10002</span>
</div></li></body></html>
""",
    """
<html><body>
<li>
<div>Madonna</div>
<div>Saturday May 29 7:00p</div>
<div>
 <span><a>The Town Hall</a></span>
 <span>131 W 55th St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10019</span>
</div></li>
<li>
<div>Muse</div>
<div>Friday June 19 7:00p</div>
<div>
 <span><a>B.B King Blues and Grill</a></span>
 <span>4 Penn Plaza</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10001</span>
</div></li>
</body></html>
""",
]


def main() -> int:
    requests = [
        {"id": 1, "sod": SOD, "pages": PAGES, "dicts": DICTS, "source": "cold"},
        {"id": 2, "sod": SOD, "pages": PAGES, "dicts": DICTS, "source": "warm"},
        {"id": 3, "cmd": "stats"},
        {"id": 4, "cmd": "shutdown"},
    ]
    with tempfile.TemporaryDirectory() as registry_dir:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--registry", registry_dir],
            input="\n".join(json.dumps(r) for r in requests) + "\n",
            capture_output=True,
            text=True,
            timeout=300,
        )
    print(proc.stderr, end="", file=sys.stderr)
    if proc.returncode != 0:
        print(f"serve exited {proc.returncode}", file=sys.stderr)
        return 1
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    assert len(responses) == 4, f"expected 4 responses, got {len(responses)}"
    cold, warm, stats, bye = responses
    assert cold["ok"] and cold["outcome"] == "miss", cold
    assert warm["ok"] and warm["outcome"] == "hit", warm
    assert len(cold["objects"]) == 4, cold["objects"]
    assert cold["objects"][0]["artist"] == "Metallica", cold["objects"][0]
    assert warm["objects"] == cold["objects"], "warm objects differ from cold"
    assert stats["stats"]["registry"]["hits"] == 1, stats
    assert bye["shutdown"] is True, bye
    print(
        f"serve smoke OK: {len(cold['objects'])} objects, "
        "cold=miss warm=hit, clean shutdown"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
