"""Manual smoke test: one generated source through all three systems."""

import sys

from repro.baselines import ExAlgSystem, RoadRunnerSystem
from repro.core import ObjectRunnerSystem
from repro.datasets import (
    build_knowledge,
    domain_spec,
    generate_source,
    SiteSpec,
)
from repro.eval import grade_source
from repro.htmlkit import clean_tree, tidy


def run_one(archetype: str, domain_name: str = "albums", **spec_kwargs) -> None:
    domain = domain_spec(domain_name)
    spec = SiteSpec(
        name=f"smoke-{domain_name}-{archetype}",
        domain=domain_name,
        archetype=archetype,
        total_objects=60,
        seed=("smoke", archetype),
        **spec_kwargs,
    )
    source = generate_source(spec, domain)
    print(f"== {spec.name}: {len(source.pages)} pages, {len(source.gold)} gold")
    knowledge = build_knowledge(domain, coverage=0.2)
    pages = [clean_tree(tidy(raw)) for raw in source.pages]

    systems = [
        ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        ),
        ExAlgSystem(),
        RoadRunnerSystem(),
    ]
    for system in systems:
        output = system.run(spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        print(
            f"  {system.name:<14} failed={output.failed!s:<5} "
            f"A {evaluation.attrs_correct}/{evaluation.attrs_partial}/"
            f"{evaluation.attrs_incorrect} "
            f"O {evaluation.objects_correct}/{evaluation.objects_partial}/"
            f"{evaluation.objects_incorrect} of {evaluation.objects_total} "
            f"Pc={evaluation.precision_correct:.2f} Pp={evaluation.precision_partial:.2f}"
        )
        if output.objects:
            print("    sample:", output.objects[0].values)


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "clean"
    if which == "all":
        for archetype in ("clean", "partial_inline", "mixed_structure"):
            run_one(archetype)
        run_one("clean", "books", constant_record_count=10)
        run_one("clean", "concerts")
        run_one("clean", "cars")
        run_one("clean", "publications", constant_record_count=10)
    else:
        run_one(which)
