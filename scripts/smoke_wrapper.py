"""Manual smoke test: the paper's Figure 3 running example, end to end."""

from repro.annotation import annotate_page
from repro.htmlkit import tidy
from repro.recognizers import GazetteerRecognizer, predefined_recognizer
from repro.sod import parse_sod
from repro.wrapper import extract_objects, generate_wrapper
from repro.wrapper.generate import WrapperConfig

P1 = """
<html><body><li>
<div>Metallica</div>
<div>Monday May 11, 8:00pm</div>
<div>
 <span><a>Madison Square Garden</a></span>
 <span>237 West 42nd street</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10036</span>
</div></li></body></html>
"""

P2 = """
<html><body><li>
<div>Coldplay</div>
<div>Saturday August 8, 2010 8:00pm</div>
<div>
 <span><a>Bowery Ballroom</a></span>
 <span>Delancey St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10002</span>
</div></li></body></html>
"""

P3 = """
<html><body>
<li>
<div>Madonna</div>
<div>Saturday May 29 7:00p</div>
<div>
 <span><a>The Town Hall</a></span>
 <span>131 W 55th St</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10019</span>
</div></li>
<li>
<div>Muse</div>
<div>Friday June 19 7:00p</div>
<div>
 <span><a>B.B King Blues and Grill</a></span>
 <span>4 Penn Plaza</span>
 <span>New York City</span>
 <span>New York</span>
 <span>10001</span>
</div></li>
</body></html>
"""


def main() -> None:
    pages = [tidy(p) for p in (P1, P2, P3)]
    artist = GazetteerRecognizer(
        "artist", ["Metallica", "Coldplay", "Madonna", "Muse"]
    )
    theater = GazetteerRecognizer(
        "theater",
        ["Madison Square Garden", "Bowery Ballroom", "The Town Hall"],
    )
    date = predefined_recognizer("date", type_name="date")
    address = predefined_recognizer("address", type_name="address")
    recognizers = [artist, theater, date, address]

    annotated = [annotate_page(page, recognizers, index=i) for i, page in enumerate(pages)]
    for page in annotated:
        print(f"page {page.index}: annotations {sorted(page.annotated_types())}, "
              f"count={page.annotation_count()}")

    sod = parse_sod(
        "concert(artist, date<kind=predefined>, "
        "location(theater, address<kind=predefined>?))"
    )
    wrapper = generate_wrapper(
        "figure3", pages, sod, WrapperConfig(support=2)
    )
    print("record:", wrapper.record_tag, "path:", wrapper.record_path,
          "single:", wrapper.record_single_element, "list:", wrapper.is_list_source)
    print(wrapper.template.describe())
    print("match:", wrapper.match.matched, wrapper.match.entity_to_slots,
          "missing:", wrapper.match.missing)

    objects = extract_objects(wrapper, pages, source="figure3")
    for obj in objects:
        print(obj.values)


if __name__ == "__main__":
    main()
