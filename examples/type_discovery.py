"""Type discovery: define an atomic type by a few example instances.

The paper's conclusion sketches this extension: "specifying atomic types
by giving only some (few) instances.  These will then be used by the
system to interact with YAGO and to find the more appropriate concepts
and instances (in the style of Google sets)."

Here the user only knows two artists.  Set expansion against the ontology
finds the Band concept, pulls in its whole neighborhood, and the resulting
gazetteer powers a normal ObjectRunner run.

Run with::

    python examples/type_discovery.py
"""

from repro.core import ObjectRunner
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.knowledge import completion_entries
from repro.datasets.sites import SiteSpec
from repro.kb.discovery import discover_classes, expand_instances
from repro.recognizers import GazetteerRecognizer, RecognizerRegistry


def main() -> None:
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.25)

    # The user supplies a couple of artists they know...
    ontology_artists = sorted(
        knowledge.ontology.instances_of("Band")
        | knowledge.ontology.instances_of("Singer")
    )
    examples = ontology_artists[:3]
    print(f"User examples: {examples}\n")

    # ...and the system finds the concept and expands the set.
    for candidate in discover_classes(knowledge.ontology, examples):
        print(
            f"candidate concept: {candidate.class_name:<10} "
            f"covers {candidate.covered}/{len(examples)} examples, "
            f"{candidate.class_size} instances, score {candidate.score:.2f}"
        )
    expanded = expand_instances(knowledge.ontology, examples)
    print(f"\nExpanded to {len(expanded)} artist instances "
          f"(from {len(examples)} examples)\n")

    # The expanded set becomes the artist recognizer for a normal run.
    spec = SiteSpec(
        name="discovery.example",
        domain="albums",
        archetype="clean",
        total_objects=60,
        seed="type-discovery",
    )
    source = generate_source(spec, domain)

    registry = RecognizerRegistry()
    artist = GazetteerRecognizer("artist", expanded)
    # Titles still come from the usual channel; complete both dictionaries
    # to the paper's 20%-of-source coverage.
    completion = completion_entries(domain, source.gold, coverage=0.2)
    for value, confidence in completion.get("artist", {}).items():
        artist.add(value, confidence)
    registry.register(artist)
    title = GazetteerRecognizer("title", completion.get("title", {}))
    registry.register(title)

    runner = ObjectRunner(domain.sod, registry=registry)
    result = runner.run_source(spec.name, source.pages)
    if result.discarded:
        print(f"discarded: {result.discard_reason}")
        return
    print(f"Extracted {len(result.objects)} albums; first three:")
    for instance in result.objects[:3]:
        print(f"  {instance.values.get('title'):<28} by "
              f"{instance.values.get('artist')}")


if __name__ == "__main__":
    main()
