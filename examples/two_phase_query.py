"""Two-phase querying of the Web — the paper's headline scenario, end to end.

Phase one: state *what* you want (the SOD), let ObjectRunner harvest it
from several sources, and de-duplicate the redundant Web's repeats.

Phase two: query the harvested collection like a database.

Run with::

    python examples/two_phase_query.py
"""

from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.knowledge import completion_entries
from repro.datasets.sites import SiteSpec
from repro.query import Query


def main() -> None:
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.2)

    # --- Phase one: targeted harvesting over three sources -------------
    print("PHASE ONE — harvest\n")
    print(f"SOD: {domain.sod}\n")
    sources = {}
    golds = {}
    for name in ("discplanet", "vinylvault", "discplanet-mirror"):
        origin = name.replace("-mirror", "")
        spec = SiteSpec(
            name=origin,  # mirrors share the origin's objects
            domain="albums",
            archetype="clean",
            total_objects=60,
            seed=("twophase", origin),
        )
        source = generate_source(spec, domain)
        sources[name] = source.pages
        golds[name] = source.gold

    # Complete the dictionaries per source, as the paper did.
    extra: dict[str, dict[str, float]] = {}
    for gold in golds.values():
        for type_name, entries in completion_entries(
            domain, gold, coverage=0.2
        ).items():
            extra.setdefault(type_name, {}).update(entries)

    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(enrich_dictionaries=True),
        extra_gazetteer_entries=extra,
    )
    outcome = runner.run_sources(
        sources, deduplicate_across=True, dedup_keys=("title", "artist")
    )
    print(f"sources wrapped: {outcome.sources_ok} ok, "
          f"{outcome.sources_discarded} discarded")
    print(f"objects pooled: {sum(len(r.objects) for r in outcome.results.values())}, "
          f"after de-duplication: {len(outcome.objects)} "
          f"({outcome.duplicates_merged} duplicates merged)\n")

    # --- Phase two: query the harvested collection ----------------------
    print("PHASE TWO — query\n")
    cheap = (
        Query(outcome.objects)
        .where("price", "<", 20)
        .order_by("price")
        .limit(5)
        .select("title", "artist", "price")
    )
    print("five cheapest albums under $20:")
    for row in cheap:
        print(f"  {row['price']:>8}  {row['title']} — {row['artist']}")

    recent = (
        Query(outcome.objects)
        .where("date", "exists")
        .order_by("date", descending=True)
        .limit(3)
        .select("title", "date")
    )
    print("\nthree most recent releases:")
    for row in recent:
        print(f"  {row['date']:>20}  {row['title']}")

    the_bands = Query(outcome.objects).where("artist", "contains", "the")
    print(f"\nalbums by 'The ...' bands: {the_bands.count()}")


if __name__ == "__main__":
    main()
