"""Quickstart: wrap the paper's running example in ~40 lines.

The paper's Figure 3 shows three concert pages from upcoming.yahoo.com.
We describe the target objects with an SOD, hand ObjectRunner a small
artist/venue dictionary plus the built-in date and address recognizers,
and extract all four concerts.

Run with::

    python examples/quickstart.py
"""

from repro import ObjectRunner, parse_sod
from repro.recognizers import GazetteerRecognizer, RecognizerRegistry

PAGES = [
    """
    <html><body><li>
    <div>Metallica</div>
    <div>Monday May 11, 8:00pm</div>
    <div><span><a>Madison Square Garden</a></span><span>237 West 42nd street</span>
    <span>New York City</span><span>New York</span><span>10036</span></div>
    </li></body></html>
    """,
    """
    <html><body><li>
    <div>Coldplay</div>
    <div>Saturday August 8, 2010 8:00pm</div>
    <div><span><a>Bowery Ballroom</a></span><span>Delancey St</span>
    <span>New York City</span><span>New York</span><span>10002</span></div>
    </li></body></html>
    """,
    """
    <html><body>
    <li><div>Madonna</div><div>Saturday May 29 7:00p</div>
    <div><span><a>The Town Hall</a></span><span>131 W 55th St</span>
    <span>New York City</span><span>New York</span><span>10019</span></div></li>
    <li><div>Muse</div><div>Friday June 19 7:00p</div>
    <div><span><a>B.B King Blues and Grill</a></span><span>4 Penn Plaza</span>
    <span>New York City</span><span>New York</span><span>10001</span></div></li>
    </body></html>
    """,
]


def main() -> None:
    # 1. The Structured Object Description: what we want from the pages.
    #    `date` and `address` use system-predefined recognizers; `artist`
    #    and `theater` are open isInstanceOf types we back with
    #    dictionaries here (normally built from an ontology/corpus).
    sod = parse_sod(
        "concert(artist, date<kind=predefined>, "
        "location(theater, address<kind=predefined>?))"
    )

    registry = RecognizerRegistry()
    registry.register(
        GazetteerRecognizer("artist", ["Metallica", "Coldplay", "Madonna", "Muse"])
    )
    registry.register(
        GazetteerRecognizer(
            "theater",
            ["Madison Square Garden", "Bowery Ballroom",
             "The Town Hall", "B.B King Blues and Grill"],
        )
    )

    # 2. Run the pipeline: tidy + clean, segment, annotate, sample,
    #    generate the wrapper, extract.
    runner = ObjectRunner(sod, registry=registry)
    result = runner.run_source("figure3", PAGES)

    # 3. The inferred template and the harvested objects.
    print("Inferred template:")
    print(result.wrapper.template.describe())
    print()
    print(f"Extracted {len(result.objects)} concerts "
          f"(wrapping took {result.timings.wrapping * 1000:.0f} ms):")
    for instance in result.objects:
        location = instance.values["location"]
        print(f"  {instance.values['artist']:<26} {instance.values['date']:<32} "
              f"{location['theater']} — {location.get('address', 'n/a')}")


if __name__ == "__main__":
    main()
