"""System comparison: ObjectRunner vs ExAlg vs RoadRunner on one source.

A miniature of the paper's Table III experiment.  All three systems wrap
the same pages; the evaluator grades each against the golden standard
with the paper's attribute/object classes and prints Pc/Pp.

Try different archetypes to see each system's characteristic failures::

    python examples/compare_systems.py clean
    python examples/compare_systems.py partial_inline
    python examples/compare_systems.py mixed_structure
"""

import sys

from repro.baselines import ExAlgSystem, RoadRunnerSystem
from repro.core import ObjectRunnerSystem
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.eval import grade_source
from repro.htmlkit import clean_tree, tidy


def main(archetype: str = "clean") -> None:
    domain = domain_spec("albums")
    knowledge = build_knowledge(domain, coverage=0.2)
    spec = SiteSpec(
        name=f"albumstore-{archetype}",
        domain="albums",
        archetype=archetype,
        total_objects=100,
        seed=("compare", archetype),
    )
    source = generate_source(spec, domain)
    pages = [clean_tree(tidy(raw)) for raw in source.pages]
    print(f"Source {spec.name}: {len(pages)} pages, {len(source.gold)} gold "
          f"objects, archetype={archetype}\n")

    systems = [
        ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
        ),
        ExAlgSystem(),
        RoadRunnerSystem(),
    ]

    print(f"{'system':<14}{'Ac/Ap/Ai':>10}{'Oc':>7}{'Op':>7}{'Oi':>7}"
          f"{'Pc':>8}{'Pp':>8}{'wrap':>9}")
    for system in systems:
        output = system.run(spec.name, pages, domain.sod)
        evaluation = grade_source(domain, source.gold, output)
        attrs = (f"{evaluation.attrs_correct}/{evaluation.attrs_partial}/"
                 f"{evaluation.attrs_incorrect}")
        print(
            f"{system.name:<14}{attrs:>10}"
            f"{evaluation.objects_correct:>7}{evaluation.objects_partial:>7}"
            f"{evaluation.objects_incorrect:>7}"
            f"{evaluation.precision_correct:>8.2f}"
            f"{evaluation.precision_partial:>8.2f}"
            f"{output.wrap_seconds * 1000:>7.0f}ms"
        )

    print(
        "\nReading guide: ObjectRunner uses the SOD's domain knowledge, so it"
        "\nextracts only targeted attributes and keeps them apart.  ExAlg sees"
        "\nonly structure; RoadRunner additionally fails when pages are 'too"
        "\nregular' (constant record counts give it no repetition evidence)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "clean")
