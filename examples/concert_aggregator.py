"""Concert aggregator: the full knowledge-driven pipeline on one source.

This is the scenario the paper's introduction motivates: a user wants
concert objects (artist, date, venue, address) from event sites.  We

1. build the domain knowledge — a YAGO-like ontology where artists are
   typed under Band/Singer (the semantic-neighborhood case) plus a Web
   corpus mined with Hearst patterns;
2. let ObjectRunner construct the isInstanceOf dictionaries on the fly;
3. run the pipeline on a generated event site;
4. feed the extracted values back into the dictionaries (Eq. 4) and show
   how the artist gazetteer grows — the self-improving loop the paper
   describes.

Run with::

    python examples/concert_aggregator.py
"""

from repro.core import ObjectRunner, RunParams
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec


def main() -> None:
    domain = domain_spec("concerts")
    print(f"SOD: {domain.sod}")

    # Domain knowledge with the paper's 20% dictionary coverage.
    knowledge = build_knowledge(domain, coverage=0.2)
    print(
        f"Knowledge: {len(knowledge.ontology)} ontology facts, "
        f"{len(knowledge.corpus)} corpus sentences"
    )

    # A synthetic event site (the paper crawled zvents/eventful/...).
    spec = SiteSpec(
        name="megaevents.example",
        domain="concerts",
        archetype="clean",
        total_objects=120,
        seed="concert-aggregator",
    )
    source = generate_source(spec, domain)
    print(f"Source: {len(source.pages)} list pages, {len(source.gold)} concerts\n")

    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
        params=RunParams(enrich_dictionaries=True),
    )
    artist_dictionary = runner.gazetteers()["artist"]
    before = len(artist_dictionary)

    result = runner.run_source(spec.name, source.pages)
    if result.discarded:
        print(f"source discarded at {result.discard_stage}: {result.discard_reason}")
        return

    print(f"Wrapper: record <{result.wrapper.record_tag}> at "
          f"{result.wrapper.record_path}")
    print(f"Support used: {result.support_used}, conflicting annotations: "
          f"{result.conflicts}")
    print(f"Stage timings: preprocess {result.timings.preprocess:.2f}s, "
          f"annotation {result.timings.annotation:.2f}s, "
          f"wrapping {result.timings.wrapping:.2f}s, "
          f"extraction {result.timings.extraction:.2f}s\n")

    print(f"First five of {len(result.objects)} extracted concerts:")
    for instance in result.objects[:5]:
        location = instance.values.get("location", {})
        print(f"  {instance.values.get('artist', '?'):<26} "
              f"{instance.values.get('date', '?'):<34} "
              f"{location.get('theater', '?')}")

    after = len(artist_dictionary)
    print(f"\nDictionary enrichment (Eq. 4): artist gazetteer grew "
          f"{before} -> {after} entries")


if __name__ == "__main__":
    main()
