"""Bookstore catalog: nested SODs with set types (multi-author books).

Books demonstrate the nested-relation side of the typing formalism: the
``authors`` component is a *set type* with multiplicity ``+``, rendered
by sites as a variable-length run of author elements.  The wrapper learns
an iterator slot for it, and extraction yields real lists.

The example also shows instance validation and a flat relational export.

Run with::

    python examples/bookstore_catalog.py
"""

import csv
import io

from repro.core import ObjectRunner
from repro.datasets import build_knowledge, domain_spec, generate_source
from repro.datasets.sites import SiteSpec
from repro.sod.instances import validate_instance


def main() -> None:
    domain = domain_spec("books")
    print(f"SOD: {domain.sod}")
    print("     (authors:{author}+ is a set type -> iterator in the template)\n")

    knowledge = build_knowledge(domain, coverage=0.2)
    spec = SiteSpec(
        name="paperback.example",
        domain="books",
        archetype="clean",
        total_objects=80,
        constant_record_count=10,  # "too regular" for RoadRunner; fine here
        seed="bookstore-catalog",
    )
    source = generate_source(spec, domain)

    runner = ObjectRunner(
        domain.sod,
        ontology=knowledge.ontology,
        corpus=knowledge.corpus,
        gazetteer_classes=domain.gazetteer_classes,
    )
    result = runner.run_source(spec.name, source.pages)
    assert result.ok, result.discard_reason

    # The set type shows up as an iterator slot in the template.
    iterators = result.wrapper.template.iterator_slots()
    print(f"Template has {len(iterators)} iterator slot(s); "
          f"authors repeat {iterators[0].min_repeats}-{iterators[0].max_repeats} "
          f"times in the sample\n")

    # Validate every instance against the SOD before exporting.
    valid = 0
    for instance in result.objects:
        if validate_instance(domain.sod, instance).ok:
            valid += 1
    print(f"{valid}/{len(result.objects)} extracted books validate against the SOD")

    multi_author = [
        instance
        for instance in result.objects
        if len(instance.values.get("authors", [])) > 1
    ]
    print(f"{len(multi_author)} books have multiple authors, e.g.:")
    for instance in multi_author[:3]:
        print(f"  {instance.values['title']}: "
              f"{', '.join(instance.values['authors'])}")

    # Flat relational export (sets joined with ';').
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["title", "authors", "price", "date"])
    for instance in result.objects[:10]:
        writer.writerow(
            [
                instance.values.get("title", ""),
                "; ".join(instance.values.get("authors", [])),
                instance.values.get("price", ""),
                instance.values.get("date", ""),
            ]
        )
    print("\nFirst ten rows as CSV:")
    print(buffer.getvalue())


if __name__ == "__main__":
    main()
