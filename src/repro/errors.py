"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class HtmlParseError(ReproError):
    """Raised when HTML input is so malformed that not even tidying helps."""


class SodError(ReproError):
    """Raised for invalid Structured Object Descriptions."""


class SodSyntaxError(SodError):
    """Raised when the SOD DSL text cannot be parsed."""


class RecognizerError(ReproError):
    """Raised for recognizer configuration problems (e.g. bad regexes)."""


class UnknownTypeError(RecognizerError):
    """Raised when an entity type has no registered recognizer."""


class AnnotationError(ReproError):
    """Raised when the annotation stage is misconfigured."""


class SourceDiscardedError(ReproError):
    """Raised when a source fails a quality gate and is discarded.

    The paper's pipeline discards sources with unsatisfactory annotation
    levels (threshold ``alpha`` over visual blocks) or whose equivalence-class
    hierarchy can no longer match the SOD.  The ``stage`` attribute records
    which gate fired.
    """

    def __init__(self, source: str, stage: str, reason: str):
        super().__init__(f"source {source!r} discarded at {stage}: {reason}")
        self.source = source
        self.stage = stage
        self.reason = reason


class WrapperError(ReproError):
    """Raised when wrapper generation fails for internal reasons."""


class MatchingError(WrapperError):
    """Raised when the SOD cannot be matched against the template tree."""


class DatasetError(ReproError):
    """Raised for dataset-generation configuration problems."""


class EvaluationError(ReproError):
    """Raised when evaluation inputs are inconsistent (e.g. missing gold)."""
