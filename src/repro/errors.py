"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class HtmlParseError(ReproError):
    """Raised when HTML input is so malformed that not even tidying helps."""


class SodError(ReproError):
    """Raised for invalid Structured Object Descriptions."""


class SodSyntaxError(SodError):
    """Raised when the SOD DSL text cannot be parsed."""


class RecognizerError(ReproError):
    """Raised for recognizer configuration problems (e.g. bad regexes)."""


class UnknownTypeError(RecognizerError):
    """Raised when an entity type has no registered recognizer."""


class AnnotationError(ReproError):
    """Raised when the annotation stage is misconfigured."""


class SourceDiscardedError(ReproError):
    """Raised when a source fails a quality gate and is discarded.

    The paper's pipeline discards sources with unsatisfactory annotation
    levels (threshold ``alpha`` over visual blocks) or whose equivalence-class
    hierarchy can no longer match the SOD.  The ``stage`` attribute records
    which gate fired.
    """

    def __init__(self, source: str, stage: str, reason: str):
        super().__init__(f"source {source!r} discarded at {stage}: {reason}")
        self.source = source
        self.stage = stage
        self.reason = reason


class TransientSourceError(ReproError):
    """Raised by a stage for failures worth retrying.

    Flaky I/O, resource contention, a dependency momentarily unavailable:
    anything where a fresh attempt may succeed.  The pipeline re-runs the
    raising stage according to the active
    :class:`~repro.core.faults.RetryPolicy` (``RunParams.max_retries``),
    emitting a ``stage_retry`` event per attempt; once attempts are
    exhausted the error propagates like any other unexpected failure.
    """


class ProcessBackendConfigError(ReproError, ValueError):
    """Raised when a runner configuration cannot cross a process boundary.

    The process backend ships task specs to worker processes by pickle;
    fault injectors, custom sleep callables and non-metrics observers
    hold process-local state the workers could not honor.  The error is
    raised at :class:`~repro.core.objectrunner.ObjectRunner` construction
    time — before any worker spawns — and ``field`` names the offending
    constructor argument (``"fault_injector"``, ``"sleep"`` or
    ``"observers"``).  Subclasses :class:`ValueError` so callers treating
    it as a plain configuration error keep working.
    """

    def __init__(self, field: str, message: str):
        super().__init__(message)
        self.field = field


class MultiSourceError(ReproError):
    """Raised by ``run_sources`` under the ``fail_fast`` policy.

    Carries what the batch had finished before the abort: ``partial`` is
    a :class:`~repro.core.results.MultiSourceResult` holding the results
    of every source that completed *before* the failing source in input
    order (deterministic — later, still-running sources are cancelled or
    discarded), and ``failure`` is the
    :class:`~repro.core.faults.SourceFailure` that triggered the abort.
    The original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, partial=None, failure=None):
        super().__init__(message)
        self.partial = partial
        self.failure = failure


class InjectedFaultError(RuntimeError):
    """Raised by the fault-injection harness for ``crash`` faults.

    Deliberately *not* a :class:`ReproError`: injected crashes simulate
    unexpected, foreign failures, so nothing in the library (or in a
    caller's ``except ReproError``) may swallow one by accident.
    """


class WrapperError(ReproError):
    """Raised when wrapper generation fails for internal reasons."""


class WrapperSchemaError(WrapperError):
    """Raised when persisted wrapper data is malformed or schema-incompatible.

    Loading a wrapper (single file or registry entry) validates the schema
    version and every required field before reconstruction, so old-format,
    truncated or hand-edited payloads surface as one typed error naming
    the offending field instead of a bare ``KeyError`` deep inside
    :mod:`repro.wrapper.serialize`.
    """


class RegistryError(ReproError):
    """Raised for wrapper-registry storage problems.

    Covers corrupt or unreadable registry entries, index/entry signature
    mismatches and malformed index files — everything the
    content-addressed store (:mod:`repro.registry`) can detect about its
    own persistence layer.
    """


class MatchingError(WrapperError):
    """Raised when the SOD cannot be matched against the template tree."""


class DatasetError(ReproError):
    """Raised for dataset-generation configuration problems."""


class EvaluationError(ReproError):
    """Raised when evaluation inputs are inconsistent (e.g. missing gold)."""
