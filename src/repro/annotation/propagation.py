"""Upward propagation of annotations in the DOM.

Per the paper, an annotation assigned to a node propagates to its ancestors
as long as those ancestors sit on a linear path (single child) or all their
children carry the same annotation.  This lets annotations reach the tag
level at which the template repeats (e.g. the ``<div>`` wrapping an artist
name), where the wrapper algorithm consumes them.
"""

from __future__ import annotations

from repro.htmlkit.dom import Element, Node, Text


def _child_annotation_sets(element: Element) -> list[set[str]]:
    """Annotation sets of children that carry content (text or elements)."""
    sets: list[set[str]] = []
    for child in element.children:
        if isinstance(child, Text):
            if child.text_content():
                sets.append(child.annotations)
        else:
            assert isinstance(child, Element)
            sets.append(child.annotations)
    return sets


def propagate_annotations(root: Element) -> None:
    """Propagate annotations upward throughout the subtree of ``root``.

    Bottom-up pass: an element inherits annotation ``t`` if it has exactly
    one content-bearing child annotated ``t`` (linear path), or if *all*
    its content-bearing children are annotated ``t``.
    """

    def visit(element: Element) -> None:
        for child in element.children:
            if isinstance(child, Element):
                visit(child)
        child_sets = _child_annotation_sets(element)
        if not child_sets:
            return
        if len(child_sets) == 1:
            element.annotations |= child_sets[0]
            return
        common = set(child_sets[0])
        for annotations in child_sets[1:]:
            common &= annotations
            if not common:
                return
        element.annotations |= common

    visit(root)


def clear_annotations(root: Element) -> None:
    """Remove every annotation in the subtree (used between re-runs)."""
    for node in root.iter():
        if isinstance(node, (Element, Text)):
            node.annotations.clear()
