"""Page-sample selection — paper Algorithm 1 plus the alpha gate.

Given a source (a list of pages) and the SOD's recognizers, annotate the
pages greedily in decreasing type-selectivity order, narrowing after each
round to the best-scoring pages, and return the top-k annotated pages as
the wrapper-training sample.  The block-level annotation-rate gate
(threshold ``alpha``) can discard the source outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.annotator import AnnotatedPage, PageAnnotator
from repro.annotation.selectivity import (
    TermFrequency,
    min_page_score,
    page_score,
    type_selectivity,
)
from repro.errors import SourceDiscardedError
from repro.htmlkit.dom import Element
from repro.recognizers.base import Recognizer
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.vision.segmentation import BlockTree


@dataclass(frozen=True)
class SampleSelectionConfig:
    """Parameters of Algorithm 1.

    ``sample_size`` is the paper's k (~20 pages).  ``narrowing_factor``
    controls how aggressively the candidate set shrinks per annotation
    round (the paper strives "to minimize the number of pages to be
    annotated at the next round").  ``alpha`` is the per-block annotation
    rate threshold (50% in the paper's experiments); ``enforce_alpha``
    turns the gate off for ablations.
    """

    sample_size: int = 20
    narrowing_factor: float = 0.6
    min_candidates: int = 25
    alpha: float = 0.5
    enforce_alpha: bool = True


@dataclass
class AnnotationRun:
    """Everything the annotation stage produced for one source."""

    source: str
    sample: list[AnnotatedPage]
    all_pages: list[AnnotatedPage]
    type_order: list[str]
    discarded: bool = False
    discard_reason: str = ""
    block_rates: dict[str, float] = field(default_factory=dict)


def _order_types(
    recognizers: list[Recognizer], term_frequency: TermFrequency | None
) -> list[Recognizer]:
    """isInstanceOf types first (by Eq. 2), then predefined/regex types.

    The paper processes the open dictionary types first ("once the top
    annotated pages are selected over all isInstanceOf types, the
    predefined and regular expression types are processed"), each group in
    decreasing selectivity order.
    """
    gazetteers = [r for r in recognizers if isinstance(r, GazetteerRecognizer)]
    others = [r for r in recognizers if not isinstance(r, GazetteerRecognizer)]
    gazetteers.sort(key=lambda r: -type_selectivity(r, term_frequency))
    others.sort(key=lambda r: -type_selectivity(r, term_frequency))
    return gazetteers + others


def _block_annotation_rate(
    pages: list[AnnotatedPage], block_signature_of: dict[int, str]
) -> dict[str, float]:
    """Average per-page annotation count per block signature.

    The paper checks, per visual block, ``sum_k (annotations in block) / k``
    against ``alpha``: blocks must be annotated on average on at least
    ``alpha`` ... we interpret the condition as "mean annotated-node count
    per page in the block reaches alpha", which matches the formula given.
    """
    totals: dict[str, float] = {}
    for page in pages:
        per_block: dict[str, int] = {}
        for node in page.root.iter_elements():
            if not node.annotations:
                continue
            signature = block_signature_of.get(id(node))
            if signature is None:
                continue
            per_block[signature] = per_block.get(signature, 0) + 1
        for signature, count in per_block.items():
            totals[signature] = totals.get(signature, 0.0) + count
    if not pages:
        return {}
    return {signature: total / len(pages) for signature, total in totals.items()}


def _enclosing_block_signatures(
    pages: list[AnnotatedPage], block_trees: list[BlockTree] | None
) -> dict[int, str]:
    """Map node id -> signature of the innermost block containing it."""
    mapping: dict[int, str] = {}
    if block_trees is None:
        # No segmentation available: treat each page body as one block.
        for page in pages:
            body = page.root.find("body") or page.root
            for node in body.iter_elements():
                mapping[id(node)] = "page-body"
        return mapping
    for tree in block_trees:
        # Deepest blocks last so they overwrite ancestors in the map.
        for block in tree.all_blocks():
            for node in block.element.iter_elements():
                mapping[id(node)] = block.signature
    return mapping


def select_sample(
    source: str,
    pages: list[Element],
    recognizers: list[Recognizer],
    config: SampleSelectionConfig | None = None,
    term_frequency: TermFrequency | None = None,
    block_trees: list[BlockTree] | None = None,
) -> AnnotationRun:
    """Run Algorithm 1 over one source.

    Raises :class:`~repro.errors.SourceDiscardedError` when the alpha gate
    fires (no visual block reaches the annotation-rate threshold for the
    processed types).
    """
    config = config or SampleSelectionConfig()
    annotator = PageAnnotator()
    annotated = [AnnotatedPage(root=page, index=i) for i, page in enumerate(pages)]
    ordered = _order_types(recognizers, term_frequency)
    type_order = [recognizer.type_name for recognizer in ordered]

    candidates = list(annotated)
    processed: list[str] = []
    signature_of = _enclosing_block_signatures(annotated, block_trees)
    block_rates: dict[str, float] = {}

    for round_index, recognizer in enumerate(ordered):
        for page in candidates:
            matches = annotator.annotate(page, recognizer)
            page.scores[recognizer.type_name] = page_score(matches, term_frequency)
        processed.append(recognizer.type_name)

        # Alpha gate: at least one visual block must hold annotations at a
        # satisfactory rate across the candidate pages.  Dictionaries are
        # incomplete (the paper assumes ~20% coverage), so intermediate
        # rounds only need a weak signal; the full threshold applies once
        # every type has been processed.
        block_rates = _block_annotation_rate(candidates, signature_of)
        if config.enforce_alpha:
            final_round = round_index == len(ordered) - 1
            threshold = config.alpha if final_round else config.alpha * 0.2
            if not block_rates or max(block_rates.values()) < threshold:
                raise SourceDiscardedError(
                    source,
                    stage="annotation",
                    reason=(
                        f"no block reaches annotation rate alpha={config.alpha} "
                        f"after type {recognizer.type_name!r}"
                    ),
                )

        # Narrow to the richest pages before the next (cheaper rounds on
        # fewer pages), keeping at least min_candidates and never fewer
        # than the sample size.
        keep = max(
            config.sample_size,
            min(
                len(candidates),
                max(config.min_candidates, int(len(candidates) * config.narrowing_factor)),
            ),
        )
        candidates.sort(
            key=lambda page: -min_page_score(page.scores, processed)
        )
        candidates = candidates[:keep]

    candidates.sort(key=lambda page: (-page.annotation_count(), page.index))
    sample = candidates[: config.sample_size]
    return AnnotationRun(
        source=source,
        sample=sample,
        all_pages=annotated,
        type_order=type_order,
        block_rates=block_rates,
    )
