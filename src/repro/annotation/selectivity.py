"""Selectivity and page-score estimates (paper Eq. 2 and Eq. 3).

Type selectivity (Eq. 2) orders the annotation rounds: types with few,
distinctive witness instances are matched first, so unpromising pages fall
out of the running cheaply.  Page scores (Eq. 3) sum instance confidences
damped by term frequency; the sample keeps pages whose *minimum* score over
the processed types is highest.
"""

from __future__ import annotations

from typing import Callable

from repro.recognizers.base import Match, Recognizer
from repro.recognizers.gazetteer import GazetteerRecognizer

#: Looks up term frequency for a surface string (defaults to 1.0).
TermFrequency = Callable[[str], float]


def _default_tf(_value: str) -> float:
    return 1.0


def type_selectivity(
    recognizer: Recognizer, term_frequency: TermFrequency | None = None
) -> float:
    """Eq. 2: ``score(t) = sum_i score(i, t) / tf(i)`` for gazetteer types.

    For dictionary-backed types we can evaluate the formula literally over
    the dictionary.  For regex/predefined types there is no instance list,
    so we fall back to the recognizer's calibrated selectivity weight —
    exactly the role the estimate plays in Algorithm 1 (a sort key).
    """
    term_frequency = term_frequency or _default_tf
    if isinstance(recognizer, GazetteerRecognizer):
        entries = recognizer.entries()
        if not entries:
            return 0.0
        total = sum(
            confidence / max(term_frequency(value), 1e-9)
            for value, confidence in entries.items()
        )
        # Normalize by dictionary size so huge dictionaries of common
        # strings do not look more selective than small sharp ones.
        return total / len(entries)
    return recognizer.selectivity_weight()


def page_score(
    matches: list[Match], term_frequency: TermFrequency | None = None
) -> float:
    """Eq. 3: ``score(page/t) = sum_{i in page} score(i, t) / tf(i)``."""
    term_frequency = term_frequency or _default_tf
    return sum(
        match.confidence / max(term_frequency(match.value), 1e-9)
        for match in matches
    )


def min_page_score(scores: dict[str, float], processed_types: list[str]) -> float:
    """The page ordering key: minimum score over the processed types.

    Pages missing a processed type entirely score 0 for it, which sends
    them to the back of the ordering — the desired behaviour, since a page
    without any instance of a required type cannot train the wrapper.
    """
    if not processed_types:
        return 0.0
    return min(scores.get(type_name, 0.0) for type_name in processed_types)
