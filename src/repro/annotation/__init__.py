"""Annotation and page-sample selection (paper Algorithm 1).

Entity-type instances are located in page text and attached to DOM nodes as
semantic annotations; types are processed in decreasing selectivity order
(Eq. 2); after each round only the best-scoring pages (Eq. 3) stay in the
running, and the final sample is the top-k most annotated pages.  A source
whose visual blocks never reach the annotation-rate threshold ``alpha`` is
discarded (paper Section III-E, first gate).
"""

from repro.annotation.annotator import AnnotatedPage, PageAnnotator, annotate_page
from repro.annotation.propagation import propagate_annotations
from repro.annotation.sampling import (
    AnnotationRun,
    SampleSelectionConfig,
    select_sample,
)
from repro.annotation.selectivity import page_score, type_selectivity

__all__ = [
    "AnnotatedPage",
    "PageAnnotator",
    "annotate_page",
    "propagate_annotations",
    "AnnotationRun",
    "SampleSelectionConfig",
    "select_sample",
    "page_score",
    "type_selectivity",
]
