"""Annotating DOM trees with entity-type matches.

A text node whose content matches a recognizer gets that type name added
to its ``annotations`` set (the paper's ``<div type="Artist">`` marking),
and the annotation propagates upward per
:mod:`repro.annotation.propagation`.  Multiple annotations per node are
allowed — conflicts are meaningful downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.propagation import propagate_annotations
from repro.htmlkit.dom import Element, Text
from repro.recognizers.base import Match, Recognizer, prune_overlaps


@dataclass
class AnnotatedPage:
    """One page plus its annotation bookkeeping.

    ``matches_by_type`` records, per entity type, the concrete matches
    found anywhere on the page; ``scores`` is filled by the sampling stage.
    """

    root: Element
    index: int = -1
    matches_by_type: dict[str, list[Match]] = field(default_factory=dict)
    scores: dict[str, float] = field(default_factory=dict)

    def annotation_count(self, type_name: str | None = None) -> int:
        """Total matches (for one type, or across all types)."""
        if type_name is not None:
            return len(self.matches_by_type.get(type_name, []))
        return sum(len(matches) for matches in self.matches_by_type.values())

    def annotated_types(self) -> set[str]:
        return {name for name, matches in self.matches_by_type.items() if matches}


class PageAnnotator:
    """Runs recognizers over a page's text nodes and annotates the DOM.

    ``full_node_bonus`` raises confidence in the bookkeeping when a match
    covers an entire text node — such matches are strong signals that the
    node is a data slot of the template (the paper mentions value/textual
    rules of this form).
    """

    def __init__(self, full_node_bonus: float = 0.1):
        self._full_node_bonus = full_node_bonus

    def annotate(
        self,
        page: AnnotatedPage,
        recognizer: Recognizer,
        within: Element | None = None,
    ) -> list[Match]:
        """Apply one recognizer to a page; returns the matches found.

        ``within`` restricts the scan to a subtree (the selected central
        block); by default the whole page is scanned.
        """
        scope = within if within is not None else page.root
        found: list[Match] = []
        for text_node in scope.iter_text_nodes():
            text = text_node.text_content()
            if not text:
                continue
            matches = prune_overlaps(recognizer.find(text))
            if not matches:
                continue
            text_node.annotations.add(recognizer.type_name)
            parent = text_node.parent
            if parent is not None:
                parent.annotations.add(recognizer.type_name)
            for match in matches:
                confidence = match.confidence
                if match.length >= len(text):
                    confidence = min(1.0, confidence + self._full_node_bonus)
                found.append(
                    Match(
                        start=match.start,
                        end=match.end,
                        value=match.value,
                        type_name=match.type_name,
                        confidence=confidence,
                    )
                )
        page.matches_by_type.setdefault(recognizer.type_name, []).extend(found)
        propagate_annotations(scope)
        return found


def annotate_page(
    root: Element,
    recognizers: list[Recognizer],
    index: int = -1,
) -> AnnotatedPage:
    """Annotate a page with every recognizer at once (convenience)."""
    page = AnnotatedPage(root=root, index=index)
    annotator = PageAnnotator()
    for recognizer in recognizers:
        annotator.annotate(page, recognizer)
    return page
