"""The metrics observer: pipeline events in, per-source registries out.

:class:`MetricsObserver` subscribes to the pipeline
:class:`~repro.core.pipeline.EventBus` and files every measurement into a
per-source :class:`~repro.metrics.registry.MetricsRegistry`:

- ``stage.<name>`` timers — one observation per stage execution, from the
  pipeline's own ``stage_end`` wall-clock (the observer never measures;
  it records what the pipeline measured).
- ``pipeline`` timer — one observation per completed run.
- context counter deltas (``objects_extracted``, ``pages_prepared``, ...)
  folded from ``stage_end`` events, so multi-pass enrichment runs sum
  instead of double-counting the run totals.
- ``runs`` / ``discards`` counters and per-stage ``retries.<stage>``.

:meth:`MetricsObserver.snapshot` merges the per-source registries
**deterministically in input order**: the order registered through
:meth:`note_source_order` (``ObjectRunner.run_sources`` does this before
fanning out), falling back to sorted source names for stragglers — so a
parallel multi-source run snapshots byte-identically to a serial one fed
the same observations.

This module is part of the observer layer, the only code allowed to read
clocks (reprolint ``D102``): :func:`wall_timestamp` is the single place a
wall-clock timestamp enters a persisted artifact, and
:func:`peak_rss_bytes` reads the process's high-water memory mark.
"""

from __future__ import annotations

import sys
import threading
import time
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.pipeline import PipelineEvent, PipelineObserver
from repro.metrics.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.cache import PreprocessCache
    from repro.core.pipeline import PipelineContext


def wall_timestamp() -> str:
    """The current UTC time as an ISO-8601 string (artifact stamping only).

    Lives in the observer layer so persisted benchmark artifacts can say
    when they were captured without any pipeline data ever depending on
    the wall clock.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def monotonic_seconds() -> float:
    """A monotonic clock reading, for interval measurement only.

    Callers outside the observer layer (for example the bench session's
    per-shard wall timings) subtract two readings; the absolute value is
    meaningless.  Lives here so clock reads stay confined to this module
    (reprolint ``D102``).
    """
    return time.monotonic()


def peak_rss_bytes() -> int:
    """The run's peak resident set size in bytes (0 if unavailable).

    Reads both ``RUSAGE_SELF`` and ``RUSAGE_CHILDREN`` and reports the
    **maximum of the two** — the high-water mark of the largest single
    process, not a sum (``ru_maxrss`` values of processes alive at
    different times do not add meaningfully).  Without the children
    reading, a process-backend run would attribute all worker memory to
    nobody.  ``resource.getrusage`` reports kilobytes on Linux and bytes
    on macOS; normalized to bytes here.  Platforms without the
    ``resource`` module (Windows) report 0 rather than failing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    peak = max(own, children)
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


class MetricsObserver(PipelineObserver):
    """Aggregates pipeline events into per-source metrics registries.

    Thread-safe: one observer may serve a parallel multi-source run.
    Within one source, events arrive from a single worker thread in
    pipeline order, so each per-source registry's observation lists are
    deterministic; the cross-source merge order is pinned by
    :meth:`note_source_order`.

    Preprocessing caches registered through :meth:`observe_cache`
    contribute their lifetime hit/miss/races statistics to the snapshot
    (``ObjectRunner`` registers its cache automatically when this
    observer is subscribed).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._per_source: dict[str, MetricsRegistry] = {}
        self._source_order: list[str] = []
        self._caches: list["PreprocessCache"] = []
        self._adopted_cache_stats: list[dict[str, int]] = []

    # -- wiring -----------------------------------------------------------

    def note_source_order(self, sources: Iterable[str]) -> None:
        """Pin the snapshot merge order of the given sources.

        Call before a (possibly parallel) multi-source run with the input
        order; sources already noted keep their original position.
        """
        with self._lock:
            for source in sources:
                if source not in self._source_order:
                    self._source_order.append(source)

    def observe_cache(self, cache: "PreprocessCache") -> None:
        """Fold this cache's lifetime stats into future snapshots."""
        with self._lock:
            if not any(existing is cache for existing in self._caches):
                self._caches.append(cache)

    def adopt_source(self, source: str, registry: MetricsRegistry) -> None:
        """Fold a per-source registry produced elsewhere into this observer.

        The process backend runs each source in a worker with its own
        :class:`MetricsRegistry`; the parent adopts them here.  Merging
        into the source's own slot keeps the cross-source fold pinned to
        :meth:`note_source_order`, so a process-backend run snapshots
        byte-identically to a serial one.
        """
        self._registry(source).merge(registry)

    def adopt_cache_stats(self, stats: Mapping[str, int]) -> None:
        """Fold a static cache-stats mapping into future snapshots.

        Worker processes cannot share live :class:`PreprocessCache`
        objects with the parent, so they report their final stats and the
        parent adopts the dict — summed alongside the observed caches.
        """
        with self._lock:
            self._adopted_cache_stats.append(dict(stats))

    def _registry(self, source: str) -> MetricsRegistry:
        """The per-source registry, created (and ordered) on first use."""
        with self._lock:
            registry = self._per_source.get(source)
            if registry is None:
                registry = MetricsRegistry()
                self._per_source[source] = registry
                if source not in self._source_order:
                    self._source_order.append(source)
            return registry

    # -- event hooks ------------------------------------------------------

    def on_stage_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Record the stage's wall-clock and counter deltas."""
        registry = self._registry(event.source)
        registry.observe(f"stage.{event.stage}", event.elapsed)
        for name, delta in event.counters.items():
            registry.count(name, delta)

    def on_stage_retry(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Count the retry against its stage."""
        self._registry(event.source).count(f"retries.{event.stage}")

    def on_pipeline_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Record the completed run: total elapsed, run and discard counts."""
        registry = self._registry(event.source)
        registry.observe("pipeline", event.elapsed)
        registry.count("runs")
        if event.discarded:
            registry.count("discards")

    # -- snapshots --------------------------------------------------------

    def sources(self) -> tuple[str, ...]:
        """Observed sources in merge order (noted order, then first-seen)."""
        with self._lock:
            ordered = [s for s in self._source_order if s in self._per_source]
            stragglers = sorted(set(self._per_source) - set(ordered))
            return tuple(ordered + stragglers)

    def source_registry(self, source: str) -> MetricsRegistry:
        """The per-source registry (created empty on first access).

        Worker processes use this to export what they observed for each
        source; the parent side pairs it with :meth:`adopt_source`.
        """
        return self._registry(source)

    def merged_registry(self) -> MetricsRegistry:
        """All per-source registries folded together in merge order."""
        order = self.sources()
        with self._lock:
            registries = [self._per_source[source] for source in order]
        return MetricsRegistry.merged(registries)

    def cache_stats(self) -> dict[str, int]:
        """Summed lifetime stats of every observed preprocessing cache."""
        with self._lock:
            caches = list(self._caches)
            adopted = [dict(stats) for stats in self._adopted_cache_stats]
        totals = {"hits": 0, "misses": 0, "races": 0, "entries": 0}
        for stats in [cache.stats() for cache in caches] + adopted:
            for name, value in stats.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def snapshot(self) -> dict[str, object]:
        """Everything observed, as one deterministic JSON-ready mapping.

        ``sources`` lists the merge order, ``per_source`` the individual
        registries, ``merged`` their ordered fold, and ``cache`` the
        summed preprocessing-cache statistics.  Given the same events and
        caches, two observers snapshot byte-identically under
        ``json.dumps(..., sort_keys=True)`` regardless of how many
        threads delivered the events.
        """
        order = self.sources()
        with self._lock:
            per_source = {
                source: self._per_source[source] for source in order
            }
        return {
            "sources": list(order),
            "per_source": {
                source: registry.snapshot()
                for source, registry in per_source.items()
            },
            "merged": MetricsRegistry.merged(per_source.values()).snapshot(),
            "cache": self.cache_stats(),
        }
