"""Deterministic ``cProfile`` harness over the benchmark catalog.

``repro bench --profile`` drives this module: it runs the same catalog
sweep as a BENCH capture (same sources, same session-wide preprocess
cache, same systems) under ``cProfile`` and renders two tables —

- the per-stage timer summaries the :class:`~repro.metrics.observer.
  MetricsObserver` already aggregates (wall-clock measurement stays
  confined to that boundary; this module never reads the clock itself),
- the top project functions by cumulative profiler time, with repo-
  relative locations and deterministic tie-breaking, so two profiles of
  the same build rank the same frames in the same order.

The numbers themselves vary with the host — the *structure* (which
frames dominate, how stage time decomposes) is the reproducible part,
and is what the hot-path work in ``src/repro/wrapper/`` was driven by.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field

from repro.metrics.bench import BenchConfig, BenchSession

#: Path fragments identifying project frames worth showing; everything
#: else (stdlib, interpreter builtins) is noise at this granularity.
PROJECT_FRAGMENTS = ("repro", "benchmarks")


@dataclass
class ProfileRow:
    """One function's aggregate profiler statistics."""

    location: str
    calls: int
    tottime: float
    cumtime: float


@dataclass
class ProfileReport:
    """Everything ``render_profile`` needs to print the profile tables."""

    scale: float
    systems: tuple[str, ...]
    #: ``"system: timer"`` -> summary dict (count/total/mean/p50/p95),
    #: straight from the metrics observer of each profiled run.
    stage_timers: dict[str, dict] = field(default_factory=dict)
    rows: list[ProfileRow] = field(default_factory=list)


def _normalize_location(filename: str, line: int, name: str) -> str | None:
    """Repo-relative ``path:line(function)`` for project frames, else None."""
    normalized = filename.replace("\\", "/")
    for anchor in ("src/repro/", "benchmarks/"):
        index = normalized.rfind(anchor)
        if index >= 0:
            return f"{normalized[index:]}:{line}({name})"
    return None


def profile_session(config: BenchConfig | None = None) -> ProfileReport:
    """Profile one catalog sweep per configured system.

    Each system's ``run_system`` call runs under the shared profiler, so
    the function table aggregates across systems while the stage table
    stays per-system.
    """
    config = config or BenchConfig()
    session = BenchSession(config)
    profiler = cProfile.Profile()
    report = ProfileReport(scale=config.scale, systems=tuple(config.systems))
    for system_name in config.systems:
        profiler.enable()
        __, wrap, metrics = session.run_system(system_name)
        profiler.disable()
        merged = metrics.merged_registry().snapshot()
        for timer_name in sorted(merged["timers"]):
            key = f"{system_name}: {timer_name}"
            report.stage_timers[key] = merged["timers"][timer_name]
        wrap_summary = wrap.summary("wrap")
        if wrap_summary is not None:
            report.stage_timers[f"{system_name}: wrap"] = (
                wrap_summary.as_dict()
            )
    stats = pstats.Stats(profiler)
    rows: list[ProfileRow] = []
    for (filename, line, name), entry in stats.stats.items():  # type: ignore[attr-defined]
        location = _normalize_location(filename, line, name)
        if location is None:
            continue
        cc, nc, tt, ct, __ = entry
        rows.append(
            ProfileRow(location=location, calls=nc, tottime=tt, cumtime=ct)
        )
    # Deterministic order: cumulative time, then total time, then the
    # location string so equal-time frames never swap between runs.
    rows.sort(key=lambda row: (-row.cumtime, -row.tottime, row.location))
    report.rows = rows
    return report


def render_profile(report: ProfileReport, top: int = 25) -> str:
    """Fixed-width text rendering of the stage and function tables."""
    lines: list[str] = []
    lines.append(
        f"profile: scale={report.scale} systems={','.join(report.systems)}"
    )
    lines.append("")
    lines.append("stage timers (observer boundary)")
    header = f"  {'timer':<40} {'count':>7} {'total s':>9} {'mean ms':>9}"
    lines.append(header)
    for key in sorted(report.stage_timers):
        summary = report.stage_timers[key]
        lines.append(
            f"  {key:<40} {summary.get('count', 0):>7} "
            f"{summary.get('total', 0.0):>9.3f} "
            f"{summary.get('mean', 0.0) * 1000:>9.2f}"
        )
    lines.append("")
    lines.append(f"top {top} project functions by cumulative time")
    lines.append(
        f"  {'cum s':>8} {'tot s':>8} {'calls':>9}  function"
    )
    for row in report.rows[:top]:
        lines.append(
            f"  {row.cumtime:>8.3f} {row.tottime:>8.3f} {row.calls:>9}  "
            f"{row.location}"
        )
    return "\n".join(lines)
