"""A deterministic-friendly registry of counters, gauges and timers.

The registry is a passive accumulator: it never reads a clock and never
inspects the process, so two registries fed the same observations are
equal no matter when, where or on how many threads they were filled.
Wall-clock measurement stays in the observer layer
(:mod:`repro.metrics.observer`), which hands finished durations in — the
split the reprolint ``D102`` rule enforces.

Merging is explicit and ordered: :meth:`MetricsRegistry.merge` folds
another registry in, and :meth:`MetricsRegistry.merged` folds a sequence
in input order.  Counters add, gauges last-write-wins (later registries
override earlier ones), timer observation lists concatenate — so merging
per-source registries in input order yields the same snapshot whether the
sources ran serially or on a thread pool.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TimerSummary:
    """Order statistics of one timer's observations, in seconds."""

    count: int
    total: float
    min: float
    max: float
    mean: float
    p50: float
    p95: float

    def as_dict(self) -> dict[str, float]:
        """The summary as a plain JSON-serializable mapping."""
        return {
            "count": self.count,
            "total": _round(self.total),
            "min": _round(self.min),
            "max": _round(self.max),
            "mean": _round(self.mean),
            "p50": _round(self.p50),
            "p95": _round(self.p95),
        }


def _round(value: float) -> float:
    """Stable 9-decimal rounding for snapshot output."""
    return round(value, 9)


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted observation list."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _summarize(values: list[float]) -> "TimerSummary | None":
    """Order statistics of an observation list (``None`` when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    return TimerSummary(
        count=len(ordered),
        total=sum(ordered),
        min=ordered[0],
        max=ordered[-1],
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
    )


class MetricsRegistry:
    """Thread-safe accumulator of counters, gauges and timer observations.

    Counters are monotonically growing integers (``count``), gauges are
    point-in-time floats with last-write-wins semantics (``gauge``), and
    timers collect duration observations (``observe``) summarized on
    demand as min/max/mean/p50/p95 (:meth:`summary`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # -- recording --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named counter by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Append one duration observation to the named timer."""
        with self._lock:
            self._timers.setdefault(name, []).append(float(seconds))

    # -- reading ----------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a gauge (``default`` when never set)."""
        with self._lock:
            return self._gauges.get(name, default)

    def observations(self, name: str) -> tuple[float, ...]:
        """All recorded observations of a timer, in recording order."""
        with self._lock:
            return tuple(self._timers.get(name, ()))

    def summary(self, name: str) -> TimerSummary | None:
        """Order statistics of one timer (``None`` if it never fired)."""
        with self._lock:
            values = list(self._timers.get(name, ()))
        return _summarize(values)

    def timer_names(self) -> tuple[str, ...]:
        """Names of all timers with at least one observation, sorted."""
        with self._lock:
            return tuple(sorted(self._timers))

    # -- merging ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters add, gauges take the other registry's value (last write
        wins), timer observations append in the other registry's order.
        """
        counters, gauges, timers = other._state()
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0) + amount
            self._gauges.update(gauges)
            for name, values in timers.items():
                self._timers.setdefault(name, []).extend(values)

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry folding ``registries`` in input order."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    def _state(self) -> tuple[dict[str, int], dict[str, float], dict[str, list[float]]]:
        """A consistent copy of the internal maps (for merge/snapshot)."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                {name: list(values) for name, values in self._timers.items()},
            )

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        """A lock-free state copy, so registries cross process boundaries.

        The process backend of ``run_sources`` ships each worker's
        per-source registries back to the parent for the order-pinned
        merge; the lock is dropped here and recreated on unpickle.

        Each attribute is read directly (not through :meth:`_state`) so
        the homeward surface is explicit per field: reprolint's P602
        rule checks that every worker-mutated attribute appears here,
        and a deleted line is a caught regression, not silent data loss.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: list(values)
                    for name, values in self._timers.items()
                },
            }

    def __setstate__(self, state: dict[str, object]) -> None:
        """Rebuild the registry (and a fresh lock) from pickled state."""
        self._lock = threading.Lock()
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._timers = {
            name: list(values) for name, values in state["timers"].items()
        }

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """The registry as a deterministic JSON-serializable mapping.

        Keys are sorted and floats rounded to nine decimals, so equal
        registries serialize byte-identically under
        ``json.dumps(..., sort_keys=True)``.
        """
        counters, gauges, timers = self._state()
        summaries: dict[str, dict[str, float]] = {}
        for name in sorted(timers):
            summary = _summarize(timers[name])
            if summary is not None:
                summaries[name] = summary.as_dict()
        return {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: _round(gauges[name]) for name in sorted(gauges)},
            "timers": summaries,
        }

    def counters_snapshot(self) -> dict[str, int]:
        """Just the counters, sorted by name."""
        with self._lock:
            return {name: self._counters[name] for name in sorted(self._counters)}


#: Process-wide registry for library-internal health counters (for
#: example the grading layer's negative-missed clamp).  Created eagerly
#: at import time so no function ever rebinds a module-level name
#: (keeping reprolint's T301 shared-state rule quiet by construction).
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry for internal health counters."""
    return _DEFAULT_REGISTRY
