"""Benchmark capture: run the catalog, persist ``BENCH_<seq>.json``, compare.

The ``repro bench`` subcommand drives this module: it runs every system
under comparison (ObjectRunner, ExAlg, RoadRunner) over the Table I
source catalog, grades each run against the golden standard, and writes
one schema-versioned JSON artifact at the repository root —

- per-domain ``Pc``/``Pp`` and object classification counts per system,
- per-stage timing summaries (min/max/mean/p50/p95) from pipeline events,
- preprocessing-cache hit/miss/races statistics,
- wrapping-time summaries, peak RSS, scale/coverage/seed configuration.

``BENCH_0.json`` is the committed baseline; every subsequent capture gets
the next sequence number, so the repo accumulates a queryable performance
trajectory instead of throwing each run's numbers away with the process.
:func:`compare_documents` diffs two artifacts and flags regressions
beyond configurable thresholds (quality always; timings and volumes only
when scale and registry mode both match, because timings at different
workload scales — or cold induction vs warm registry hits — are not
comparable).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.baselines import ExAlgSystem, RoadRunnerSystem
from repro.core.cache import PreprocessCache
from repro.core.objectrunner import ObjectRunnerSystem
from repro.core.params import RunParams
from repro.core.sharding import ShardSpec, stable_shard
from repro.datasets import (
    SCALE_TIER_THRESHOLD,
    CatalogEntry,
    build_knowledge,
    catalog_entries,
    domain_spec,
    generate_source,
)
from repro.datasets.knowledge import completion_entries
from repro.eval import aggregate_domain, grade_source
from repro.metrics.observer import (
    MetricsObserver,
    monotonic_seconds,
    peak_rss_bytes,
    wall_timestamp,
)
from repro.metrics.registry import MetricsRegistry
from repro.registry.store import (
    StagedRegistryView,
    StagedWrites,
    WrapperRegistry,
    write_json_atomic,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.eval.metrics import DomainMetrics

#: Version of the BENCH artifact schema; bump on incompatible changes.
#: v2 added the execution keys (``config.shard``/``backend``/``workers``)
#: and the top-level ``sharding`` block with per-shard wall timings.
BENCH_SCHEMA_VERSION = 2

#: Sweep backends of :class:`BenchSession`: ``serial`` runs the catalog
#: in one loop; ``thread``/``process`` partition it into ``workers``
#: hash-mod shards run on a pool, reassembled in catalog order.
BENCH_BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

#: CatalogCache bound at the scale tier: replicated sources are visited
#: once per sweep, so only a small working set needs to stay resident.
SCALE_TIER_CATALOG_SOURCES = 64

#: Preprocess-cache bound at the scale tier (trees are the big objects).
SCALE_TIER_CACHE_ENTRIES = 256

#: Filename prefix of persisted benchmark artifacts.
BENCH_PREFIX = "BENCH_"

#: Systems captured by default, in report order.
DEFAULT_SYSTEMS: tuple[str, ...] = ("objectrunner", "exalg", "roadrunner")

#: Default dictionary coverage, matching the paper's 20% floor.
DICTIONARY_COVERAGE = 0.2

#: The domains of Table I, in the paper's order.
DOMAIN_ORDER: tuple[str, ...] = (
    "concerts", "albums", "books", "publications", "cars",
)


class CatalogCache:
    """Memoizes the expensive per-entry setup of a catalog sweep.

    Domain knowledge (ontology + corpus) per domain/coverage, generated
    sources per entry — shared by the benchmark suite's harness and the
    ``repro bench`` session so repeated sweeps never regenerate them.

    Thread-safe (the thread backend's shards share one cache), and
    optionally bounded: ``max_sources`` caps the generated-source map
    with least-recently-used eviction, so a 1000-source scale-tier sweep
    — where every source is visited once and never again — holds a small
    working set instead of a gigabyte of page trees.  Generation is
    deterministic, so an evicted-and-regenerated source is identical.
    """

    def __init__(self, max_sources: int | None = None) -> None:
        self._lock = threading.Lock()
        self._knowledge: dict[tuple[str, float], object] = {}
        self._sources: dict[str, object] = {}
        self._max_sources = max_sources

    def knowledge(self, domain_name: str, coverage: float):
        """The built domain knowledge for one domain at one coverage."""
        key = (domain_name, coverage)
        with self._lock:
            hit = self._knowledge.get(key)
        if hit is not None:
            return hit
        built = build_knowledge(domain_spec(domain_name), coverage=coverage)
        with self._lock:
            return self._knowledge.setdefault(key, built)

    def source(self, entry: CatalogEntry):
        """The deterministic generated source of one catalog entry."""
        name = entry.spec.name
        with self._lock:
            hit = self._sources.get(name)
            if hit is not None:
                # Reinsert to refresh recency (dicts iterate insertion
                # order, so the first key is always the LRU victim).
                self._sources.pop(name)
                self._sources[name] = hit
                return hit
        built = generate_source(entry.spec, domain_spec(entry.spec.domain))
        with self._lock:
            existing = self._sources.get(name)
            if existing is not None:
                return existing
            self._sources[name] = built
            if self._max_sources is not None:
                while len(self._sources) > self._max_sources:
                    self._sources.pop(next(iter(self._sources)))
            return built


def build_system(
    name: str,
    entry: CatalogEntry,
    cache: CatalogCache,
    coverage: float = DICTIONARY_COVERAGE,
    params: RunParams | None = None,
    observers: Iterable = (),
    wrapper_registry: WrapperRegistry | StagedRegistryView | None = None,
):
    """Instantiate a system by short name for one catalog source.

    ObjectRunner gets the domain knowledge plus the per-source dictionary
    completion (the paper ensured every dictionary covered at least 20% of
    each source's instances); ``observers`` subscribe to every pipeline
    run the system makes.  A ``wrapper_registry`` — the registry itself or
    a per-source :class:`~repro.registry.store.StagedRegistryView` — puts
    ObjectRunner on the registry-first path (the warm-path benchmark);
    baselines ignore it.
    """
    if name == "objectrunner":
        domain_name = entry.spec.domain
        knowledge = cache.knowledge(domain_name, coverage)
        domain = domain_spec(domain_name)
        source = cache.source(entry)
        extra = completion_entries(
            domain,
            source.gold,
            coverage=coverage,
            seed=("completion", entry.spec.name),
        )
        return ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            params=params,
            extra_gazetteer_entries=extra,
            observers=tuple(observers),
            wrapper_registry=wrapper_registry,
        )
    if name == "exalg":
        return ExAlgSystem()
    if name == "roadrunner":
        return RoadRunnerSystem()
    raise ValueError(f"unknown system {name!r}")


@dataclass
class BenchConfig:
    """Everything that parameterizes one benchmark capture."""

    scale: float = 0.1
    coverage: float = DICTIONARY_COVERAGE
    systems: tuple[str, ...] = DEFAULT_SYSTEMS
    #: LRU capacity of the session preprocessing cache; sized so a full
    #: catalog sweep at default scale never evicts.  Clamped to
    #: :data:`SCALE_TIER_CACHE_ENTRIES` at the scale tier.
    cache_entries: int = 4096
    #: Wrapper registry directory for the registry-first (warm) path;
    #: ``None`` captures the classic cold pipeline.
    registry_root: str | None = None
    #: Which slice of the catalog this capture covers; ``None`` is the
    #: whole catalog.  Shard documents merge via :func:`merge_documents`.
    shard: ShardSpec | None = None
    #: Sweep backend (:data:`BENCH_BACKENDS`); thread/process partition
    #: the (shard-filtered) catalog into ``workers`` hash-mod sub-shards.
    backend: str = "serial"
    #: Pool width of the thread/process backends; 1 means serial.
    workers: int = 1
    #: Also time the alternate pooled backend (process vs thread) over
    #: the same catalog and record it under ``sharding.reference`` —
    #: quality results of the reference sweep are discarded.
    compare_backends: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BENCH_BACKENDS:
            known = ", ".join(BENCH_BACKENDS)
            raise ValueError(
                f"unknown bench backend {self.backend!r} (known: {known})"
            )
        if self.shard is not None and not isinstance(self.shard, ShardSpec):
            raise ValueError(
                f"shard must be a ShardSpec or None, got {self.shard!r}"
            )


class BenchSession:
    """One benchmark capture: run the catalog, build the BENCH document.

    Pages are tidied/cleaned through a session-wide
    :class:`~repro.core.cache.PreprocessCache`, so the second and third
    systems draw cache hits instead of re-paying preprocessing — and every
    system receives fresh copies instead of sharing mutated trees.

    Registry writes are staged per source and applied in catalog order
    at the end of each sweep — the same batch-start semantics
    ``ObjectRunner.run_sources`` uses — so a serial sweep, a thread- or
    process-pooled sweep, and a merge of per-shard runs all leave the
    registry byte-identical.
    """

    def __init__(self, config: BenchConfig | None = None):
        self.config = config or BenchConfig()
        at_tier = self.config.scale >= SCALE_TIER_THRESHOLD
        self.catalog = CatalogCache(
            max_sources=SCALE_TIER_CATALOG_SOURCES if at_tier else None
        )
        cache_entries = self.config.cache_entries
        if at_tier:
            cache_entries = min(cache_entries, SCALE_TIER_CACHE_ENTRIES)
        self.preprocess_cache = PreprocessCache(max_entries=cache_entries)
        self.registry = (
            WrapperRegistry(self.config.registry_root)
            if self.config.registry_root
            else None
        )
        #: Per-system shard-timing rows and sweep walls of the last
        #: capture, folded into the document's ``sharding`` block.
        self._shard_rows: dict[str, list[dict]] = {}
        self._walls: dict[str, float] = {}
        self._worker_cache_stats: list[dict[str, int]] = []

    def entries(self) -> list[CatalogEntry]:
        """The catalog slice this session covers, in catalog order."""
        entries = catalog_entries(scale=self.config.scale)
        if self.config.shard is not None:
            # Membership hashes the source *name* (sha256, not hash()),
            # so it is identical across processes and PYTHONHASHSEED.
            entries = [
                entry
                for entry in entries
                if self.config.shard.contains(entry.spec.name)
            ]
        return entries

    def pages(self, entry: CatalogEntry):
        """Freshly cloned, cleaned page trees of one entry (via the cache)."""
        source = self.catalog.source(entry)
        return self.preprocess_cache.clean_pages(source.pages).pages

    def _shard_label(self) -> str | None:
        return str(self.config.shard) if self.config.shard else None

    def _run_entry(
        self,
        system_name: str,
        entry: CatalogEntry,
        metrics: MetricsObserver,
        registry_view: StagedRegistryView | None,
    ):
        """Run one system over one entry; grade it against its gold."""
        domain = domain_spec(entry.spec.domain)
        source = self.catalog.source(entry)
        pages = self.pages(entry)
        system = build_system(
            system_name,
            entry,
            self.catalog,
            coverage=self.config.coverage,
            observers=(metrics,),
            wrapper_registry=registry_view,
        )
        output = system.run(entry.spec.name, pages, domain.sod)
        return grade_source(domain, source.gold, output), output.wrap_seconds

    def _sweep_serial(self, system_name, entries, metrics):
        """One-loop sweep; the single timing row covers the whole slice."""
        start = monotonic_seconds()
        assembled = []
        for entry in entries:
            view = (
                StagedRegistryView(self.registry) if self.registry else None
            )
            evaluation, wrap_seconds = self._run_entry(
                system_name, entry, metrics, view
            )
            assembled.append((entry, evaluation, wrap_seconds, view))
        row = {
            "shard": self._shard_label(),
            "index": 0,
            "count": 1,
            "sources": len(entries),
            "wall_seconds": round(monotonic_seconds() - start, 6),
        }
        return assembled, [row]

    def _sweep_thread(self, system_name, entries, metrics, workers):
        """Hash-mod sub-shards on a thread pool, sharing session caches."""
        chunks = _shard_chunks(entries, workers)

        def run_chunk(index: int, chunk: list[CatalogEntry]):
            start = monotonic_seconds()
            results = []
            for entry in chunk:
                view = (
                    StagedRegistryView(self.registry)
                    if self.registry
                    else None
                )
                evaluation, wrap_seconds = self._run_entry(
                    system_name, entry, metrics, view
                )
                results.append((entry.spec.name, evaluation, wrap_seconds, view))
            return index, results, monotonic_seconds() - start

        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(run_chunk, index, chunk) for index, chunk in chunks
            ]
            outcomes = [future.result() for future in futures]
        rows = []
        by_name: dict[str, tuple] = {}
        for index, results, wall in outcomes:
            rows.append({
                "shard": self._shard_label(),
                "index": index,
                "count": workers,
                "sources": len(results),
                "wall_seconds": round(wall, 6),
            })
            for name, evaluation, wrap_seconds, view in results:
                by_name[name] = (evaluation, wrap_seconds, view)
        assembled = [
            (entry, *by_name[entry.spec.name]) for entry in entries
        ]
        return assembled, rows

    def _sweep_process(self, system_name, entries, metrics, workers):
        """Hash-mod sub-shards fanned out to worker processes.

        Each worker runs its slice serially with its own caches and a
        read-only view of the registry root, shipping back evaluations,
        per-source metrics registries, staged registry writes and cache
        stats.  The parent adopts the metrics (merge order stays pinned
        to catalog order) and applies the writes in catalog order, so
        the result is byte-identical to the serial sweep.
        """
        chunks = _shard_chunks(entries, workers)
        tasks = [
            _BenchShardTask(
                config=self.config,
                system_name=system_name,
                names=tuple(entry.spec.name for entry in chunk),
                index=index,
                count=workers,
            )
            for index, chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            results = list(pool.map(_bench_shard_worker, tasks))
        rows = []
        by_name: dict[str, tuple] = {}
        writes_by_name: dict[str, StagedWrites | None] = {}
        for result in results:
            rows.append({
                "shard": self._shard_label(),
                "index": result.index,
                "count": result.count,
                "sources": result.sources,
                "wall_seconds": result.wall_seconds,
            })
            for name, registry in result.registries.items():
                metrics.adopt_source(name, registry)
            metrics.adopt_cache_stats(result.cache_stats)
            self._worker_cache_stats.append(dict(result.cache_stats))
            if result.registry_stats is not None and self.registry is not None:
                self.registry.adopt_stats(result.registry_stats)
            for name, evaluation, wrap_seconds in result.evaluations:
                by_name[name] = (evaluation, wrap_seconds)
            # Keyed per-source stores, not dict.update: each source lives
            # in exactly one chunk, so the merged mapping cannot depend
            # on chunk layout (reprolint P604).
            for name, staged in result.writes.items():
                writes_by_name[name] = staged
        assembled = [
            (
                entry,
                *by_name[entry.spec.name],
                writes_by_name.get(entry.spec.name),
            )
            for entry in entries
        ]
        return assembled, rows

    def run_system(
        self, system_name: str
    ) -> tuple[list["DomainMetrics"], MetricsRegistry, MetricsObserver]:
        """Run one system over the session's catalog slice.

        Returns the per-domain metrics (paper order), a registry holding
        the per-source ``wrap`` timer, and the pipeline metrics observer
        (meaningful for ObjectRunner; empty for the baselines).  The
        backend only changes *how* the slice is swept; evaluations, the
        wrap timer and the staged registry writes are always assembled
        in catalog order afterwards.
        """
        entries = self.entries()
        metrics = MetricsObserver()
        metrics.observe_cache(self.preprocess_cache)
        metrics.note_source_order(entry.spec.name for entry in entries)
        wrap = MetricsRegistry()
        workers = max(1, int(self.config.workers))
        pooled = workers > 1 and len(entries) > 1
        start = monotonic_seconds()
        if self.config.backend == "process" and pooled:
            assembled, rows = self._sweep_process(
                system_name, entries, metrics, workers
            )
        elif self.config.backend == "thread" and pooled:
            assembled, rows = self._sweep_thread(
                system_name, entries, metrics, workers
            )
        else:
            assembled, rows = self._sweep_serial(system_name, entries, metrics)
        evaluations: dict[str, list] = {name: [] for name in DOMAIN_ORDER}
        for entry, evaluation, wrap_seconds, staged in assembled:
            evaluations[entry.spec.domain].append(evaluation)
            wrap.observe("wrap", wrap_seconds)
            if staged is not None and self.registry is not None:
                staged.apply_to(self.registry)
        self._shard_rows[system_name] = rows
        # The sweep wall includes pool startup/teardown and the merge —
        # the number the thread-vs-process comparison is about.
        self._walls[system_name] = round(monotonic_seconds() - start, 6)
        domains = [
            aggregate_domain(domain_name, system_name, evaluations[domain_name])
            for domain_name in DOMAIN_ORDER
        ]
        return domains, wrap, metrics

    def capture(self) -> dict:
        """Run every configured system and build the BENCH document.

        The document's top-level shape is the ``bench`` artifact family
        statically tracked by :mod:`repro.analysis.schemas`: adding or
        renaming a key here without bumping ``BENCH_SCHEMA_VERSION``
        fails reprolint S502 against the committed ``schemas.json``, and
        S504 checks :func:`compare_documents` stays tolerant of every
        committed ``BENCH_*.json``.
        """
        systems_doc: dict[str, dict] = {}
        for system_name in self.config.systems:
            domains, wrap, metrics = self.run_system(system_name)
            merged = metrics.merged_registry().snapshot()
            has_events = bool(merged["timers"]) or bool(merged["counters"])
            wrap_summary = wrap.summary("wrap")
            systems_doc[system_name] = {
                "domains": {
                    m.domain: _domain_doc(m) for m in domains
                },
                "wrap_seconds": (
                    wrap_summary.as_dict() if wrap_summary else None
                ),
                "metrics": merged if has_events else None,
                "cache": metrics.cache_stats() if has_events else None,
            }
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_at": wall_timestamp(),
            "python": platform.python_version(),
            "platform": sys.platform,
            "config": {
                "scale": self.config.scale,
                "coverage": self.config.coverage,
                "systems": list(self.config.systems),
                "sources": len(self.entries()),
                "registry": bool(self.registry),
                "shard": self._shard_label(),
                "backend": self.config.backend,
                "workers": max(1, int(self.config.workers)),
                "seed": {
                    "sampling_seed": RunParams().sampling_seed,
                    "pythonhashseed": os.environ.get("PYTHONHASHSEED", ""),
                },
            },
            "process": {"peak_rss_bytes": peak_rss_bytes()},
            "cache": self._session_cache_stats(),
            "registry": self.registry.stats() if self.registry else None,
            "systems": systems_doc,
            "sharding": {
                "shard": self._shard_label(),
                "backend": self.config.backend,
                "workers": max(1, int(self.config.workers)),
                "merged_from": None,
                "per_shard": {
                    name: rows for name, rows in self._shard_rows.items()
                } or None,
                "wall_seconds": dict(self._walls) or None,
                "reference": (
                    self._reference_backend()
                    if self.config.compare_backends
                    else None
                ),
            },
        }

    def _session_cache_stats(self) -> dict[str, int]:
        """Session preprocess-cache stats plus adopted worker stats.

        Process-backend sweeps preprocess in the workers, whose caches
        die with them; their final stats are summed into the session's
        (otherwise idle) cache numbers so the document still accounts
        for every hit and miss of the capture.
        """
        totals = dict(self.preprocess_cache.stats())
        for stats in self._worker_cache_stats:
            for name, value in stats.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def _reference_backend(self) -> dict | None:
        """Time the alternate pooled backend over the same catalog slice.

        Runs every configured system once more under the other pooled
        backend (process ⇄ thread) in a fresh session — fresh caches, no
        registry — and reports only the walls and per-shard rows.  This
        is the honest thread-vs-process comparison the BENCH_4 capture
        demonstrates; quality output is discarded (it is byte-identical
        by construction).
        """
        if self.config.backend == "serial":
            return None
        alternate = "thread" if self.config.backend == "process" else "process"
        config = dataclasses.replace(
            self.config,
            backend=alternate,
            registry_root=None,
            compare_backends=False,
        )
        session = BenchSession(config)
        for system_name in self.config.systems:
            session.run_system(system_name)
        return {
            "backend": alternate,
            "workers": max(1, int(config.workers)),
            "wall_seconds": dict(session._walls),
            "per_shard": {
                name: rows for name, rows in session._shard_rows.items()
            } or None,
        }


def _domain_doc(metrics: "DomainMetrics") -> dict:
    """One domain's Pc/Pp and object classification counts."""
    return {
        "pc": round(metrics.precision_correct, 6),
        "pp": round(metrics.precision_partial, 6),
        "objects_total": metrics.objects_total,
        "objects_correct": metrics.objects_correct,
        "objects_partial": metrics.objects_partial,
        "objects_incorrect": metrics.objects_incorrect,
        "sources": len(metrics.evaluations),
        "sources_discarded": sum(
            1 for e in metrics.evaluations if e.discarded
        ),
    }


# -- pooled sweeps --------------------------------------------------------


def _shard_chunks(
    entries: list[CatalogEntry], workers: int
) -> list[tuple[int, list[CatalogEntry]]]:
    """``(shard_index, chunk)`` hash-mod partition of a catalog slice.

    Membership is :func:`~repro.core.sharding.stable_shard` of the source
    name, so the same entry always lands on the same shard index
    regardless of process, platform or ``PYTHONHASHSEED``; empty shards
    are dropped.  Order within a chunk is catalog order.
    """
    chunks: list[list[CatalogEntry]] = [[] for _ in range(workers)]
    for entry in entries:
        chunks[stable_shard(entry.spec.name, workers)].append(entry)
    return [
        (index, chunk) for index, chunk in enumerate(chunks) if chunk
    ]


@dataclass(frozen=True)
class _BenchShardTask:
    """Everything a bench worker process needs (all picklable)."""

    config: BenchConfig
    system_name: str
    names: tuple[str, ...]
    index: int
    count: int


@dataclass(frozen=True)
class _BenchShardResult:
    """What one bench worker ships back to the parent."""

    index: int
    count: int
    sources: int
    wall_seconds: float
    #: ``(source_name, evaluation, wrap_seconds)`` in the chunk's order.
    evaluations: tuple
    #: Per-source metrics registries, adopted into the parent observer.
    registries: dict
    #: Per-source staged registry writes (``None`` without a registry).
    writes: dict
    registry_stats: dict | None
    cache_stats: dict


def _bench_shard_worker(task: _BenchShardTask) -> _BenchShardResult:
    """Run one shard of a bench sweep in a worker process.

    The worker builds its own serial session (own caches, own read view
    of the registry root) and never applies registry writes — it exports
    them as :class:`~repro.registry.store.StagedWrites` for the parent
    to apply in catalog order, exactly like the serial sweep would.
    """
    config = dataclasses.replace(
        task.config,
        backend="serial",
        workers=1,
        shard=None,
        compare_backends=False,
    )
    session = BenchSession(config)
    start = monotonic_seconds()
    wanted = set(task.names)
    entries = [
        entry
        for entry in catalog_entries(scale=config.scale)
        if entry.spec.name in wanted
    ]
    metrics = MetricsObserver()
    metrics.observe_cache(session.preprocess_cache)
    metrics.note_source_order(entry.spec.name for entry in entries)
    evaluations = []
    writes: dict[str, StagedWrites | None] = {}
    for entry in entries:
        view = (
            StagedRegistryView(session.registry) if session.registry else None
        )
        evaluation, wrap_seconds = session._run_entry(
            task.system_name, entry, metrics, view
        )
        evaluations.append((entry.spec.name, evaluation, wrap_seconds))
        writes[entry.spec.name] = view.export() if view is not None else None
    return _BenchShardResult(
        index=task.index,
        count=task.count,
        sources=len(entries),
        wall_seconds=round(monotonic_seconds() - start, 6),
        evaluations=tuple(evaluations),
        registries={
            name: metrics.source_registry(name) for name in metrics.sources()
        },
        writes=writes,
        registry_stats=session.registry.stats() if session.registry else None,
        cache_stats=session.preprocess_cache.stats(),
    )


# -- artifact files -------------------------------------------------------


def bench_files(root: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` of every BENCH artifact under ``root``, by seq."""
    found: list[tuple[int, Path]] = []
    for path in sorted(root.glob(f"{BENCH_PREFIX}*.json")):
        suffix = path.stem[len(BENCH_PREFIX):]
        if suffix.isdigit():
            found.append((int(suffix), path))
    return sorted(found)


def next_seq(root: Path) -> int:
    """The sequence number the next capture under ``root`` should use."""
    existing = bench_files(root)
    return existing[-1][0] + 1 if existing else 0


def latest_bench(root: Path, before: int | None = None) -> Path | None:
    """The highest-sequence artifact (optionally below ``before``)."""
    candidates = [
        path
        for seq, path in bench_files(root)
        if before is None or seq < before
    ]
    return candidates[-1] if candidates else None


def write_bench(path: Path, document: dict) -> None:
    """Persist one BENCH document as stable, sorted, indented JSON.

    Routed through the same-directory temp-file + ``os.replace`` writer,
    so a crashed or concurrent capture can never leave a torn,
    half-written artifact at the final name: readers see the old bytes
    or the new bytes, nothing in between.
    """
    write_json_atomic(path, document)


def claim_bench_path(root: Path) -> Path:
    """Atomically claim the next free ``BENCH_<seq>.json`` under ``root``.

    Scanning for the next sequence and then writing it is a two-writer
    race: both scan, both see the same free number, one clobbers the
    other.  The claim instead *creates* the file with
    ``O_CREAT | O_EXCL`` — the kernel hands the name to exactly one
    claimant; the loser sees ``FileExistsError`` (or a fresh scan that
    already counts the winner's file) and retries at the next sequence.
    The claimed file is empty; :func:`write_bench` then replaces it
    atomically with the document.
    """
    while True:
        path = root / f"{BENCH_PREFIX}{next_seq(root)}.json"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return path


def load_bench(path: Path) -> dict:
    """Load one BENCH document."""
    return json.loads(path.read_text(encoding="utf-8"))


# -- comparison -----------------------------------------------------------


@dataclass
class BenchComparison:
    """Outcome of diffing two BENCH documents."""

    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no regression exceeded its threshold."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable multi-line report of the comparison."""
        lines: list[str] = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        if not self.regressions:
            lines.append("no regressions beyond thresholds")
        return "\n".join(lines)


def compare_documents(
    old: dict,
    new: dict,
    quality_threshold: float = 0.02,
    timing_threshold: float = 0.5,
) -> BenchComparison:
    """Diff two BENCH documents, flagging regressions beyond thresholds.

    Quality (per-domain ``Pc``/``Pp``) is compared whenever both captures
    ran the same source population: an absolute drop greater than
    ``quality_threshold`` is a regression.  Every scale below 1.0 runs the
    paper's 49-source catalog (scale only shrinks per-source volume), so
    sub-1.0 captures always gate each other; the replica tier at scale >=
    1.0 measures ``round(scale*1000)`` synthetic sources — a different
    population whose rates are not comparable to the base catalog's, so
    cross-tier (or cross-shard-slice) drops are reported as notes instead.
    Timings (stage means, wrapping means) and object counts are compared
    only when both documents were captured at the same scale *and* in the
    same registry mode — a warm (registry-first) capture skips induction
    entirely, so cold-vs-warm timing diffs are workload differences, not
    regressions.  A relative increase greater than ``timing_threshold``
    (for example ``0.5`` = +50%) is a regression.  Registry hit/miss
    statistics are compared only when *both* documents carry a registry
    block (pre-registry documents like ``BENCH_0.json`` have none).  Peak
    RSS growth is reported as a note, never a failure, because absolute
    memory depends on the host.
    """
    comparison = BenchComparison()
    if old.get("schema_version") != new.get("schema_version"):
        comparison.notes.append(
            f"schema version changed: {old.get('schema_version')} -> "
            f"{new.get('schema_version')}; comparing best-effort"
        )
    old_scale = old.get("config", {}).get("scale")
    new_scale = new.get("config", {}).get("scale")
    same_scale = old_scale == new_scale
    if not same_scale:
        comparison.notes.append(
            f"scale differs ({old_scale} -> {new_scale}); "
            "skipping timing and volume comparisons"
        )
    old_mode = bool(old.get("config", {}).get("registry"))
    new_mode = bool(new.get("config", {}).get("registry"))
    same_mode = old_mode == new_mode
    if not same_mode:
        comparison.notes.append(
            "registry mode differs "
            f"({'warm' if old_mode else 'cold'} -> "
            f"{'warm' if new_mode else 'cold'}); "
            "skipping timing and volume comparisons"
        )
    old_exec = _exec_config(old)
    new_exec = _exec_config(new)
    same_exec = old_exec == new_exec
    if not same_exec:
        comparison.notes.append(
            "execution config differs "
            f"(shard/backend/workers {old_exec} -> {new_exec}); "
            "skipping timing and volume comparisons"
        )
    comparable = same_scale and same_mode and same_exec
    same_population = _catalog_population(old) == _catalog_population(new)
    if not same_population:
        comparison.notes.append(
            "source populations differ "
            f"({_describe_population(old)} -> {_describe_population(new)}); "
            "quality drops reported as notes"
        )
    old_systems = old.get("systems", {})
    new_systems = new.get("systems", {})
    for system_name in sorted(set(old_systems) & set(new_systems)):
        _compare_system(
            comparison,
            system_name,
            old_systems[system_name],
            new_systems[system_name],
            quality_threshold,
            timing_threshold,
            comparable,
            same_population,
        )
    _compare_registry(comparison, old, new, comparable)
    _compare_sharding(comparison, old, new, comparable, timing_threshold)
    old_rss = old.get("process", {}).get("peak_rss_bytes", 0)
    new_rss = new.get("process", {}).get("peak_rss_bytes", 0)
    if old_rss and new_rss and new_rss > old_rss * (1 + timing_threshold):
        comparison.notes.append(
            f"peak RSS grew {old_rss} -> {new_rss} bytes "
            f"(+{(new_rss / old_rss - 1) * 100:.0f}%)"
        )
    return comparison


def _catalog_population(document: dict) -> tuple:
    """The source population a document's quality rates range over.

    Sub-1.0 scales all run the paper's 49-source catalog (scale only
    shrinks per-source volume), so they share one population; the replica
    tier at scale >= 1.0 runs ``round(scale*1000)`` synthetic sources — a
    distinct population per replica count.  A shard capture measures only
    its hash slice, so the shard label is part of the population too.
    """
    config = document.get("config", {})
    scale = float(config.get("scale") or 0.0)
    tier = round(scale * 1000) if scale >= 1.0 else "catalog"
    return (tier, config.get("shard"))


def _describe_population(document: dict) -> str:
    """Render a document's population for comparison notes."""
    tier, shard = _catalog_population(document)
    label = "base catalog" if tier == "catalog" else f"{tier} replicas"
    return f"{label} shard {shard}" if shard else label


def _exec_config(document: dict) -> tuple:
    """The execution triple ``(shard, backend, workers)`` of a document.

    Schema-v1 documents predate the keys; they were all whole-catalog
    serial runs, which is exactly what the defaults say — so a v1/v2
    pair of identical runs still compares timings.
    """
    config = document.get("config", {})
    return (
        config.get("shard"),
        config.get("backend", "serial"),
        int(config.get("workers", 1)),
    )


def _compare_sharding(
    comparison: BenchComparison,
    old: dict,
    new: dict,
    comparable: bool,
    timing_threshold: float,
) -> None:
    """Note sweep-wall growth recorded in the v2 ``sharding`` blocks.

    Sweep walls are end-to-end wall-clock per system — noisy and
    host-dependent, like peak RSS — so growth beyond the timing
    threshold is reported as a note, never a regression.  Schema-v1
    documents have no ``sharding`` block and are skipped silently.
    """
    old_block = old.get("sharding")
    new_block = new.get("sharding")
    if not old_block or not new_block or not comparable:
        return
    old_walls = old_block.get("wall_seconds") or {}
    new_walls = new_block.get("wall_seconds") or {}
    for name in sorted(set(old_walls) & set(new_walls)):
        before = float(old_walls[name])
        after = float(new_walls[name])
        if before > 0 and after > before * (1 + timing_threshold):
            comparison.notes.append(
                f"{name}: sweep wall grew {before:.2f}s -> {after:.2f}s "
                f"(+{(after / before - 1) * 100:.0f}%; host-dependent, "
                "informational only)"
            )


def _compare_registry(
    comparison: BenchComparison,
    old: dict,
    new: dict,
    comparable: bool,
) -> None:
    """Diff registry hit/miss stats when both documents carry the block.

    Pre-registry artifacts (``BENCH_0.json``) have no ``registry`` key and
    cold captures record it as null — a mixed-era or cold-vs-warm pair is
    noted and skipped rather than mis-flagged.  At equal scale and mode,
    growth of the miss count means sources that used to be served from
    the store are re-inducing: a regression.
    """
    old_registry = old.get("registry")
    new_registry = new.get("registry")
    if old_registry is None and new_registry is None:
        return
    if old_registry is None or new_registry is None:
        comparison.notes.append(
            "registry stats present in only one document; "
            "skipping registry comparison"
        )
        return
    if not comparable:
        return
    old_misses = old_registry.get("misses", 0)
    new_misses = new_registry.get("misses", 0)
    if new_misses > old_misses:
        comparison.regressions.append(
            f"registry: misses grew {old_misses} -> {new_misses} "
            "(sources no longer served from the store)"
        )


def _compare_system(
    comparison: BenchComparison,
    system_name: str,
    old: dict,
    new: dict,
    quality_threshold: float,
    timing_threshold: float,
    comparable: bool,
    same_population: bool,
) -> None:
    """Fold one system's quality/timing diffs into the comparison.

    ``comparable`` is True when both captures share scale and registry
    mode; volume and timing diffs are skipped otherwise.
    ``same_population`` is True when both captures measured the same
    source population; quality drops across different populations are
    notes, not regressions.
    """
    old_domains = old.get("domains", {})
    new_domains = new.get("domains", {})
    for domain in sorted(set(old_domains) & set(new_domains)):
        before, after = old_domains[domain], new_domains[domain]
        for rate in ("pc", "pp"):
            drop = before.get(rate, 0.0) - after.get(rate, 0.0)
            if drop > quality_threshold:
                message = (
                    f"{system_name}/{domain}: {rate.capitalize()} dropped "
                    f"{before[rate]:.4f} -> {after[rate]:.4f} "
                    f"(-{drop:.4f} > {quality_threshold})"
                )
                if same_population:
                    comparison.regressions.append(message)
                else:
                    comparison.notes.append(
                        f"{message} (different source populations; "
                        "informational only)"
                    )
        if comparable:
            old_total = before.get("objects_total", 0)
            new_total = after.get("objects_total", 0)
            if old_total and new_total < old_total * (1 - quality_threshold):
                comparison.regressions.append(
                    f"{system_name}/{domain}: objects_total fell "
                    f"{old_total} -> {new_total}"
                )
    if not comparable:
        return
    _compare_timer(
        comparison,
        f"{system_name}: wrap_seconds",
        old.get("wrap_seconds"),
        new.get("wrap_seconds"),
        timing_threshold,
    )
    old_timers = (old.get("metrics") or {}).get("timers", {})
    new_timers = (new.get("metrics") or {}).get("timers", {})
    for timer_name in sorted(set(old_timers) & set(new_timers)):
        _compare_timer(
            comparison,
            f"{system_name}: {timer_name}",
            old_timers[timer_name],
            new_timers[timer_name],
            timing_threshold,
        )


def _compare_timer(
    comparison: BenchComparison,
    label: str,
    old: dict | None,
    new: dict | None,
    timing_threshold: float,
) -> None:
    """Flag a timer whose mean grew beyond the relative threshold."""
    if not old or not new:
        return
    old_mean = old.get("mean", 0.0)
    new_mean = new.get("mean", 0.0)
    if old_mean > 0 and new_mean > old_mean * (1 + timing_threshold):
        comparison.regressions.append(
            f"{label}: mean grew {old_mean * 1000:.1f}ms -> "
            f"{new_mean * 1000:.1f}ms "
            f"(+{(new_mean / old_mean - 1) * 100:.0f}% > "
            f"{timing_threshold * 100:.0f}%)"
        )


# -- shard merging and digests --------------------------------------------


def _sum_stats(parts: list[dict]) -> dict:
    """Key-wise integer sum of stat mappings (union of keys, sorted)."""
    totals: dict[str, int] = {}
    for part in parts:
        for name, value in part.items():
            totals[name] = totals.get(name, 0) + int(value)
    return {name: totals[name] for name in sorted(totals)}


def _merge_summary(parts: list[dict | None]) -> dict | None:
    """Fold per-shard timer summaries into one conservative summary.

    Counts and totals add exactly; min/max are exact; the mean is
    recomputed from them.  Percentiles of a pooled population cannot be
    recovered from per-shard summaries, so ``p50``/``p95`` take the
    worst (largest) shard value — an upper bound, never an undercount.
    """
    summaries = [part for part in parts if part]
    if not summaries:
        return None
    count = sum(int(part.get("count", 0)) for part in summaries)
    total = sum(float(part.get("total", 0.0)) for part in summaries)
    return {
        "count": count,
        "total": round(total, 9),
        "min": round(min(float(p.get("min", 0.0)) for p in summaries), 9),
        "max": round(max(float(p.get("max", 0.0)) for p in summaries), 9),
        "mean": round(total / count, 9) if count else 0.0,
        "p50": round(max(float(p.get("p50", 0.0)) for p in summaries), 9),
        "p95": round(max(float(p.get("p95", 0.0)) for p in summaries), 9),
    }


def _merge_domain(parts: list[dict]) -> dict:
    """Pool per-shard domain counts; Pc/Pp recompute exactly.

    ``Pc = correct/total`` over pooled counts equals the unsharded value
    because both sides count the same objects — summing numerators and
    denominators then dividing is the same arithmetic the serial
    aggregation does.
    """
    counts = {
        name: sum(int(part.get(name, 0)) for part in parts)
        for name in (
            "objects_total",
            "objects_correct",
            "objects_partial",
            "objects_incorrect",
            "sources",
            "sources_discarded",
        )
    }
    total = counts["objects_total"]
    return {
        "pc": round(counts["objects_correct"] / total, 6) if total else 0.0,
        "pp": (
            round(
                (counts["objects_correct"] + counts["objects_partial"]) / total,
                6,
            )
            if total
            else 0.0
        ),
        **counts,
    }


def _merge_system(parts: list[dict]) -> dict:
    """Fold one system's per-shard blocks into a whole-catalog block."""
    domain_names: list[str] = []
    for part in parts:
        for name in part.get("domains", {}):
            if name not in domain_names:
                domain_names.append(name)
    domains = {
        name: _merge_domain(
            [part["domains"][name] for part in parts if name in part.get("domains", {})]
        )
        for name in domain_names
    }
    metrics_parts = [part.get("metrics") for part in parts]
    metrics = None
    if any(metrics_parts):
        present = [part for part in metrics_parts if part]
        counters = _sum_stats([part.get("counters", {}) for part in present])
        gauges: dict[str, float] = {}
        for part in present:
            gauges.update(part.get("gauges", {}))
        timer_names = sorted(
            {name for part in present for name in part.get("timers", {})}
        )
        timers = {
            name: _merge_summary(
                [part.get("timers", {}).get(name) for part in present]
            )
            for name in timer_names
        }
        metrics = {
            "counters": counters,
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "timers": timers,
        }
    cache_parts = [part.get("cache") for part in parts]
    cache = (
        _sum_stats([part for part in cache_parts if part])
        if any(cache_parts)
        else None
    )
    return {
        "domains": domains,
        "wrap_seconds": _merge_summary(
            [part.get("wrap_seconds") for part in parts]
        ),
        "metrics": metrics,
        "cache": cache,
    }


def merge_documents(documents: Sequence[dict]) -> dict:
    """Fold per-shard BENCH documents into one whole-catalog document.

    The inputs must agree on scale, coverage, system list and registry
    mode (:class:`ValueError` otherwise) — they are meant to be the
    ``--shard 0/N`` … ``N-1/N`` captures of one logical run.  Counts sum
    and Pc/Pp recompute exactly, so the merged quality and counter
    numbers are byte-identical to an unsharded run over the same
    catalog (:func:`bench_digest` is the comparison tool).  Pooled
    percentiles are not recoverable from per-shard summaries; timer
    summaries merge conservatively (see :func:`_merge_summary`), and the
    merged ``sharding`` block keeps every shard's rows with
    ``merged_from`` listing the input slices.
    """
    if not documents:
        raise ValueError("merge_documents needs at least one document")
    first = documents[0]
    for key in ("scale", "coverage", "systems"):
        values = {
            json.dumps(doc.get("config", {}).get(key), sort_keys=True)
            for doc in documents
        }
        if len(values) > 1:
            raise ValueError(
                f"cannot merge BENCH documents with differing config.{key}"
            )
    modes = {bool(doc.get("config", {}).get("registry")) for doc in documents}
    if len(modes) > 1:
        raise ValueError("cannot merge warm and cold BENCH documents")
    system_names: list[str] = []
    for doc in documents:
        for name in doc.get("systems", {}):
            if name not in system_names:
                system_names.append(name)
    systems = {
        name: _merge_system(
            [doc["systems"][name] for doc in documents if name in doc.get("systems", {})]
        )
        for name in system_names
    }
    registry_parts = [doc.get("registry") for doc in documents]
    registry = (
        _sum_stats([part for part in registry_parts if part is not None])
        if all(part is not None for part in registry_parts)
        else None
    )
    config = dict(first.get("config", {}))
    config["sources"] = sum(
        int(doc.get("config", {}).get("sources", 0)) for doc in documents
    )
    config["shard"] = None
    per_shard: dict[str, list] = {}
    walls: dict[str, float] = {}
    for doc in documents:
        sharding = doc.get("sharding") or {}
        for name, rows in (sharding.get("per_shard") or {}).items():
            per_shard.setdefault(name, []).extend(rows)
        for name, wall in (sharding.get("wall_seconds") or {}).items():
            walls[name] = round(walls.get(name, 0.0) + float(wall), 6)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": max(
            str(doc.get("generated_at", "")) for doc in documents
        ),
        "python": first.get("python"),
        "platform": first.get("platform"),
        "config": config,
        "process": {
            "peak_rss_bytes": max(
                int(doc.get("process", {}).get("peak_rss_bytes", 0))
                for doc in documents
            )
        },
        "cache": _sum_stats([doc.get("cache", {}) or {} for doc in documents]),
        "registry": registry,
        "systems": systems,
        "sharding": {
            "shard": None,
            "backend": first.get("config", {}).get("backend", "serial"),
            "workers": int(first.get("config", {}).get("workers", 1)),
            "merged_from": [
                doc.get("config", {}).get("shard") for doc in documents
            ],
            "per_shard": per_shard or None,
            "wall_seconds": walls or None,
            "reference": None,
        },
    }


def digest_projection(document: dict) -> dict:
    """The order-insensitive, run-stable projection a digest hashes.

    Keeps exactly what the byte-identity contract promises — quality
    counts and rates, merged pipeline counters, registry hit/miss/
    demotion stats and the identifying configuration — and drops what
    legitimately varies run to run or shard to shard: wall-clock timings,
    timestamps, peak RSS, cache-entry gauges, ``PYTHONHASHSEED``, and the
    registry ``stores``/``races`` split.  The last is layout-dependent:
    when replica sources share a template signature, a serial run
    discards the duplicates at one registry while per-shard runs each
    store their own copy and the duplicates fall at merge time — same
    final registry bytes (the canonical conflict rule), different
    counter split, so the split cannot be part of run identity.
    """
    systems = {}
    for name, system in sorted(document.get("systems", {}).items()):
        metrics_doc = system.get("metrics") or {}
        systems[name] = {
            "domains": system.get("domains"),
            "counters": metrics_doc.get("counters") or None,
        }
    config = document.get("config", {})
    return {
        "config": {
            "scale": config.get("scale"),
            "coverage": config.get("coverage"),
            "systems": config.get("systems"),
            "sources": config.get("sources"),
            "registry": bool(config.get("registry")),
            "sampling_seed": config.get("seed", {}).get("sampling_seed"),
        },
        "systems": systems,
        "registry": _registry_identity(document.get("registry")),
    }


def _registry_identity(stats: dict | None) -> dict | None:
    """Registry stats with the layout-dependent counters dropped."""
    if not isinstance(stats, dict):
        return stats
    return {
        key: value
        for key, value in sorted(stats.items())
        if key not in ("stores", "races")
    }


def bench_digest(document: dict) -> str:
    """Deterministic hex digest of a document's run-stable content.

    Two documents digest equal exactly when their
    :func:`digest_projection` is equal — the check the CI shard-smoke
    job and the byte-identity suite use to compare an unsharded run
    against merged per-shard runs without tripping over timings.
    """
    projection = digest_projection(document)
    text = json.dumps(projection, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
