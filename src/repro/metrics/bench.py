"""Benchmark capture: run the catalog, persist ``BENCH_<seq>.json``, compare.

The ``repro bench`` subcommand drives this module: it runs every system
under comparison (ObjectRunner, ExAlg, RoadRunner) over the Table I
source catalog, grades each run against the golden standard, and writes
one schema-versioned JSON artifact at the repository root —

- per-domain ``Pc``/``Pp`` and object classification counts per system,
- per-stage timing summaries (min/max/mean/p50/p95) from pipeline events,
- preprocessing-cache hit/miss/races statistics,
- wrapping-time summaries, peak RSS, scale/coverage/seed configuration.

``BENCH_0.json`` is the committed baseline; every subsequent capture gets
the next sequence number, so the repo accumulates a queryable performance
trajectory instead of throwing each run's numbers away with the process.
:func:`compare_documents` diffs two artifacts and flags regressions
beyond configurable thresholds (quality always; timings and volumes only
when scale and registry mode both match, because timings at different
workload scales — or cold induction vs warm registry hits — are not
comparable).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.baselines import ExAlgSystem, RoadRunnerSystem
from repro.core.cache import PreprocessCache
from repro.core.objectrunner import ObjectRunnerSystem
from repro.core.params import RunParams
from repro.datasets import (
    CatalogEntry,
    build_knowledge,
    catalog_entries,
    domain_spec,
    generate_source,
)
from repro.datasets.knowledge import completion_entries
from repro.eval import aggregate_domain, grade_source
from repro.metrics.observer import MetricsObserver, peak_rss_bytes, wall_timestamp
from repro.metrics.registry import MetricsRegistry
from repro.registry.store import WrapperRegistry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.eval.metrics import DomainMetrics

#: Version of the BENCH artifact schema; bump on incompatible changes.
BENCH_SCHEMA_VERSION = 1

#: Filename prefix of persisted benchmark artifacts.
BENCH_PREFIX = "BENCH_"

#: Systems captured by default, in report order.
DEFAULT_SYSTEMS: tuple[str, ...] = ("objectrunner", "exalg", "roadrunner")

#: Default dictionary coverage, matching the paper's 20% floor.
DICTIONARY_COVERAGE = 0.2

#: The domains of Table I, in the paper's order.
DOMAIN_ORDER: tuple[str, ...] = (
    "concerts", "albums", "books", "publications", "cars",
)


class CatalogCache:
    """Memoizes the expensive per-entry setup of a catalog sweep.

    Domain knowledge (ontology + corpus) per domain/coverage, generated
    sources per entry — shared by the benchmark suite's harness and the
    ``repro bench`` session so repeated sweeps never regenerate them.
    """

    def __init__(self) -> None:
        self._knowledge: dict[tuple[str, float], object] = {}
        self._sources: dict[str, object] = {}

    def knowledge(self, domain_name: str, coverage: float):
        """The built domain knowledge for one domain at one coverage."""
        key = (domain_name, coverage)
        if key not in self._knowledge:
            self._knowledge[key] = build_knowledge(
                domain_spec(domain_name), coverage=coverage
            )
        return self._knowledge[key]

    def source(self, entry: CatalogEntry):
        """The deterministic generated source of one catalog entry."""
        if entry.spec.name not in self._sources:
            self._sources[entry.spec.name] = generate_source(
                entry.spec, domain_spec(entry.spec.domain)
            )
        return self._sources[entry.spec.name]


def build_system(
    name: str,
    entry: CatalogEntry,
    cache: CatalogCache,
    coverage: float = DICTIONARY_COVERAGE,
    params: RunParams | None = None,
    observers: Iterable = (),
    wrapper_registry: WrapperRegistry | None = None,
):
    """Instantiate a system by short name for one catalog source.

    ObjectRunner gets the domain knowledge plus the per-source dictionary
    completion (the paper ensured every dictionary covered at least 20% of
    each source's instances); ``observers`` subscribe to every pipeline
    run the system makes.  A ``wrapper_registry`` puts ObjectRunner on
    the registry-first path (the warm-path benchmark); baselines ignore
    it.
    """
    if name == "objectrunner":
        domain_name = entry.spec.domain
        knowledge = cache.knowledge(domain_name, coverage)
        domain = domain_spec(domain_name)
        source = cache.source(entry)
        extra = completion_entries(
            domain,
            source.gold,
            coverage=coverage,
            seed=("completion", entry.spec.name),
        )
        return ObjectRunnerSystem(
            ontology=knowledge.ontology,
            corpus=knowledge.corpus,
            gazetteer_classes=domain.gazetteer_classes,
            params=params,
            extra_gazetteer_entries=extra,
            observers=tuple(observers),
            wrapper_registry=wrapper_registry,
        )
    if name == "exalg":
        return ExAlgSystem()
    if name == "roadrunner":
        return RoadRunnerSystem()
    raise ValueError(f"unknown system {name!r}")


@dataclass
class BenchConfig:
    """Everything that parameterizes one benchmark capture."""

    scale: float = 0.1
    coverage: float = DICTIONARY_COVERAGE
    systems: tuple[str, ...] = DEFAULT_SYSTEMS
    #: LRU capacity of the session preprocessing cache; sized so a full
    #: catalog sweep at default scale never evicts.
    cache_entries: int = 4096
    #: Wrapper registry directory for the registry-first (warm) path;
    #: ``None`` captures the classic cold pipeline.
    registry_root: str | None = None


class BenchSession:
    """One benchmark capture: run the catalog, build the BENCH document.

    Pages are tidied/cleaned through a session-wide
    :class:`~repro.core.cache.PreprocessCache`, so the second and third
    systems draw cache hits instead of re-paying preprocessing — and every
    system receives fresh copies instead of sharing mutated trees.
    """

    def __init__(self, config: BenchConfig | None = None):
        self.config = config or BenchConfig()
        self.catalog = CatalogCache()
        self.preprocess_cache = PreprocessCache(
            max_entries=self.config.cache_entries
        )
        self.registry = (
            WrapperRegistry(self.config.registry_root)
            if self.config.registry_root
            else None
        )

    def pages(self, entry: CatalogEntry):
        """Freshly cloned, cleaned page trees of one entry (via the cache)."""
        source = self.catalog.source(entry)
        return self.preprocess_cache.clean_pages(source.pages).pages

    def run_system(
        self, system_name: str
    ) -> tuple[list["DomainMetrics"], MetricsRegistry, MetricsObserver]:
        """Run one system over the whole catalog and aggregate per domain.

        Returns the per-domain metrics (paper order), a registry holding
        the per-source ``wrap`` timer, and the pipeline metrics observer
        (meaningful for ObjectRunner; empty for the baselines).
        """
        metrics = MetricsObserver()
        metrics.observe_cache(self.preprocess_cache)
        wrap = MetricsRegistry()
        evaluations: dict[str, list] = {name: [] for name in DOMAIN_ORDER}
        entries = catalog_entries(scale=self.config.scale)
        metrics.note_source_order(entry.spec.name for entry in entries)
        for entry in entries:
            domain = domain_spec(entry.spec.domain)
            source = self.catalog.source(entry)
            pages = self.pages(entry)
            system = build_system(
                system_name,
                entry,
                self.catalog,
                coverage=self.config.coverage,
                observers=(metrics,),
                wrapper_registry=self.registry,
            )
            output = system.run(entry.spec.name, pages, domain.sod)
            evaluations[entry.spec.domain].append(
                grade_source(domain, source.gold, output)
            )
            wrap.observe("wrap", output.wrap_seconds)
        domains = [
            aggregate_domain(domain_name, system_name, evaluations[domain_name])
            for domain_name in DOMAIN_ORDER
        ]
        return domains, wrap, metrics

    def capture(self) -> dict:
        """Run every configured system and build the BENCH document.

        The document's top-level shape is the ``bench`` artifact family
        statically tracked by :mod:`repro.analysis.schemas`: adding or
        renaming a key here without bumping ``BENCH_SCHEMA_VERSION``
        fails reprolint S502 against the committed ``schemas.json``, and
        S504 checks :func:`compare_documents` stays tolerant of every
        committed ``BENCH_*.json``.
        """
        systems_doc: dict[str, dict] = {}
        for system_name in self.config.systems:
            domains, wrap, metrics = self.run_system(system_name)
            merged = metrics.merged_registry().snapshot()
            has_events = bool(merged["timers"]) or bool(merged["counters"])
            wrap_summary = wrap.summary("wrap")
            systems_doc[system_name] = {
                "domains": {
                    m.domain: _domain_doc(m) for m in domains
                },
                "wrap_seconds": (
                    wrap_summary.as_dict() if wrap_summary else None
                ),
                "metrics": merged if has_events else None,
                "cache": metrics.cache_stats() if has_events else None,
            }
        entries = catalog_entries(scale=self.config.scale)
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_at": wall_timestamp(),
            "python": platform.python_version(),
            "platform": sys.platform,
            "config": {
                "scale": self.config.scale,
                "coverage": self.config.coverage,
                "systems": list(self.config.systems),
                "sources": len(entries),
                "registry": bool(self.registry),
                "seed": {
                    "sampling_seed": RunParams().sampling_seed,
                    "pythonhashseed": os.environ.get("PYTHONHASHSEED", ""),
                },
            },
            "process": {"peak_rss_bytes": peak_rss_bytes()},
            "cache": self.preprocess_cache.stats(),
            "registry": self.registry.stats() if self.registry else None,
            "systems": systems_doc,
        }


def _domain_doc(metrics: "DomainMetrics") -> dict:
    """One domain's Pc/Pp and object classification counts."""
    return {
        "pc": round(metrics.precision_correct, 6),
        "pp": round(metrics.precision_partial, 6),
        "objects_total": metrics.objects_total,
        "objects_correct": metrics.objects_correct,
        "objects_partial": metrics.objects_partial,
        "objects_incorrect": metrics.objects_incorrect,
        "sources": len(metrics.evaluations),
        "sources_discarded": sum(
            1 for e in metrics.evaluations if e.discarded
        ),
    }


# -- artifact files -------------------------------------------------------


def bench_files(root: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` of every BENCH artifact under ``root``, by seq."""
    found: list[tuple[int, Path]] = []
    for path in sorted(root.glob(f"{BENCH_PREFIX}*.json")):
        suffix = path.stem[len(BENCH_PREFIX):]
        if suffix.isdigit():
            found.append((int(suffix), path))
    return sorted(found)


def next_seq(root: Path) -> int:
    """The sequence number the next capture under ``root`` should use."""
    existing = bench_files(root)
    return existing[-1][0] + 1 if existing else 0


def latest_bench(root: Path, before: int | None = None) -> Path | None:
    """The highest-sequence artifact (optionally below ``before``)."""
    candidates = [
        path
        for seq, path in bench_files(root)
        if before is None or seq < before
    ]
    return candidates[-1] if candidates else None


def write_bench(path: Path, document: dict) -> None:
    """Persist one BENCH document as stable, sorted, indented JSON."""
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_bench(path: Path) -> dict:
    """Load one BENCH document."""
    return json.loads(path.read_text(encoding="utf-8"))


# -- comparison -----------------------------------------------------------


@dataclass
class BenchComparison:
    """Outcome of diffing two BENCH documents."""

    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no regression exceeded its threshold."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable multi-line report of the comparison."""
        lines: list[str] = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        if not self.regressions:
            lines.append("no regressions beyond thresholds")
        return "\n".join(lines)


def compare_documents(
    old: dict,
    new: dict,
    quality_threshold: float = 0.02,
    timing_threshold: float = 0.5,
) -> BenchComparison:
    """Diff two BENCH documents, flagging regressions beyond thresholds.

    Quality (per-domain ``Pc``/``Pp``) is compared unconditionally: an
    absolute drop greater than ``quality_threshold`` is a regression.
    Timings (stage means, wrapping means) and object counts are compared
    only when both documents were captured at the same scale *and* in the
    same registry mode — a warm (registry-first) capture skips induction
    entirely, so cold-vs-warm timing diffs are workload differences, not
    regressions.  A relative increase greater than ``timing_threshold``
    (for example ``0.5`` = +50%) is a regression.  Registry hit/miss
    statistics are compared only when *both* documents carry a registry
    block (pre-registry documents like ``BENCH_0.json`` have none).  Peak
    RSS growth is reported as a note, never a failure, because absolute
    memory depends on the host.
    """
    comparison = BenchComparison()
    if old.get("schema_version") != new.get("schema_version"):
        comparison.notes.append(
            f"schema version changed: {old.get('schema_version')} -> "
            f"{new.get('schema_version')}; comparing best-effort"
        )
    old_scale = old.get("config", {}).get("scale")
    new_scale = new.get("config", {}).get("scale")
    same_scale = old_scale == new_scale
    if not same_scale:
        comparison.notes.append(
            f"scale differs ({old_scale} -> {new_scale}); "
            "skipping timing and volume comparisons"
        )
    old_mode = bool(old.get("config", {}).get("registry"))
    new_mode = bool(new.get("config", {}).get("registry"))
    same_mode = old_mode == new_mode
    if not same_mode:
        comparison.notes.append(
            "registry mode differs "
            f"({'warm' if old_mode else 'cold'} -> "
            f"{'warm' if new_mode else 'cold'}); "
            "skipping timing and volume comparisons"
        )
    comparable = same_scale and same_mode
    old_systems = old.get("systems", {})
    new_systems = new.get("systems", {})
    for system_name in sorted(set(old_systems) & set(new_systems)):
        _compare_system(
            comparison,
            system_name,
            old_systems[system_name],
            new_systems[system_name],
            quality_threshold,
            timing_threshold,
            comparable,
        )
    _compare_registry(comparison, old, new, comparable)
    old_rss = old.get("process", {}).get("peak_rss_bytes", 0)
    new_rss = new.get("process", {}).get("peak_rss_bytes", 0)
    if old_rss and new_rss and new_rss > old_rss * (1 + timing_threshold):
        comparison.notes.append(
            f"peak RSS grew {old_rss} -> {new_rss} bytes "
            f"(+{(new_rss / old_rss - 1) * 100:.0f}%)"
        )
    return comparison


def _compare_registry(
    comparison: BenchComparison,
    old: dict,
    new: dict,
    comparable: bool,
) -> None:
    """Diff registry hit/miss stats when both documents carry the block.

    Pre-registry artifacts (``BENCH_0.json``) have no ``registry`` key and
    cold captures record it as null — a mixed-era or cold-vs-warm pair is
    noted and skipped rather than mis-flagged.  At equal scale and mode,
    growth of the miss count means sources that used to be served from
    the store are re-inducing: a regression.
    """
    old_registry = old.get("registry")
    new_registry = new.get("registry")
    if old_registry is None and new_registry is None:
        return
    if old_registry is None or new_registry is None:
        comparison.notes.append(
            "registry stats present in only one document; "
            "skipping registry comparison"
        )
        return
    if not comparable:
        return
    old_misses = old_registry.get("misses", 0)
    new_misses = new_registry.get("misses", 0)
    if new_misses > old_misses:
        comparison.regressions.append(
            f"registry: misses grew {old_misses} -> {new_misses} "
            "(sources no longer served from the store)"
        )


def _compare_system(
    comparison: BenchComparison,
    system_name: str,
    old: dict,
    new: dict,
    quality_threshold: float,
    timing_threshold: float,
    comparable: bool,
) -> None:
    """Fold one system's quality/timing diffs into the comparison.

    ``comparable`` is True when both captures share scale and registry
    mode; volume and timing diffs are skipped otherwise.
    """
    old_domains = old.get("domains", {})
    new_domains = new.get("domains", {})
    for domain in sorted(set(old_domains) & set(new_domains)):
        before, after = old_domains[domain], new_domains[domain]
        for rate in ("pc", "pp"):
            drop = before.get(rate, 0.0) - after.get(rate, 0.0)
            if drop > quality_threshold:
                comparison.regressions.append(
                    f"{system_name}/{domain}: {rate.capitalize()} dropped "
                    f"{before[rate]:.4f} -> {after[rate]:.4f} "
                    f"(-{drop:.4f} > {quality_threshold})"
                )
        if comparable:
            old_total = before.get("objects_total", 0)
            new_total = after.get("objects_total", 0)
            if old_total and new_total < old_total * (1 - quality_threshold):
                comparison.regressions.append(
                    f"{system_name}/{domain}: objects_total fell "
                    f"{old_total} -> {new_total}"
                )
    if not comparable:
        return
    _compare_timer(
        comparison,
        f"{system_name}: wrap_seconds",
        old.get("wrap_seconds"),
        new.get("wrap_seconds"),
        timing_threshold,
    )
    old_timers = (old.get("metrics") or {}).get("timers", {})
    new_timers = (new.get("metrics") or {}).get("timers", {})
    for timer_name in sorted(set(old_timers) & set(new_timers)):
        _compare_timer(
            comparison,
            f"{system_name}: {timer_name}",
            old_timers[timer_name],
            new_timers[timer_name],
            timing_threshold,
        )


def _compare_timer(
    comparison: BenchComparison,
    label: str,
    old: dict | None,
    new: dict | None,
    timing_threshold: float,
) -> None:
    """Flag a timer whose mean grew beyond the relative threshold."""
    if not old or not new:
        return
    old_mean = old.get("mean", 0.0)
    new_mean = new.get("mean", 0.0)
    if old_mean > 0 and new_mean > old_mean * (1 + timing_threshold):
        comparison.regressions.append(
            f"{label}: mean grew {old_mean * 1000:.1f}ms -> "
            f"{new_mean * 1000:.1f}ms "
            f"(+{(new_mean / old_mean - 1) * 100:.0f}% > "
            f"{timing_threshold * 100:.0f}%)"
        )
