"""Performance metrics: registry, pipeline observer, benchmark capture.

The ROADMAP's north star — "as fast as the hardware allows" — is only
actionable when per-stage cost is measured, persisted and compared run
over run.  This package provides the three layers of that loop:

- :mod:`repro.metrics.registry` — a deterministic-friendly
  :class:`MetricsRegistry` of counters, gauges and timers.  The registry
  never reads a clock: durations are handed to it, so registries built
  from the same observations are byte-identical regardless of when (or on
  how many threads) they were filled.
- :mod:`repro.metrics.observer` — :class:`MetricsObserver`, a pipeline
  observer that subscribes to the :class:`~repro.core.pipeline.EventBus`
  and aggregates stage timings, retries, context counters, preprocessing
  cache statistics and per-source object counts into per-source
  registries that merge deterministically in input order.
- :mod:`repro.metrics.bench` — the ``repro bench`` engine: runs the
  benchmark catalog for every system under comparison and persists a
  schema-versioned ``BENCH_<seq>.json`` snapshot, plus the regression
  comparator behind ``repro bench --compare``.

See ``docs/METRICS.md`` for the snapshot schema and compare semantics.
"""

from repro.metrics.observer import MetricsObserver, peak_rss_bytes, wall_timestamp
from repro.metrics.registry import MetricsRegistry, TimerSummary, default_registry

__all__ = [
    "MetricsRegistry",
    "TimerSummary",
    "default_registry",
    "MetricsObserver",
    "peak_rss_bytes",
    "wall_timestamp",
]
