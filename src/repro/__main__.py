"""Command-line interface: ``python -m repro``.

Subcommands:

- ``extract`` — wrap a set of HTML files with an SOD and print extracted
  objects as JSON lines::

      python -m repro extract \
          --sod "album(title, artist, price<kind=predefined>)" \
          --dict artist=artists.txt --dict title=titles.txt \
          pages/*.html

  Dictionary files hold one instance per line.  Predefined recognizer
  types (date, price, address, phone, isbn, year, email, url) need no
  dictionary.

  Wrap-once / extract-often: ``--registry DIR`` keeps induced wrappers
  in a content-addressed registry keyed by (SOD, template fingerprint);
  re-running against the same registry skips induction on every hit.
  The older single-file flags remain as deprecated aliases:
  ``--save-wrapper wrapper.json`` persists the learned wrapper after a
  successful run, and ``--load-wrapper wrapper.json`` re-extracts from
  fresh pages without re-wrapping (the SOD travels inside the wrapper
  file, so ``--sod`` may be omitted).  Saved files now record the pages'
  structural fingerprint; on load a mismatch warns and — when ``--sod``
  is given — falls back to full induction.

  Observability: ``--trace trace.jsonl`` writes one JSON line per
  pipeline event (stage start/end with wall-clock timings and counters,
  plus ``stage_retry`` events when retries happen).

  Resilience: ``--max-retries N`` re-attempts stages that raise
  ``TransientSourceError`` with deterministic exponential backoff, and
  ``--failure-policy {fail_fast,isolate}`` selects how multi-source runs
  react to an unexpected per-source failure.

- ``serve`` — extraction-as-a-service: a JSON-lines request loop on
  stdin/stdout routing every request through a shared wrapper registry
  (first request per template induces, later ones hit)::

      python -m repro serve --registry wrappers/ < requests.jsonl

- ``registry`` — inspect and maintain a wrapper registry::

      python -m repro registry ls --root wrappers/
      python -m repro registry verify --root wrappers/   # exit 1 on problems
      python -m repro registry gc --root wrappers/       # drop orphan files
      python -m repro registry gc --root wrappers/ --dry-run  # preview only

  ``gc`` exits 0 whether or not orphans existed (``--dry-run`` included);
  only ``verify`` signals problems through its exit code.

- ``describe`` — parse an SOD and print its structure, canonical form and
  entity types (useful while authoring SODs).

- ``bench`` — run the benchmark catalog for every system under
  comparison and persist a schema-versioned ``BENCH_<seq>.json``
  artifact (per-domain Pc/Pp, per-stage timing summaries, cache stats,
  peak RSS)::

      python -m repro bench --scale 0.1
      python -m repro bench --compare            # diff vs previous BENCH
      python -m repro bench --compare-files BENCH_0.json BENCH_1.json

  ``--compare`` modes exit 3 when a regression exceeds the thresholds
  (``--threshold`` for Pc/Pp drops, ``--timing-threshold`` for relative
  timing growth) unless ``--warn-only`` is given.  See
  ``docs/METRICS.md`` for the artifact schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.faults import FAILURE_POLICIES
from repro.core.objectrunner import ObjectRunner
from repro.core.params import BACKENDS, RunParams
from repro.core.sharding import ShardSpec
from repro.core.pipeline import TraceObserver
from repro.errors import ReproError
from repro.htmlkit.clean import clean_tree
from repro.htmlkit.fingerprint import pages_fingerprint
from repro.htmlkit.tidy import tidy
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.registry import RecognizerRegistry
from repro.registry.files import (
    fingerprint_matches,
    load_wrapper_file,
    save_wrapper_file,
)
from repro.registry.store import WrapperRegistry
from repro.sod.canonical import canonicalize
from repro.sod.dsl import parse_sod
from repro.sod.types import entity_types


def _load_dictionary(path: str) -> list[str]:
    return [
        line.strip()
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def _cli_fingerprint(pages: list[str]) -> str:
    """The template fingerprint of raw pages, prepared as the pipeline does."""
    return pages_fingerprint([clean_tree(tidy(page)) for page in pages])


def _parse_shard(text: str | None) -> "ShardSpec | None":
    """Parse an ``I/N`` shard argument (``None`` passes through)."""
    if not text:
        return None
    return ShardSpec.parse(text)


def _cmd_extract(args: argparse.Namespace) -> int:
    if not args.sod and not args.load_wrapper:
        print("--sod is required unless --load-wrapper is given", file=sys.stderr)
        return 2
    try:
        shard = _parse_shard(args.shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if shard is not None and not shard.contains(args.source_name):
        print(
            f"source {args.source_name!r} is outside shard {shard}; "
            "nothing to do",
            file=sys.stderr,
        )
        return 0
    registry = RecognizerRegistry()
    for spec in args.dict or []:
        if "=" not in spec:
            print(f"--dict expects TYPE=FILE, got {spec!r}", file=sys.stderr)
            return 2
        type_name, __, path = spec.partition("=")
        registry.register(
            GazetteerRecognizer(type_name, _load_dictionary(path))
        )
    pages = [Path(page).read_text(encoding="utf-8") for page in args.pages]
    try:
        params = RunParams().with_overrides(
            failure_policy=args.failure_policy,
            max_retries=args.max_retries,
            backend=args.backend,
            shard=shard,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wrapper_registry = (
        WrapperRegistry(args.registry) if args.registry else None
    )
    observers = []
    trace = None
    if args.trace:
        trace = TraceObserver(args.trace)
        observers.append(trace)
    try:
        if args.load_wrapper:
            print(
                "note: --load-wrapper is deprecated; prefer --registry DIR",
                file=sys.stderr,
            )
            wrapper, fingerprint = load_wrapper_file(args.load_wrapper)
            sod = parse_sod(args.sod) if args.sod else wrapper.sod
            runner = ObjectRunner(
                sod, registry=registry, params=params, observers=observers
            )
            prepared = (
                [clean_tree(tidy(page)) for page in pages]
                if fingerprint is not None
                else []
            )
            if fingerprint_matches(fingerprint, prepared) is False:
                if args.sod:
                    print(
                        "warning: wrapper fingerprint does not match these "
                        "pages; re-inducing from --sod",
                        file=sys.stderr,
                    )
                    result = runner.run_source(args.source_name, pages)
                else:
                    print(
                        "warning: wrapper fingerprint does not match these "
                        "pages; extraction may return garbage "
                        "(pass --sod to re-induce)",
                        file=sys.stderr,
                    )
                    result = runner.extract_with(wrapper, pages)
            else:
                result = runner.extract_with(wrapper, pages)
        else:
            sod = parse_sod(args.sod)
            runner = ObjectRunner(
                sod,
                registry=registry,
                params=params,
                observers=observers,
                wrapper_registry=wrapper_registry,
            )
            result = runner.run_source(args.source_name, pages)
    finally:
        if trace is not None:
            trace.close()
    if result.discarded:
        print(
            f"source discarded at {result.discard_stage}: {result.discard_reason}",
            file=sys.stderr,
        )
        return 1
    if args.save_wrapper and result.wrapper is not None:
        print(
            "note: --save-wrapper is deprecated; prefer --registry DIR",
            file=sys.stderr,
        )
        save_wrapper_file(
            args.save_wrapper, result.wrapper, _cli_fingerprint(pages)
        )
        print(f"wrapper saved to {args.save_wrapper}", file=sys.stderr)
    if wrapper_registry is not None:
        stats = wrapper_registry.stats()
        print(
            f"registry: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['stores']} stores, {stats['demotions']} demotions",
            file=sys.stderr,
        )
    for instance in result.objects:
        print(json.dumps(instance.values, ensure_ascii=False))
    print(
        f"extracted {len(result.objects)} objects "
        f"(wrapping {result.timings.wrapping * 1000:.0f} ms, "
        f"support {result.support_used}, conflicts {result.conflicts})",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark catalog and/or compare BENCH artifacts."""
    from repro.metrics.bench import (
        BENCH_PREFIX,
        BenchConfig,
        BenchSession,
        bench_digest,
        claim_bench_path,
        compare_documents,
        latest_bench,
        load_bench,
        merge_documents,
        write_bench,
    )

    if args.digest_files:
        digests = []
        for name in args.digest_files:
            digest = bench_digest(load_bench(Path(name)))
            digests.append(digest)
            print(f"{digest}  {name}")
        if len(set(digests)) > 1:
            print("digest mismatch", file=sys.stderr)
            return 3
        return 0
    if args.merge_shards:
        try:
            merged = merge_documents(
                [load_bench(Path(name)) for name in args.merge_shards]
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out_path = (
            Path(args.merge_out)
            if args.merge_out
            else Path(args.out) / "BENCH_merged.json"
        )
        write_bench(out_path, merged)
        print(f"wrote {out_path}")
        return 0
    if args.compare_files:
        old_path, new_path = (Path(p) for p in args.compare_files)
        comparison = compare_documents(
            load_bench(old_path),
            load_bench(new_path),
            quality_threshold=args.threshold,
            timing_threshold=args.timing_threshold,
        )
        print(f"comparing {old_path} -> {new_path}")
        print(comparison.render())
        return 0 if comparison.ok or args.warn_only else 3

    systems = tuple(name.strip() for name in args.systems.split(",") if name.strip())
    try:
        config = BenchConfig(
            scale=args.scale,
            coverage=args.coverage,
            systems=systems,
            registry_root=args.registry,
            shard=_parse_shard(args.shard),
            backend=args.backend,
            workers=args.workers,
            compare_backends=args.compare_backends,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.profile:
        from repro.metrics.profiling import profile_session, render_profile

        print(
            f"repro bench --profile: scale={config.scale} "
            f"systems={','.join(systems)}",
            file=sys.stderr,
        )
        report = profile_session(config)
        rendered = render_profile(report, top=args.profile_top)
        print(rendered)
        if args.profile_out:
            Path(args.profile_out).write_text(rendered + "\n", encoding="utf-8")
            print(f"profile written to {args.profile_out}", file=sys.stderr)
        return 0
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    shard_note = f" shard={config.shard}" if config.shard else ""
    print(
        f"repro bench: scale={config.scale} coverage={config.coverage} "
        f"systems={','.join(systems)} backend={config.backend} "
        f"workers={config.workers}{shard_note}",
        file=sys.stderr,
    )
    document = BenchSession(config).capture()
    # Claim the sequence number only after the (long) capture, so two
    # concurrent captures cannot both decide on the same file.
    path = claim_bench_path(out_dir)
    seq = int(path.stem[len(BENCH_PREFIX):])
    write_bench(path, document)
    print(f"wrote {path}")
    if not args.compare and not args.compare_to:
        return 0
    baseline_path = (
        Path(args.compare_to)
        if args.compare_to
        else latest_bench(out_dir, before=seq)
    )
    if baseline_path is None:
        print("no previous BENCH artifact to compare against", file=sys.stderr)
        return 0
    comparison = compare_documents(
        load_bench(baseline_path),
        document,
        quality_threshold=args.threshold,
        timing_threshold=args.timing_threshold,
    )
    print(f"comparing {baseline_path} -> {path}")
    print(comparison.render())
    return 0 if comparison.ok or args.warn_only else 3


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the JSON-lines extraction service until shutdown or EOF."""
    from repro.service.server import serve_loop

    wrapper_registry = WrapperRegistry(args.registry)
    observers = []
    trace = None
    if args.trace:
        trace = TraceObserver(args.trace)
        observers.append(trace)
    print(
        f"repro serve: registry at {args.registry}, "
        "one JSON request per line on stdin",
        file=sys.stderr,
    )
    try:
        served = serve_loop(
            wrapper_registry, sys.stdin, sys.stdout, observers=observers
        )
    finally:
        if trace is not None:
            trace.close()
    stats = wrapper_registry.stats()
    print(
        f"served {served} requests ({stats['hits']} registry hits, "
        f"{stats['misses']} misses, {stats['demotions']} demotions)",
        file=sys.stderr,
    )
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    """Inspect or maintain a wrapper registry (``ls``/``gc``/``verify``/``merge``)."""
    if args.action == "merge":
        if not args.from_roots:
            print("merge requires at least one --from DIR", file=sys.stderr)
            return 2
        parts = [WrapperRegistry(root) for root in args.from_roots]
        merged = WrapperRegistry.merged(args.root, parts)
        stats = merged.stats()
        print(
            f"merged {len(parts)} registr{'y' if len(parts) == 1 else 'ies'} "
            f"into {args.root} ({stats['stores']} stores, "
            f"{stats['races']} conflicts resolved canonically)",
            file=sys.stderr,
        )
        return 0
    wrapper_registry = WrapperRegistry(args.root)
    if args.action == "ls":
        rows = wrapper_registry.index_rows()
        for signature, row in rows:
            kind = row.get("kind", "wrapper")
            print(
                f"{signature}  kind={kind}  source={row['source']}  "
                f"sod={row['sod']}"
            )
        print(f"{len(rows)} entries in {args.root}", file=sys.stderr)
        return 0
    if args.action == "gc":
        removed = wrapper_registry.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        for name in removed:
            print(f"{verb} orphan {name}")
        print(f"{verb} {len(removed)} orphan file(s)", file=sys.stderr)
        return 0
    problems = wrapper_registry.verify()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print("registry is consistent", file=sys.stderr)
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    sod = parse_sod(args.sod)
    print(f"SOD:        {sod}")
    print(f"canonical:  {canonicalize(sod)}")
    print("entity types:")
    for entity in entity_types(sod):
        optional = " (optional)" if entity.optional else ""
        print(f"  {entity.name:<16} kind={entity.kind:<14} "
              f"recognizer={entity.recognizer}{optional}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ObjectRunner: targeted extraction of structured Web data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    extract = subparsers.add_parser(
        "extract", help="wrap HTML files with an SOD and print JSON objects"
    )
    extract.add_argument(
        "--sod",
        help="SOD in the DSL syntax (optional with --load-wrapper)",
    )
    extract.add_argument(
        "--dict",
        action="append",
        metavar="TYPE=FILE",
        help="dictionary file for an isInstanceOf type (one value per line)",
    )
    extract.add_argument(
        "--source-name", default="cli-source", help="label for this source"
    )
    extract.add_argument(
        "--registry",
        metavar="DIR",
        help="wrapper registry directory: reuse a stored wrapper for this "
        "template or store the freshly induced one",
    )
    extract.add_argument(
        "--save-wrapper",
        metavar="FILE",
        help="(deprecated; prefer --registry) persist the learned wrapper "
        "as JSON after a successful run",
    )
    extract.add_argument(
        "--load-wrapper",
        metavar="FILE",
        help="(deprecated; prefer --registry) skip wrapping: extract with "
        "a previously saved wrapper",
    )
    extract.add_argument(
        "--trace",
        metavar="FILE",
        help="write pipeline events (stage timings, counters) as JSON lines",
    )
    extract.add_argument(
        "--failure-policy",
        choices=FAILURE_POLICIES,
        default="fail_fast",
        help="how multi-source runs treat an unexpected per-source "
        "failure: abort the batch (fail_fast) or record it and let "
        "sibling sources finish (isolate)",
    )
    extract.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a stage raising TransientSourceError up to N times "
        "with deterministic exponential backoff (default: 0, no retries)",
    )
    extract.add_argument(
        "--shard",
        metavar="I/N",
        help="process this source only when its name hashes into shard I "
        "of N (stable across processes and PYTHONHASHSEED); a driver "
        "fanning invocations out across shards gets a disjoint, "
        "exhaustive partition of its sources",
    )
    extract.add_argument(
        "--backend",
        choices=BACKENDS,
        default="thread",
        help="multi-source fan-out backend for programmatic run_sources "
        "batches (default: thread)",
    )
    extract.add_argument("pages", nargs="+", help="HTML files of one source")
    extract.set_defaults(func=_cmd_extract)

    serve = subparsers.add_parser(
        "serve",
        help="JSON-lines extraction service over a wrapper registry",
    )
    serve.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="wrapper registry directory shared by all requests",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        help="write pipeline events (stage timings, counters) as JSON lines",
    )
    serve.set_defaults(func=_cmd_serve)

    registry = subparsers.add_parser(
        "registry", help="inspect or maintain a wrapper registry"
    )
    registry.add_argument(
        "action",
        choices=("ls", "gc", "verify", "merge"),
        help="ls: list stored wrappers; gc: delete orphan entry files "
        "(exit 0 whether or not orphans existed); "
        "verify: check index/entry consistency (exit 1 on problems); "
        "merge: fold --from registries into --root; conflicting entries "
        "resolve canonically (wrapper before tombstone, then smaller "
        "source id), independent of part order",
    )
    registry.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="wrapper registry directory",
    )
    registry.add_argument(
        "--dry-run",
        action="store_true",
        help="gc only: print the sorted removal list without deleting "
        "anything (still exit 0)",
    )
    registry.add_argument(
        "--from",
        dest="from_roots",
        action="append",
        metavar="DIR",
        help="merge only: a shard registry to fold in (repeatable; "
        "applied in the given order)",
    )
    registry.set_defaults(func=_cmd_registry)

    describe = subparsers.add_parser(
        "describe", help="parse an SOD and show its structure"
    )
    describe.add_argument("sod", help="SOD in the DSL syntax")
    describe.set_defaults(func=_cmd_describe)

    bench = subparsers.add_parser(
        "bench",
        help="run the benchmark catalog and persist BENCH_<seq>.json",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.1")),
        help="workload scale relative to the paper's volumes "
        "(default: REPRO_BENCH_SCALE or 0.1)",
    )
    bench.add_argument(
        "--coverage",
        type=float,
        default=0.2,
        help="dictionary coverage for ObjectRunner (default: 0.2)",
    )
    bench.add_argument(
        "--systems",
        default="objectrunner,exalg,roadrunner",
        help="comma-separated systems to capture "
        "(default: objectrunner,exalg,roadrunner)",
    )
    bench.add_argument(
        "--registry",
        metavar="DIR",
        help="wrapper registry for the registry-first path: a populated "
        "registry captures the warm benchmark (induction skipped on "
        "every hit), an empty one is cold and populates it",
    )
    bench.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory receiving BENCH_<seq>.json (default: cwd)",
    )
    bench.add_argument(
        "--shard",
        metavar="I/N",
        help="capture only the catalog sources hashing into shard I of N; "
        "merge the per-shard documents with --merge-shards afterwards",
    )
    bench.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="sweep backend: serial loop, or hash-mod sub-shards on a "
        "thread/process pool (default: serial)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="pool width of the thread/process backends (default: 1)",
    )
    bench.add_argument(
        "--compare-backends",
        action="store_true",
        help="also time the alternate pooled backend over the same "
        "catalog and record it under sharding.reference in the document",
    )
    bench.add_argument(
        "--merge-shards",
        nargs="+",
        metavar="FILE",
        help="skip the run: merge per-shard BENCH documents into one "
        "whole-catalog document (see --merge-out)",
    )
    bench.add_argument(
        "--merge-out",
        metavar="FILE",
        help="output path for --merge-shards "
        "(default: BENCH_merged.json in --out)",
    )
    bench.add_argument(
        "--digest-files",
        nargs="+",
        metavar="FILE",
        help="skip the run: print each document's run-stable digest; "
        "exit 3 when the digests differ (the byte-identity check)",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="after capturing, diff against the previous BENCH artifact "
        "in the output directory and exit 3 on regressions",
    )
    bench.add_argument(
        "--compare-to",
        metavar="FILE",
        help="after capturing, diff against this specific BENCH artifact",
    )
    bench.add_argument(
        "--compare-files",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="skip the run: just diff two existing BENCH artifacts",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.02,
        help="absolute Pc/Pp drop counted as a regression (default: 0.02)",
    )
    bench.add_argument(
        "--timing-threshold",
        type=float,
        default=0.5,
        help="relative timing growth counted as a regression at equal "
        "scale (default: 0.5 = +50%%)",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="skip the BENCH capture: run the catalog under cProfile and "
        "print per-stage timers plus the top project functions by "
        "cumulative time",
    )
    bench.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="number of function rows in the --profile table (default: 25)",
    )
    bench.add_argument(
        "--profile-out",
        metavar="FILE",
        help="also write the rendered --profile tables to this file "
        "(the CI profile artifact)",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
