"""Deterministic hash-mod sharding of the source-id space.

Production-scale runs split a source catalog across processes or
machines; correctness of the order-pinned merges downstream (metrics,
wrapper registry) requires that the *partition itself* is a pure
function of the source ids.  Python's builtin ``hash`` is salted per
process (``PYTHONHASHSEED``), so membership is derived from SHA-256
instead: :func:`stable_shard` maps a source id to a shard index
byte-identically in every process, on every platform, under every hash
seed.

A :class:`ShardSpec` names one slice of an ``N``-way partition.  Every
source id belongs to exactly one shard, so running shards ``0/N ..
N-1/N`` and merging (metrics in input order, registry conflicts resolved
canonically) reproduces the unsharded run byte for byte — the contract
``tests/test_core_sharding.py`` and the byte-identity acceptance suite
pin down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

#: Bytes of the SHA-256 digest folded into the shard index.  8 bytes give
#: a uniform 64-bit key — far beyond any realistic shard count — while
#: keeping the modulo cheap.
_DIGEST_BYTES = 8


def stable_shard(source_id: str, count: int) -> int:
    """The shard index of ``source_id`` in an ``count``-way partition.

    Derived from the SHA-256 of the UTF-8 source id, so the assignment
    is identical across processes, platforms and ``PYTHONHASHSEED``
    values — unlike the salted builtin ``hash``.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    digest = hashlib.sha256(source_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:_DIGEST_BYTES], "big") % count


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a deterministic ``count``-way source partition."""

    index: int
    count: int

    def __post_init__(self) -> None:
        """Reject specs that do not name a slice of a real partition."""
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI spelling ``"I/N"`` (for example ``"0/4"``)."""
        index_text, sep, count_text = text.partition("/")
        if not sep or not index_text.strip() or not count_text.strip():
            raise ValueError(
                f"shard spec must look like I/N (for example 0/4), got {text!r}"
            )
        try:
            index = int(index_text)
            count = int(count_text)
        except ValueError as exc:
            raise ValueError(
                f"shard spec must be two integers I/N, got {text!r}"
            ) from exc
        return cls(index=index, count=count)

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    def contains(self, source_id: str) -> bool:
        """Whether ``source_id`` belongs to this shard."""
        return stable_shard(source_id, self.count) == self.index

    def partition(self, source_ids: Iterable[str]) -> list[str]:
        """The ids belonging to this shard, keeping the input order."""
        return [sid for sid in source_ids if self.contains(sid)]
