"""Result objects of a pipeline run."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sod.instances import ObjectInstance
from repro.wrapper.generate import Wrapper

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.faults import SourceFailure


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage for one source.

    Filled by the pipeline's built-in
    :class:`~repro.core.pipeline.TimingObserver`; each field is the
    ``timing_field`` one or more stages declare (tidy/clean and
    segmentation both accumulate into ``preprocess``).
    """

    preprocess: float = 0.0
    #: Registry match/check/store stages of the registry-first path.
    registry: float = 0.0
    annotation: float = 0.0
    wrapping: float = 0.0
    extraction: float = 0.0
    enrichment: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all per-stage wall-clock seconds."""
        return sum(self.as_dict().values())

    def as_dict(self) -> dict[str, float]:
        """The timings as a plain field -> seconds mapping.

        Enumerates the declared dataclass fields, so a timing field added
        later participates automatically instead of being silently
        dropped (mirroring ``RunParams.with_overrides``).
        """
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }


@dataclass
class MultiSourceResult:
    """Pooled outcome of a multi-source run (optionally de-duplicated).

    Three per-source outcomes are possible: a completed
    :class:`SourceResult` in ``results`` (itself either ok or discarded
    by a quality gate), or — under the ``isolate`` failure policy — a
    :class:`~repro.core.faults.SourceFailure` in ``failures`` recording
    an unexpected crash.  A source appears in exactly one of the two
    maps; both keep input order.
    """

    results: dict[str, "SourceResult"] = field(default_factory=dict)
    objects: list[ObjectInstance] = field(default_factory=list)
    duplicates_merged: int = 0
    #: Unexpected per-source failures (source -> record), populated under
    #: the ``isolate`` failure policy and on fail-fast partial results.
    failures: dict[str, "SourceFailure"] = field(default_factory=dict)

    @property
    def sources_ok(self) -> int:
        return sum(1 for result in self.results.values() if result.ok)

    @property
    def sources_discarded(self) -> int:
        return sum(1 for result in self.results.values() if result.discarded)

    @property
    def sources_failed(self) -> int:
        """Sources that crashed unexpectedly (isolated, not discarded)."""
        return len(self.failures)


@dataclass
class SourceResult:
    """Everything ObjectRunner produced for one source."""

    source: str
    objects: list[ObjectInstance] = field(default_factory=list)
    wrapper: Wrapper | None = None
    discarded: bool = False
    discard_stage: str = ""
    discard_reason: str = ""
    support_used: int = 0
    conflicts: int = 0
    #: Every support value the parameter-variation loop attempted, in
    #: attempt order (diagnostics for the self-validation loop).
    supports_attempted: list[int] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    sample_page_indexes: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discarded and self.wrapper is not None
