"""The staged pipeline: stages, shared context, observers and event bus.

The paper's Figure 1 architecture is an explicit dataflow — pre-processing,
recognizer setup, annotation/sampling, wrapper generation, extraction,
de-duplication.  This module makes that dataflow a first-class object:
every box is a :class:`Stage` whose ``run`` method operates on one shared
:class:`PipelineContext`, and a :class:`Pipeline` threads the context
through its stages in order, timing each stage and broadcasting lifecycle
events to any number of :class:`PipelineObserver` subscribers — progress
reporting, JSON-lines tracing (:class:`TraceObserver`), benchmark
collection (:class:`StageEventCollector`) — without the stages knowing
about any of them.

Stages register themselves by name via :func:`register_stage`, so a
pipeline can be assembled from names (:func:`build_stages`) and custom
stages can be slotted into the standard order without touching the core.

A stage signals "this source cannot be wrapped" by raising
:class:`~repro.errors.SourceDiscardedError`; the pipeline records the
discard on the result and stops, exactly like the paper's alpha gate.
A stage raising :class:`~repro.errors.TransientSourceError` is retried
per the active :class:`~repro.core.faults.RetryPolicy`
(``RunParams.max_retries``) with deterministic backoff, each retry
announced as a ``stage_retry`` event; any other exception is stamped
with the failing stage and attempt count and propagates unchanged.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.cache import PreprocessCache
from repro.core.faults import RetryPolicy, SleepFn, wall_sleep
from repro.core.params import RunParams
from repro.core.results import SourceResult
from repro.errors import SourceDiscardedError, TransientSourceError
from repro.htmlkit.dom import Element
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.sod.types import SodType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.kb.ontology import Ontology
    from repro.recognizers.base import Recognizer
    from repro.registry.store import StagedRegistryView, WrapperRegistry
    from repro.vision.segmentation import BlockTree
    from repro.wrapper.generate import Wrapper
    from repro.wrapper.tokens import TokenTable


#: Canonical stage order, mirroring the paper's Figure 1 left to right.
DEFAULT_STAGE_ORDER: tuple[str, ...] = (
    "preprocess",
    "segmentation",
    "annotation",
    "wrapping",
    "extraction",
    "enrichment",
)

#: Registry-first stage order: match against the wrapper registry after
#: pre-processing; a hit skips segmentation/annotation/wrapping entirely,
#: a miss induces as usual and stores the result.  The post-extraction
#: check demotes stale registry wrappers back to induction.
REGISTRY_STAGE_ORDER: tuple[str, ...] = (
    "preprocess",
    "registry_match",
    "segmentation",
    "annotation",
    "wrapping",
    "extraction",
    "enrichment",
    "registry_check",
    "registry_store",
)


# -- events and observers -------------------------------------------------


@dataclass
class PipelineEvent:
    """One lifecycle event emitted by a running pipeline.

    ``counters`` holds the *deltas* of the context counters accumulated
    during the stage for ``stage_end`` events, and the run totals for
    ``pipeline_end`` events.
    """

    kind: str
    source: str
    stage: str = ""
    timing_field: str = ""
    pass_index: int = 0
    elapsed: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    discarded: bool = False
    discard_stage: str = ""
    discard_reason: str = ""
    #: Set on the terminal ``pipeline_end`` event when a stage raised an
    #: unexpected exception (``stage`` then names the failing stage), and
    #: on ``stage_retry`` events with the transient error being retried.
    error: str = ""
    #: On ``stage_retry`` events: the attempt (1-based) that just failed.
    attempt: int = 0
    #: On ``stage_retry`` events: the backoff before the next attempt.
    retry_delay: float = 0.0

    def to_json(self) -> dict[str, Any]:
        """The event as a JSON-serializable dict (empty fields dropped).

        This is the writer of the ``trace_event`` artifact family in
        :mod:`repro.analysis.schemas` — the key set emitted here is
        pinned by the committed ``schemas.json`` snapshot, so renames
        show up in review instead of silently breaking trace consumers.
        """
        data: dict[str, Any] = {"event": self.kind, "source": self.source}
        if self.stage:
            data["stage"] = self.stage
        data["pass"] = self.pass_index
        if self.kind in ("stage_end", "pipeline_end"):
            data["elapsed_s"] = round(self.elapsed, 6)
        if self.attempt:
            data["attempt"] = self.attempt
        if self.kind == "stage_retry":
            data["retry_delay_s"] = round(self.retry_delay, 6)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.discarded:
            data["discarded"] = True
            data["discard_stage"] = self.discard_stage
            data["discard_reason"] = self.discard_reason
        if self.error:
            data["error"] = self.error
        return data


class PipelineObserver:
    """Receiver of pipeline lifecycle events; subclass and override.

    All hooks are no-ops by default, so observers override only what they
    care about.  Hooks run synchronously on the pipeline's thread; under a
    parallel multi-source run they may be invoked from several worker
    threads at once, so observers shared across sources must synchronize
    their own mutable state (the bundled observers all do).
    """

    def on_pipeline_start(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Called once before the first stage runs."""

    def on_stage_start(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Called right before each enabled stage runs."""

    def on_stage_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Called after each stage, with its wall-clock ``elapsed``."""

    def on_stage_retry(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Called when a transient stage failure is about to be retried."""

    def on_pipeline_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Called once after the last stage (or the discarding stage)."""


class EventBus:
    """Broadcasts :class:`PipelineEvent` objects to subscribed observers."""

    def __init__(self, observers: Iterable[PipelineObserver] = ()):
        self._observers: list[PipelineObserver] = list(observers)

    def subscribe(self, observer: PipelineObserver) -> None:
        """Add an observer to every subsequent emission."""
        self._observers.append(observer)

    @property
    def observers(self) -> tuple[PipelineObserver, ...]:
        """The subscribed observers, in subscription order."""
        return tuple(self._observers)

    def emit(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Dispatch ``event`` to the matching hook of every observer."""
        for observer in self._observers:
            getattr(observer, f"on_{event.kind}")(event, ctx)


class TimingObserver(PipelineObserver):
    """Accumulates stage wall-clock into ``ctx.result.timings``.

    This replaces the hand-written ``time.perf_counter()`` bookkeeping the
    monolithic runner used to carry in every stage block: the pipeline
    measures, this observer files the measurement under the stage's
    declared ``timing_field``.
    """

    def on_stage_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Add the stage's elapsed seconds to its timings field."""
        if not event.timing_field:
            return
        timings = ctx.result.timings
        current = getattr(timings, event.timing_field)
        setattr(timings, event.timing_field, current + event.elapsed)


class TraceObserver(PipelineObserver):
    """Writes one JSON line per pipeline event to a file or stream.

    The sink may be a path (opened and owned by the observer — call
    :meth:`close` or use the observer as a context manager) or any
    writable text stream.  Writes are locked, so one trace observer can
    serve a parallel multi-source run and produce an interleaved but
    line-atomic trace.

    Every event line is flushed as it is written, so the trace stays
    complete up to the crash point when a stage raises mid-pipeline (the
    pipeline also emits a terminal ``pipeline_end`` event carrying the
    error before re-raising).  :meth:`close` is idempotent.
    """

    def __init__(self, sink: str | Path | IO[str]):
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._lock = threading.Lock()
        self._closed = False

    def _write(self, event: PipelineEvent) -> None:
        with self._lock:
            if self._closed:
                return
            self._handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
            self._handle.flush()

    def on_pipeline_start(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Trace the run header."""
        self._write(event)

    def on_stage_start(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Trace the stage opening."""
        self._write(event)

    def on_stage_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Trace the stage timing and counter deltas."""
        self._write(event)

    def on_stage_retry(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Trace the retry announcement (attempt, backoff, error)."""
        self._write(event)

    def on_pipeline_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Trace the run summary."""
        self._write(event)

    def close(self) -> None:
        """Flush and close the sink if this observer opened it (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    def __enter__(self) -> "TraceObserver":
        """Support ``with TraceObserver(path) as trace:`` usage."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the sink on scope exit."""
        self.close()


class StageEventCollector(PipelineObserver):
    """Aggregates stage timings and counters across one or many runs.

    The benchmark harness and :class:`~repro.core.objectrunner.
    ObjectRunnerSystem` subscribe one of these instead of reaching into
    ``SourceResult`` internals.  Thread-safe, so a single collector can
    aggregate a parallel multi-source run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Total wall-clock seconds per stage name.
        self.elapsed: dict[str, float] = {}
        #: Summed context counters across all observed runs.
        self.counters: Counter[str] = Counter()
        #: Retry count per stage name, across all observed runs.
        self.retries: Counter[str] = Counter()
        #: ``pipeline_end`` events, one per observed run.
        self.completed: list[PipelineEvent] = []

    def on_stage_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Fold the stage's elapsed time and counter deltas into totals."""
        with self._lock:
            self.elapsed[event.stage] = (
                self.elapsed.get(event.stage, 0.0) + event.elapsed
            )
            self.counters.update(event.counters)

    def on_stage_retry(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Count the retry against its stage."""
        with self._lock:
            self.retries[event.stage] += 1

    def on_pipeline_end(self, event: PipelineEvent, ctx: "PipelineContext") -> None:
        """Record the finished run."""
        with self._lock:
            self.completed.append(event)

    def stage_seconds(self, stage: str) -> float:
        """Total observed wall-clock of one stage (0.0 if it never ran)."""
        with self._lock:
            return self.elapsed.get(stage, 0.0)

    def stage_retries(self, stage: str) -> int:
        """Total observed retries of one stage (0 if it never retried)."""
        with self._lock:
            return self.retries[stage]


# -- context --------------------------------------------------------------


@dataclass
class PipelineContext:
    """Shared state threaded through every stage of one pipeline run.

    Stages read what upstream stages produced and write what downstream
    stages need: pre-processing fills ``pages``, segmentation narrows them
    to ``regions``, annotation selects ``sample_regions``, wrapper
    generation sets ``wrapper``, extraction fills ``result.objects``.
    ``counters`` accumulates named integer counts (pages prepared, objects
    extracted, ...) that surface on stage-end events.
    """

    source: str
    params: RunParams
    sod: SodType
    recognizers: Sequence["Recognizer"] = ()
    ontology: "Ontology | None" = None
    raw_pages: list[str] = field(default_factory=list)
    pages: list[Element] = field(default_factory=list)
    block_trees: "list[BlockTree] | None" = None
    regions: list[Element] = field(default_factory=list)
    sample_regions: list[Element] = field(default_factory=list)
    wrapper: "Wrapper | None" = None
    result: SourceResult | None = None
    #: Shared role-interning table of the source's tokenized sample (set by
    #: the wrapping stage, reused by anything re-tokenizing the same pages).
    token_table: "TokenTable | None" = None
    cache: PreprocessCache | None = None
    #: Content-addressed wrapper store (or a per-source staged view of
    #: one) for the registry-first path; None runs the classic pipeline.
    registry: "WrapperRegistry | StagedRegistryView | None" = None
    pass_index: int = 0
    total_passes: int = 1
    counters: Counter = field(default_factory=Counter)
    #: Free-form scratch space for custom stages.
    artifacts: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Create the result container when the caller did not supply one."""
        if self.result is None:
            self.result = SourceResult(source=self.source)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named counter by ``amount``."""
        self.counters[name] += amount

    def gazetteers(self) -> dict[str, GazetteerRecognizer]:
        """The gazetteer recognizers in use, keyed by entity-type name."""
        return {
            recognizer.type_name: recognizer
            for recognizer in self.recognizers
            if isinstance(recognizer, GazetteerRecognizer)
        }


# -- stages ---------------------------------------------------------------


class Stage:
    """One named step of the pipeline.

    Subclasses set ``name`` (unique registry key), optionally
    ``timing_field`` (the :class:`~repro.core.results.StageTimings`
    attribute their wall-clock accumulates into), and implement
    :meth:`run`.  ``enabled`` lets a stage excuse itself from a run —
    skipped stages emit no events.

    ``reads``/``writes`` declare the stage's *context contract*: the
    :class:`PipelineContext` fields its methods may load and store.  The
    reprolint stage-contract rule (``C201``, see ``docs/ANALYSIS.md``)
    statically verifies every registered stage's body against its
    declaration, so inter-stage dataflow stays visible in one place.  The
    counter/scratch APIs (``count``/``counters``/``gazetteers``/
    ``artifacts``) never need declaring.
    """

    name: str = ""
    timing_field: str = ""
    #: PipelineContext fields this stage may load (enforced by reprolint).
    reads: tuple[str, ...] = ()
    #: PipelineContext fields this stage may store or mutate through.
    writes: tuple[str, ...] = ()

    def enabled(self, ctx: PipelineContext) -> bool:
        """Whether this stage should run for the given context."""
        return True

    def run(self, ctx: PipelineContext) -> None:
        """Execute the stage, mutating the context in place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


_STAGE_REGISTRY: dict[str, type[Stage]] = {}


def register_stage(cls: type[Stage]) -> type[Stage]:
    """Class decorator adding a :class:`Stage` to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    _STAGE_REGISTRY[cls.name] = cls
    return cls


def stage_registry() -> dict[str, type[Stage]]:
    """A copy of the name -> stage-class registry."""
    # The concrete stages live in repro.core.stages; importing the package
    # is what registers them, so make sure that happened.
    import repro.core.stages  # noqa: F401  (registration side effect)

    return dict(_STAGE_REGISTRY)


def build_stages(names: Iterable[str] = DEFAULT_STAGE_ORDER) -> list[Stage]:
    """Instantiate registered stages by name, in the given order."""
    registry = stage_registry()
    stages = []
    for name in names:
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise ValueError(f"unknown stage {name!r} (known: {known})")
        stages.append(registry[name]())
    return stages


# -- the pipeline ---------------------------------------------------------


class Pipeline:
    """Runs stages in order over one context, timing and broadcasting.

    The pipeline owns the cross-cutting concerns the stages should not:
    wall-clock measurement, counter-delta bookkeeping, discard handling
    (a stage raising :class:`SourceDiscardedError` marks the result and
    stops the run), transient-failure retries with deterministic backoff,
    and event emission through the :class:`EventBus`.

    ``retry_policy`` overrides the policy otherwise derived from the
    context's ``RunParams`` (``max_retries``); ``sleep`` replaces the
    real backoff sleep — tests inject a recording fake so retry suites
    never spend wall-clock time.
    """

    def __init__(
        self,
        stages: Iterable[Stage] | None = None,
        observers: Iterable[PipelineObserver] = (),
        retry_policy: RetryPolicy | None = None,
        sleep: SleepFn | None = None,
    ):
        self.stages: list[Stage] = (
            list(stages) if stages is not None else build_stages()
        )
        self.bus = EventBus(observers)
        self._retry_policy = retry_policy
        self._sleep: SleepFn = sleep if sleep is not None else wall_sleep

    def _fail(
        self,
        ctx: PipelineContext,
        run_started: float,
        stage_name: str,
        attempt: int,
        exc: BaseException,
    ) -> None:
        """Record an unexpected stage failure before it propagates.

        Emits the terminal ``pipeline_end`` event naming the stage and
        error (so traces close coherently) and stamps the exception with
        ``repro_stage``/``repro_attempts`` for the multi-source executor
        to turn into a :class:`~repro.core.faults.SourceFailure`.  The
        exception itself propagates to the caller unchanged.
        """
        try:
            exc.repro_stage = stage_name
            exc.repro_attempts = attempt
        except AttributeError:  # pragma: no cover - slotted exceptions
            pass
        self.bus.emit(
            PipelineEvent(
                kind="pipeline_end",
                source=ctx.source,
                stage=stage_name,
                pass_index=ctx.pass_index,
                elapsed=time.perf_counter() - run_started,
                counters=dict(ctx.counters),
                attempt=attempt,
                error=f"{type(exc).__name__}: {exc}",
            ),
            ctx,
        )

    def run(self, ctx: PipelineContext) -> SourceResult:
        """Thread ``ctx`` through every enabled stage and return its result."""
        result = ctx.result
        assert result is not None
        run_started = time.perf_counter()
        self.bus.emit(
            PipelineEvent(
                kind="pipeline_start",
                source=ctx.source,
                pass_index=ctx.pass_index,
            ),
            ctx,
        )
        policy = self._retry_policy or RetryPolicy.from_params(ctx.params)
        for stage in self.stages:
            if not stage.enabled(ctx):
                continue
            self.bus.emit(
                PipelineEvent(
                    kind="stage_start",
                    source=ctx.source,
                    stage=stage.name,
                    timing_field=stage.timing_field,
                    pass_index=ctx.pass_index,
                ),
                ctx,
            )
            counters_before = Counter(ctx.counters)
            stage_started = time.perf_counter()
            attempt = 1
            while True:
                try:
                    stage.run(ctx)
                    break
                except SourceDiscardedError as exc:
                    result.discarded = True
                    result.discard_stage = exc.stage
                    result.discard_reason = exc.reason
                    break
                except TransientSourceError as exc:
                    if attempt >= policy.max_attempts:
                        self._fail(ctx, run_started, stage.name, attempt, exc)
                        raise
                    delay = policy.delay(
                        attempt, source=ctx.source, stage=stage.name
                    )
                    self.bus.emit(
                        PipelineEvent(
                            kind="stage_retry",
                            source=ctx.source,
                            stage=stage.name,
                            timing_field=stage.timing_field,
                            pass_index=ctx.pass_index,
                            attempt=attempt,
                            retry_delay=delay,
                            error=f"{type(exc).__name__}: {exc}",
                        ),
                        ctx,
                    )
                    self._sleep(delay)
                    attempt += 1
                except Exception as exc:
                    self._fail(ctx, run_started, stage.name, attempt, exc)
                    raise
            elapsed = time.perf_counter() - stage_started
            deltas = {
                name: value - counters_before.get(name, 0)
                for name, value in ctx.counters.items()
                if value != counters_before.get(name, 0)
            }
            self.bus.emit(
                PipelineEvent(
                    kind="stage_end",
                    source=ctx.source,
                    stage=stage.name,
                    timing_field=stage.timing_field,
                    pass_index=ctx.pass_index,
                    elapsed=elapsed,
                    counters=deltas,
                    discarded=result.discarded,
                    discard_stage=result.discard_stage,
                    discard_reason=result.discard_reason,
                ),
                ctx,
            )
            if result.discarded:
                break
        self.bus.emit(
            PipelineEvent(
                kind="pipeline_end",
                source=ctx.source,
                pass_index=ctx.pass_index,
                elapsed=time.perf_counter() - run_started,
                counters=dict(ctx.counters),
                discarded=result.discarded,
                discard_stage=result.discard_stage,
                discard_reason=result.discard_reason,
            ),
            ctx,
        )
        return result
