"""De-duplication of extracted objects (the Figure 1 pipeline stage).

The Web is redundant — the paper leans on that redundancy ("the objects
that are lost could very likely be found in another source as well") and
its architecture diagram routes extracted data through a de-duplication
step before integration.  This module implements it: near-duplicate
objects, within one source or across sources, are merged, keeping the most
complete representative.

Matching is fuzzy in the way Web data demands: values are compared after
normalization, and two objects are duplicates when their *identifying*
attributes agree and no shared attribute disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sod.instances import ObjectInstance
from repro.utils.text import normalize_text


@dataclass(frozen=True)
class DedupConfig:
    """Tuning of the duplicate test.

    ``key_attributes`` identify an object (e.g. ``("artist", "date")`` for
    concerts; title for books).  When empty, all shared attributes must
    agree.  ``allow_value_containment`` treats "Hamlet" and
    "Hamlet (Penguin Classics)" as the same value — common across sources.
    """

    key_attributes: tuple[str, ...] = ()
    allow_value_containment: bool = True


@dataclass
class DedupResult:
    """Outcome of one de-duplication pass."""

    objects: list[ObjectInstance]
    merged: int = 0
    groups: list[list[ObjectInstance]] = field(default_factory=list)

    @property
    def kept(self) -> int:
        return len(self.objects)


def _values_match(
    left: list[str], right: list[str], containment: bool
) -> bool:
    left_norm = sorted(normalize_text(v) for v in left)
    right_norm = sorted(normalize_text(v) for v in right)
    if left_norm == right_norm:
        return True
    if not containment:
        return False
    if len(left_norm) != len(right_norm):
        return False
    return all(
        a in b or b in a for a, b in zip(left_norm, right_norm)
    )


def _is_duplicate(
    left: dict[str, list[str]],
    right: dict[str, list[str]],
    config: DedupConfig,
) -> bool:
    # Sorted so the key order (and with it any tie-breaking downstream) is
    # independent of PYTHONHASHSEED.
    keys = config.key_attributes or tuple(sorted(set(left) & set(right)))
    if not keys:
        return False
    for key in keys:
        left_values = left.get(key)
        right_values = right.get(key)
        if not left_values or not right_values:
            return False
        if not _values_match(
            left_values, right_values, config.allow_value_containment
        ):
            return False
    # Shared non-key attributes must not contradict each other.
    for attribute in sorted(set(left) & set(right)):
        if attribute in keys:
            continue
        if not _values_match(
            left[attribute], right[attribute], config.allow_value_containment
        ):
            return False
    return True


def _completeness(instance: ObjectInstance) -> tuple[int, int]:
    flat = instance.flat()
    attributes = len(flat)
    mass = sum(len(value) for values in flat.values() for value in values)
    return (attributes, mass)


def deduplicate(
    objects: list[ObjectInstance],
    config: DedupConfig | None = None,
) -> DedupResult:
    """Merge near-duplicate objects, keeping the most complete of each group.

    Quadratic in the worst case but bucketed by the first key attribute's
    normalized value, which keeps realistic workloads linear-ish.
    """
    config = config or DedupConfig()
    flats = [instance.normalized_flat() for instance in objects]

    def bucket_key(flat: dict[str, list[str]]) -> str:
        if config.key_attributes:
            values = flat.get(config.key_attributes[0], [])
            if values:
                # First word survives containment variants.
                return values[0].split(" ", 1)[0]
        return ""

    buckets: dict[str, list[int]] = {}
    for index, flat in enumerate(flats):
        buckets.setdefault(bucket_key(flat), []).append(index)

    group_of: dict[int, int] = {}
    groups: list[list[int]] = []
    for indexes in buckets.values():
        for position, index in enumerate(indexes):
            if index in group_of:
                continue
            group = [index]
            group_of[index] = len(groups)
            for other in indexes[position + 1 :]:
                if other in group_of:
                    continue
                if _is_duplicate(flats[index], flats[other], config):
                    group.append(other)
                    group_of[other] = len(groups)
            groups.append(group)

    kept: list[ObjectInstance] = []
    group_objects: list[list[ObjectInstance]] = []
    merged = 0
    for group in groups:
        members = [objects[i] for i in group]
        members.sort(key=_completeness, reverse=True)
        kept.append(members[0])
        group_objects.append(members)
        merged += len(members) - 1
    # Preserve original ordering of the kept representatives.
    order = {id(instance): index for index, instance in enumerate(objects)}
    kept.sort(key=lambda instance: order[id(instance)])
    return DedupResult(objects=kept, merged=merged, groups=group_objects)
