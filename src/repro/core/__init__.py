"""The ObjectRunner pipeline: the paper's primary contribution, end to end.

:class:`~repro.core.objectrunner.ObjectRunner` is a façade over the staged
pipeline subsystem (:mod:`repro.core.pipeline`): each box of the paper's
Figure 1 — page tidying and cleaning, VIPS-style central-block selection,
annotation with Algorithm-1 sample selection, wrapper generation with the
automatic parameter-variation loop, extraction, dictionary enrichment —
is a named :class:`~repro.core.pipeline.Stage` running over a shared
:class:`~repro.core.pipeline.PipelineContext`.  Observers subscribe to
stage start/end events for timings, counters and JSON-lines tracing;
preprocessing memoizes through :class:`~repro.core.cache.PreprocessCache`;
multi-source runs parallelize with ``RunParams.max_workers``.
"""

from repro.core.cache import CachedPages, PreprocessCache
from repro.core.dedup import DedupConfig, DedupResult, deduplicate
from repro.core.faults import (
    FAIL_FAST,
    FAILURE_POLICIES,
    ISOLATE,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    SourceFailure,
    wall_sleep,
)
from repro.core.objectrunner import ObjectRunner, ObjectRunnerSystem
from repro.core.params import BACKENDS, RunParams
from repro.core.sharding import ShardSpec, stable_shard
from repro.core.pipeline import (
    DEFAULT_STAGE_ORDER,
    REGISTRY_STAGE_ORDER,
    EventBus,
    Pipeline,
    PipelineContext,
    PipelineEvent,
    PipelineObserver,
    Stage,
    StageEventCollector,
    TimingObserver,
    TraceObserver,
    build_stages,
    register_stage,
    stage_registry,
)
from repro.core.results import MultiSourceResult, SourceResult, StageTimings

__all__ = [
    "ObjectRunner",
    "ObjectRunnerSystem",
    "RunParams",
    "BACKENDS",
    "ShardSpec",
    "stable_shard",
    "SourceResult",
    "MultiSourceResult",
    "StageTimings",
    "DedupConfig",
    "DedupResult",
    "deduplicate",
    "Pipeline",
    "PipelineContext",
    "PipelineEvent",
    "PipelineObserver",
    "EventBus",
    "Stage",
    "StageEventCollector",
    "TimingObserver",
    "TraceObserver",
    "build_stages",
    "register_stage",
    "stage_registry",
    "DEFAULT_STAGE_ORDER",
    "REGISTRY_STAGE_ORDER",
    "PreprocessCache",
    "CachedPages",
    "RetryPolicy",
    "SourceFailure",
    "FaultInjector",
    "FaultSpec",
    "FAIL_FAST",
    "ISOLATE",
    "FAILURE_POLICIES",
    "wall_sleep",
]
