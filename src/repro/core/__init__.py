"""The ObjectRunner pipeline: the paper's primary contribution, end to end.

:class:`~repro.core.objectrunner.ObjectRunner` runs, per source: page
tidying and cleaning, VIPS-style central-block selection, recognizer setup
(building isInstanceOf gazetteers on the fly), annotation with Algorithm-1
sample selection, wrapper generation with the automatic parameter-
variation loop, extraction, and optional dictionary enrichment.
"""

from repro.core.dedup import DedupConfig, DedupResult, deduplicate
from repro.core.objectrunner import ObjectRunner, ObjectRunnerSystem
from repro.core.params import RunParams
from repro.core.results import MultiSourceResult, SourceResult

__all__ = [
    "ObjectRunner",
    "ObjectRunnerSystem",
    "RunParams",
    "SourceResult",
    "MultiSourceResult",
    "DedupConfig",
    "DedupResult",
    "deduplicate",
]
