"""Fault isolation, deterministic retry/backoff, and fault injection.

Large-scale extraction runs over hundreds of noisy sources; one source
crashing must never take its siblings down with it.  This module is the
resilience layer the multi-source executor and the pipeline build on:

- :class:`RetryPolicy` — how many times a stage raising
  :class:`~repro.errors.TransientSourceError` is re-attempted, and how
  long to back off between attempts.  Backoff is exponential with
  *seeded* jitter (through :class:`~repro.utils.rng.DeterministicRng`),
  so two runs compute byte-identical delay schedules.
- :data:`FAIL_FAST` / :data:`ISOLATE` — the failure policies of
  ``ObjectRunner.run_sources``: abort the batch on the first unexpected
  per-source failure (cancelling pending work, partial results attached
  to the raised :class:`~repro.errors.MultiSourceError`), or record the
  failure as a :class:`SourceFailure` and let the surviving sources
  finish untouched.
- :class:`FaultInjector` — a deterministic test harness that wraps
  pipeline stages to crash them, delay them, or make them transiently
  fail on configured attempts (:class:`FaultSpec`), with every decision
  derived from an explicit seed.

Sleeping is owned by this module: :func:`wall_sleep` is the only place
in the library allowed to call ``time.sleep`` (reprolint rule ``D105``),
and everything that might wait accepts an injectable sleep callable so
tests never wall-sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import InjectedFaultError, TransientSourceError
from repro.utils.rng import DeterministicRng, derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.pipeline import PipelineContext, PipelineEvent, Stage

#: Abort the multi-source batch on the first unexpected failure.
FAIL_FAST = "fail_fast"
#: Record per-source failures and let sibling sources finish.
ISOLATE = "isolate"
#: Every failure policy ``RunParams.failure_policy`` accepts.
FAILURE_POLICIES = (FAIL_FAST, ISOLATE)

#: A sleep callable: seconds -> None.
SleepFn = Callable[[float], None]


def wall_sleep(seconds: float) -> None:
    """Really sleep — the library's single ``time.sleep`` call site.

    Everything that waits (retry backoff, injected delay faults) takes an
    injectable :data:`SleepFn` defaulting to this function, so tests swap
    in a recording fake and never spend wall-clock time (enforced by
    reprolint rule ``D105``).
    """
    if seconds > 0:
        time.sleep(seconds)


# -- retry policy ----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff for transient stage failures.

    A stage raising :class:`~repro.errors.TransientSourceError` is
    re-attempted up to ``max_retries`` extra times.  The delay before
    retry ``n`` (1-based) is ``base_delay * backoff_factor**(n-1)``
    capped at ``max_delay``, then jittered by up to ``±jitter`` of
    itself.  The jitter is drawn from a :class:`DeterministicRng` seeded
    by ``(seed, source, stage, attempt)``, so the full delay schedule is
    a pure function of the policy and the retry coordinates — no shared
    RNG state, no cross-thread ordering effects.
    """

    #: Extra attempts after the first (0 disables retrying).
    max_retries: int = 0
    #: Seconds before the first retry.
    base_delay: float = 0.05
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Upper bound on the un-jittered delay.
    max_delay: float = 2.0
    #: Jitter amplitude as a fraction of the delay, in [0, 1].
    jitter: float = 0.1
    #: Seed for the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        """Reject configurations that could not have been intended."""
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total attempts: the first try plus ``max_retries`` retries."""
        return self.max_retries + 1

    @classmethod
    def from_params(cls, params: Any) -> "RetryPolicy":
        """The policy implied by a :class:`~repro.core.params.RunParams`."""
        return cls(max_retries=params.max_retries)

    def delay(self, attempt: int, source: str = "", stage: str = "") -> float:
        """Seconds to back off before retry number ``attempt`` (1-based).

        Deterministic: the same ``(policy, source, stage, attempt)``
        always yields the same delay, on any thread, in any order.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(
            self.base_delay * self.backoff_factor ** (attempt - 1),
            self.max_delay,
        )
        if not self.jitter or not base:
            return base
        rng = DeterministicRng(derive_seed(self.seed, source, stage, attempt))
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


# -- failure records -------------------------------------------------------


@dataclass(frozen=True)
class SourceFailure:
    """One source's unexpected failure during a multi-source run.

    Unlike a *discard* (the paper's alpha gate — a recorded, expected
    outcome on :class:`~repro.core.results.SourceResult`), a failure is
    an exception the pipeline did not anticipate.  Under the
    :data:`ISOLATE` policy these are collected on
    ``MultiSourceResult.failures``; under :data:`FAIL_FAST` the first one
    aborts the batch.
    """

    #: The source whose run raised.
    source: str
    #: The pipeline stage that raised ('' when the failure happened
    #: outside any stage).
    stage: str
    #: ``TypeName: message`` of the exception.
    error: str
    #: How many attempts the failing stage made (> 1 after retries).
    attempts: int = 1
    #: The original exception object, for programmatic inspection.
    exception: BaseException | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_exception(cls, source: str, exc: BaseException) -> "SourceFailure":
        """Build a record from an exception the pipeline marked.

        The pipeline stamps unexpected exceptions with ``repro_stage``
        and ``repro_attempts`` before re-raising; absent stamps degrade
        to an empty stage and a single attempt.
        """
        return cls(
            source=source,
            stage=getattr(exc, "repro_stage", ""),
            error=f"{type(exc).__name__}: {exc}",
            attempts=getattr(exc, "repro_attempts", 1),
            exception=exc,
        )


# -- fault injection -------------------------------------------------------

#: Fault kinds a :class:`FaultSpec` can inject.
CRASH = "crash"
TRANSIENT = "transient"
DELAY = "delay"
FAULT_KINDS = (CRASH, TRANSIENT, DELAY)


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: which stage, which source, what happens.

    ``times`` bounds how many attempts the fault fires on, counted per
    ``(source, stage)``: a ``transient`` fault with ``times=1`` fails the
    first attempt and lets the retry succeed — the canonical
    succeeds-on-attempt-2 scenario.  ``probability`` below 1.0 makes the
    decision stochastic but still deterministic: the coin flip is seeded
    by the injector's seed and the fault coordinates.
    """

    #: Stage name the fault attaches to.
    stage: str
    #: Source the fault is limited to ('' matches every source).
    source: str = ""
    #: One of :data:`CRASH`, :data:`TRANSIENT`, :data:`DELAY`.
    kind: str = CRASH
    #: Number of attempts (per source and stage) the fault fires on.
    times: int = 1
    #: Seconds a :data:`DELAY` fault sleeps (through the injectable sleep).
    delay: float = 0.0
    #: Chance the fault fires on an eligible attempt, in [0, 1].
    probability: float = 1.0
    #: Message carried by the raised error.
    message: str = "injected fault"

    def __post_init__(self) -> None:
        """Reject unknown kinds and out-of-range knobs early."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if not self.stage:
            raise ValueError("FaultSpec.stage must name a pipeline stage")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, source: str, stage: str) -> bool:
        """Whether this fault applies to the given source and stage."""
        return stage == self.stage and self.source in ("", source)


class FaultInjector:
    """Deterministic fault-injection harness for pipeline stages.

    Wrap the stages of a pipeline (:meth:`wrap_all`) and every configured
    :class:`FaultSpec` fires *before* the wrapped stage body runs:
    ``crash`` raises :class:`~repro.errors.InjectedFaultError`,
    ``transient`` raises :class:`~repro.errors.TransientSourceError` (so
    the pipeline's retry loop engages), and ``delay`` sleeps through the
    injectable ``sleep``.  Attempts are counted per ``(source, stage)``
    under a lock, so the harness is safe under the parallel multi-source
    executor, and probabilistic faults flip a coin seeded by
    ``(seed, source, stage, attempt)`` — re-running the same
    configuration reproduces the same faults exactly.

    The injector is also a pipeline observer: subscribe it to a run and
    it records every ``stage_retry`` event it sees on
    :attr:`retries_observed` (``ObjectRunner`` subscribes it
    automatically when given one).
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        seed: int = 0,
        sleep: SleepFn | None = None,
    ):
        self.specs = list(specs)
        self.seed = seed
        self._sleep: SleepFn = sleep if sleep is not None else wall_sleep
        self._lock = threading.Lock()
        self._attempts: dict[tuple[str, str], int] = {}
        #: Log of fired faults: (source, stage, kind, attempt) tuples in
        #: firing order (ordering across threads is scheduling-dependent;
        #: per-source order is not).
        self.fired: list[tuple[str, str, str, int]] = []
        #: ``stage_retry`` events seen while subscribed as an observer.
        self.retries_observed: list["PipelineEvent"] = []

    # - stage wrapping -

    def wrap(self, stage: "Stage") -> "Stage":
        """Wrap one stage so configured faults fire before it runs."""
        return _FaultableStage(stage, self)

    def wrap_all(self, stages: Iterable["Stage"]) -> list["Stage"]:
        """Wrap every stage of a pipeline, preserving order."""
        return [self.wrap(stage) for stage in stages]

    def attempts(self, source: str, stage: str) -> int:
        """How many attempts the given source/stage has made so far."""
        with self._lock:
            return self._attempts.get((source, stage), 0)

    def fire(self, source: str, stage: str) -> None:
        """Apply the first matching fault for this attempt, if any.

        Called by the stage wrapper on every attempt; counts the attempt
        even when no fault fires so ``times`` budgets line up with the
        pipeline's retry numbering.
        """
        with self._lock:
            key = (source, stage)
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
        spec = next(
            (s for s in self.specs if s.matches(source, stage)), None
        )
        if spec is None or attempt > spec.times:
            return
        if spec.probability < 1.0:
            rng = DeterministicRng(
                derive_seed(self.seed, source, stage, attempt)
            )
            if not rng.coin(spec.probability):
                return
        with self._lock:
            self.fired.append((source, stage, spec.kind, attempt))
        if spec.kind == DELAY:
            self._sleep(spec.delay)
            return
        detail = (
            f"{spec.message} (source={source!r}, stage={stage!r}, "
            f"attempt={attempt})"
        )
        if spec.kind == TRANSIENT:
            raise TransientSourceError(detail)
        raise InjectedFaultError(detail)

    # - observer hooks (duck-typed PipelineObserver surface) -

    def on_pipeline_start(self, event: "PipelineEvent", ctx: "PipelineContext") -> None:
        """Observer hook: nothing to do at run start."""

    def on_stage_start(self, event: "PipelineEvent", ctx: "PipelineContext") -> None:
        """Observer hook: nothing to do at stage start."""

    def on_stage_end(self, event: "PipelineEvent", ctx: "PipelineContext") -> None:
        """Observer hook: nothing to do at stage end."""

    def on_stage_retry(self, event: "PipelineEvent", ctx: "PipelineContext") -> None:
        """Record a retry event triggered by (possibly) injected faults."""
        with self._lock:
            self.retries_observed.append(event)

    def on_pipeline_end(self, event: "PipelineEvent", ctx: "PipelineContext") -> None:
        """Observer hook: nothing to do at run end."""


class _FaultableStage:
    """A stage wrapper consulting a :class:`FaultInjector` before running.

    Mirrors the :class:`~repro.core.pipeline.Stage` surface (name,
    timing field, contract declarations, ``enabled``/``run``) so the
    pipeline drives it like the stage it wraps.  Not registered with the
    stage registry — fault wrapping is per-pipeline, never global.
    """

    def __init__(self, inner: "Stage", injector: FaultInjector):
        self._inner = inner
        self._injector = injector
        self.name = inner.name
        self.timing_field = inner.timing_field
        self.reads = inner.reads
        self.writes = inner.writes

    def enabled(self, ctx: "PipelineContext") -> bool:
        return self._inner.enabled(ctx)

    def run(self, ctx: "PipelineContext") -> None:
        self._injector.fire(ctx.source, self.name)
        self._inner.run(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_FaultableStage({self._inner!r})"
