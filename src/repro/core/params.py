"""Run parameters of the full pipeline."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.faults import FAILURE_POLICIES
from repro.core.sharding import ShardSpec

#: Execution backends of ``run_sources``: worker threads (cheap, shares
#: every in-process cache, but GIL-bound on the CPU-heavy induction path)
#: or worker processes (per-shard fan-out with true parallelism).
BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class RunParams:
    """Everything tunable about one ObjectRunner run.

    Defaults follow the paper's experimental setup: sample of ~20 pages,
    annotation-rate threshold alpha = 0.5, generalization threshold 0.7,
    support varied automatically between 3 and 5.
    """

    sample_size: int = 20
    alpha: float = 0.5
    enforce_alpha: bool = True
    generalization_threshold: float = 0.7
    #: Support values tried by the automatic parameter-variation loop, in
    #: order of preference.
    support_values: tuple[int, ...] = (3, 4, 5)
    #: Use the VIPS-style central-block simplification.
    use_segmentation: bool = True
    #: Select the wrapper sample by annotation scores (Algorithm 1); False
    #: gives the random-selection baseline of Table II.
    sod_based_sampling: bool = True
    #: Enrich gazetteers from extraction results (Eq. 4).
    enrich_dictionaries: bool = False
    #: With enrichment on, run the whole pipeline this many times per
    #: source: each pass re-annotates with the dictionaries the previous
    #: pass grew (the paper's self-improving loop).
    enrichment_passes: int = 1
    #: Neighborhood radius for ontology lookups.
    neighborhood_radius: int = 2
    #: Random seed for the random-sampling baseline.
    sampling_seed: int = 7
    #: Chaos threshold of the alignment's sparse-column check, in [0, 1]:
    #: an alignment level collapses to one whole-content field when more
    #: than this fraction of its columns is sparse (a column is sparse
    #: below ``total_records * chaos_ratio`` cells).  0 treats every
    #: level as chaotic, 1 effectively disables the check.
    chaos_ratio: float = 0.5
    #: Worker threads for multi-source runs (``run_sources``): independent
    #: sources wrap concurrently when > 1.  Enrichment runs force serial
    #: execution because gazetteer growth is order-dependent.
    max_workers: int = 1
    #: How ``run_sources`` treats an unexpected per-source failure:
    #: ``"fail_fast"`` cancels pending sources and raises
    #: :class:`~repro.errors.MultiSourceError` with partial results
    #: attached; ``"isolate"`` records a
    #: :class:`~repro.core.faults.SourceFailure` and lets the surviving
    #: sources finish.
    failure_policy: str = "fail_fast"
    #: Extra attempts for a stage raising
    #: :class:`~repro.errors.TransientSourceError` (0 disables retrying);
    #: backoff follows :class:`~repro.core.faults.RetryPolicy`.
    max_retries: int = 0
    #: Execution backend of ``run_sources``: ``"thread"`` fans sources out
    #: on a thread pool sharing the runner's caches; ``"process"`` splits
    #: them into ``max_workers`` hash-mod shards, runs each in a worker
    #: process with its own cache/metrics/registry view, and merges with
    #: the order-pinned semantics — byte-identical output either way.
    backend: str = "thread"
    #: Restrict ``run_sources`` to the sources of one deterministic
    #: hash-mod shard (:class:`~repro.core.sharding.ShardSpec`); ``None``
    #: runs everything.  Membership is ``PYTHONHASHSEED``-independent, so
    #: N cooperating processes given shards 0/N .. N-1/N cover every
    #: source exactly once.
    shard: ShardSpec | None = None

    def __post_init__(self) -> None:
        """Reject out-of-range values that would silently distort runs."""
        if not 0.0 <= self.chaos_ratio <= 1.0:
            raise ValueError(
                f"chaos_ratio must be in [0, 1], got {self.chaos_ratio}"
            )
        if self.failure_policy not in FAILURE_POLICIES:
            known = ", ".join(FAILURE_POLICIES)
            raise ValueError(
                f"unknown failure_policy {self.failure_policy!r} "
                f"(known: {known})"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {self.backend!r} (known: {known})"
            )
        if self.shard is not None and not isinstance(self.shard, ShardSpec):
            raise ValueError(
                f"shard must be a ShardSpec or None, got {self.shard!r}"
            )

    def with_overrides(self, **kwargs) -> "RunParams":
        """A copy with some fields replaced.

        Enumerates the declared dataclass fields, so newly added
        parameters participate automatically; unknown keyword names are
        rejected rather than silently dropped.
        """
        names = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(kwargs) - names)
        if unknown:
            raise ValueError(
                f"unknown RunParams field(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(names))})"
            )
        return dataclasses.replace(self, **kwargs)
