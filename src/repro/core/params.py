"""Run parameters of the full pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunParams:
    """Everything tunable about one ObjectRunner run.

    Defaults follow the paper's experimental setup: sample of ~20 pages,
    annotation-rate threshold alpha = 0.5, generalization threshold 0.7,
    support varied automatically between 3 and 5.
    """

    sample_size: int = 20
    alpha: float = 0.5
    enforce_alpha: bool = True
    generalization_threshold: float = 0.7
    #: Support values tried by the automatic parameter-variation loop, in
    #: order of preference.
    support_values: tuple[int, ...] = (3, 4, 5)
    #: Use the VIPS-style central-block simplification.
    use_segmentation: bool = True
    #: Select the wrapper sample by annotation scores (Algorithm 1); False
    #: gives the random-selection baseline of Table II.
    sod_based_sampling: bool = True
    #: Enrich gazetteers from extraction results (Eq. 4).
    enrich_dictionaries: bool = False
    #: With enrichment on, run the whole pipeline this many times per
    #: source: each pass re-annotates with the dictionaries the previous
    #: pass grew (the paper's self-improving loop).
    enrichment_passes: int = 1
    #: Neighborhood radius for ontology lookups.
    neighborhood_radius: int = 2
    #: Random seed for the random-sampling baseline.
    sampling_seed: int = 7
    chaos_ratio: float = 0.5
    #: Worker threads for multi-source runs (``run_sources``): independent
    #: sources wrap concurrently when > 1.  Enrichment runs force serial
    #: execution because gazetteer growth is order-dependent.
    max_workers: int = 1

    def with_overrides(self, **kwargs) -> "RunParams":
        """A copy with some fields replaced."""
        data = {
            "sample_size": self.sample_size,
            "alpha": self.alpha,
            "enforce_alpha": self.enforce_alpha,
            "generalization_threshold": self.generalization_threshold,
            "support_values": self.support_values,
            "use_segmentation": self.use_segmentation,
            "sod_based_sampling": self.sod_based_sampling,
            "enrich_dictionaries": self.enrich_dictionaries,
            "enrichment_passes": self.enrichment_passes,
            "neighborhood_radius": self.neighborhood_radius,
            "sampling_seed": self.sampling_seed,
            "chaos_ratio": self.chaos_ratio,
            "max_workers": self.max_workers,
        }
        data.update(kwargs)
        return RunParams(**data)
