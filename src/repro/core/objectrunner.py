"""The ObjectRunner pipeline façade.

Typical use::

    runner = ObjectRunner(
        sod=parse_sod("concert(artist, date<kind=predefined>, ...)"),
        ontology=ontology,
        corpus=corpus,
        gazetteer_classes={"artist": "Artist", "theater": "Theater"},
    )
    result = runner.run_source("zvents", raw_html_pages)
    for instance in result.objects:
        print(instance.values)
"""

from __future__ import annotations

import time

from repro.annotation.annotator import AnnotatedPage, PageAnnotator
from repro.annotation.sampling import SampleSelectionConfig, select_sample
from repro.baselines.interface import SystemOutput
from repro.core.params import RunParams
from repro.core.results import MultiSourceResult, SourceResult, StageTimings
from repro.corpus.store import Corpus
from repro.errors import SodError, SourceDiscardedError
from repro.htmlkit.clean import clean_tree
from repro.htmlkit.dom import Element
from repro.htmlkit.tidy import tidy
from repro.kb.ontology import Ontology
from repro.recognizers.base import Recognizer
from repro.recognizers.build import DictionaryBuilder
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_names, predefined_recognizer
from repro.recognizers.registry import RecognizerRegistry
from repro.recognizers.rules import FullNodeRecognizer
from repro.sod.types import (
    KIND_IS_INSTANCE_OF,
    KIND_PREDEFINED,
    KIND_REGEX,
    SodType,
    entity_types,
)
from repro.utils.rng import DeterministicRng
from repro.vision.segmentation import (
    BlockTree,
    find_block_by_signature,
    main_content_block,
    segment_page,
)
from repro.wrapper.enrichment import enrich_dictionary
from repro.wrapper.extraction import extract_objects
from repro.wrapper.generate import Wrapper, WrapperConfig, generate_wrapper


class ObjectRunner:
    """Targeted extraction for one SOD over any number of sources."""

    def __init__(
        self,
        sod: SodType,
        registry: RecognizerRegistry | None = None,
        ontology: Ontology | None = None,
        corpus: Corpus | None = None,
        gazetteer_classes: dict[str, str] | None = None,
        params: RunParams | None = None,
        extra_gazetteer_entries: dict[str, dict[str, float]] | None = None,
    ):
        self.sod = sod
        self.params = params or RunParams()
        self.registry = registry or RecognizerRegistry()
        self._ontology = ontology
        self._corpus = corpus
        self._gazetteer_classes = dict(gazetteer_classes or {})
        #: Per-source dictionary completion (paper Section IV-A): extra
        #: entries merged into each built gazetteer, keyed by type name.
        self._extra_gazetteer_entries = dict(extra_gazetteer_entries or {})
        self._setup_recognizers()

    # -- recognizer setup -------------------------------------------------

    def _setup_recognizers(self) -> None:
        """Resolve a recognizer for every entity type of the SOD.

        Predefined kinds instantiate the built-in recognizers; isInstanceOf
        kinds build gazetteers on the fly from the ontology/corpus; regex
        kinds must already be registered by the caller.
        """
        builder = DictionaryBuilder(
            ontology=self._ontology,
            corpus=self._corpus,
            neighborhood_radius=self.params.neighborhood_radius,
        )
        self.recognizers: list[Recognizer] = []
        for entity in entity_types(self.sod):
            key = entity.name.lower()
            if self.registry.names() and key in self.registry.names():
                recognizer = self.registry.get(entity.name)
                if entity.cover_node and not isinstance(
                    recognizer, FullNodeRecognizer
                ):
                    recognizer = FullNodeRecognizer(recognizer)
                    self.registry.register(recognizer, name=entity.name)
                self.recognizers.append(recognizer)
                continue
            if entity.kind == KIND_PREDEFINED:
                base = entity.recognizer or entity.name
                if base.lower() not in predefined_names():
                    raise SodError(
                        f"entity {entity.name!r} declares predefined recognizer "
                        f"{base!r}, which does not exist"
                    )
                recognizer = predefined_recognizer(base, type_name=entity.name)
            elif entity.kind == KIND_IS_INSTANCE_OF:
                class_name = self._gazetteer_classes.get(
                    entity.name, entity.name.capitalize()
                )
                recognizer = builder.build(class_name, type_name=entity.name)
                for value, confidence in self._extra_gazetteer_entries.get(
                    entity.name, {}
                ).items():
                    recognizer.add(value, confidence)
            elif entity.kind == KIND_REGEX:
                recognizer = self.registry.get(entity.name)
            else:  # pragma: no cover - kinds validated by the SOD layer
                raise SodError(f"unknown recognizer kind {entity.kind!r}")
            if entity.cover_node:
                recognizer = FullNodeRecognizer(recognizer)
            self.registry.register(recognizer, name=entity.name)
            self.recognizers.append(recognizer)

    def gazetteers(self) -> dict[str, GazetteerRecognizer]:
        """The gazetteer recognizers in use, by entity-type name."""
        return {
            recognizer.type_name: recognizer
            for recognizer in self.recognizers
            if isinstance(recognizer, GazetteerRecognizer)
        }

    # -- pipeline ---------------------------------------------------------

    def prepare_pages(self, raw_pages: list[str]) -> list[Element]:
        """Tidy and clean raw HTML pages."""
        return [clean_tree(tidy(raw)) for raw in raw_pages]

    def run_source(self, source: str, raw_pages: list[str]) -> SourceResult:
        """Run the full pipeline on raw HTML pages of one source.

        With ``enrich_dictionaries`` and ``enrichment_passes > 1`` the
        whole pipeline re-runs on fresh copies of the pages: every pass
        annotates with the dictionaries the previous pass grew, so
        coverage — and with it the wrapper — improves (the paper's
        "use current annotations to discover new annotations" loop).
        """
        passes = max(1, self.params.enrichment_passes)
        if not self.params.enrich_dictionaries:
            passes = 1
        result = SourceResult(source=source)
        for pass_index in range(passes):
            result = SourceResult(source=source)
            started = time.perf_counter()
            pages = self.prepare_pages(raw_pages)
            result.timings.preprocess = time.perf_counter() - started
            result = self._run_prepared(source, pages, result)
            if result.discarded:
                break
            __ = pass_index
        return result

    def run_source_prepared(
        self, source: str, pages: list[Element]
    ) -> SourceResult:
        """Run on already tidied/cleaned pages (shared-harness entry)."""
        return self._run_prepared(source, pages, SourceResult(source=source))

    def extract_with(self, wrapper: Wrapper, raw_pages: list[str]) -> SourceResult:
        """Apply an existing (possibly persisted) wrapper to fresh pages.

        Wrapping is the expensive step; this is the wrap-once /
        extract-often path: load a wrapper with
        :func:`repro.wrapper.serialize.wrapper_from_dict` and run it over a
        re-crawl without re-annotating or re-inferring anything.
        """
        result = SourceResult(source=wrapper.source)
        started = time.perf_counter()
        pages = self.prepare_pages(raw_pages)
        result.timings.preprocess = time.perf_counter() - started
        started = time.perf_counter()
        result.wrapper = wrapper
        result.support_used = wrapper.support
        result.conflicts = wrapper.conflicts
        result.objects = extract_objects(wrapper, pages, source=wrapper.source)
        result.timings.extraction = time.perf_counter() - started
        return result

    def run_sources(
        self,
        sources: dict[str, list[str]],
        deduplicate_across: bool = False,
        dedup_keys: tuple[str, ...] = (),
    ) -> "MultiSourceResult":
        """Run the pipeline over several sources of the same domain.

        With ``deduplicate_across=True``, the pooled objects pass through
        the de-duplication stage of the paper's Figure 1 architecture —
        the Web's redundancy means the same real-world item often appears
        on several sources.  ``dedup_keys`` names the identifying
        attributes (defaults to exact agreement on all shared attributes).
        """
        from repro.core.dedup import DedupConfig, deduplicate

        results: dict[str, SourceResult] = {}
        pooled = []
        for source, raw_pages in sources.items():
            result = self.run_source(source, raw_pages)
            results[source] = result
            pooled.extend(result.objects)
        merged = 0
        if deduplicate_across:
            outcome = deduplicate(
                pooled, DedupConfig(key_attributes=dedup_keys)
            )
            pooled = outcome.objects
            merged = outcome.merged
        return MultiSourceResult(
            results=results, objects=pooled, duplicates_merged=merged
        )

    def _run_prepared(
        self, source: str, pages: list[Element], result: SourceResult
    ) -> SourceResult:
        params = self.params
        started = time.perf_counter()
        block_trees: list[BlockTree] | None = None
        regions: list[Element] = pages
        if params.use_segmentation:
            block_trees = [segment_page(page) for page in pages]
            signature = main_content_block(block_trees)
            if signature is not None:
                resolved: list[Element] = []
                for page, tree in zip(pages, block_trees):
                    block = find_block_by_signature(tree, signature)
                    resolved.append(block.element if block else page)
                regions = resolved
        result.timings.preprocess += time.perf_counter() - started

        # Annotation + sample selection (Algorithm 1, or the random
        # baseline of Table II).
        started = time.perf_counter()
        term_frequency = None
        if self._ontology is not None:
            term_frequency = self._ontology.term_frequency
        try:
            sample_regions, sample_indexes = self._select_sample(
                source, regions, block_trees, term_frequency
            )
        except SourceDiscardedError as exc:
            result.discarded = True
            result.discard_stage = exc.stage
            result.discard_reason = exc.reason
            result.timings.annotation = time.perf_counter() - started
            return result
        result.sample_page_indexes = sample_indexes
        result.timings.annotation = time.perf_counter() - started

        # Wrapper generation with automatic parameter variation: try each
        # support value, keep the matched wrapper with fewest conflicting
        # annotations (the self-validation loop of Section IV).
        started = time.perf_counter()
        best: Wrapper | None = None
        last_error: SourceDiscardedError | None = None
        for support in params.support_values:
            config = WrapperConfig(
                support=support,
                use_annotations=True,
                generalization_threshold=params.generalization_threshold,
                chaos_ratio=params.chaos_ratio,
            )
            try:
                wrapper = generate_wrapper(source, sample_regions, self.sod, config)
            except SourceDiscardedError as exc:
                last_error = exc
                continue
            if best is None or _wrapper_preference(wrapper) > _wrapper_preference(best):
                best = wrapper
            if best.match.matched and best.conflicts == 0:
                break
        result.timings.wrapping = time.perf_counter() - started
        if best is None:
            assert last_error is not None
            result.discarded = True
            result.discard_stage = last_error.stage
            result.discard_reason = last_error.reason
            return result

        result.wrapper = best
        result.support_used = best.support
        result.conflicts = best.conflicts

        started = time.perf_counter()
        result.objects = extract_objects(best, pages, source=source)
        result.timings.extraction = time.perf_counter() - started

        if params.enrich_dictionaries:
            self._enrich(best, result)
        return result

    # -- helpers ----------------------------------------------------------

    def _select_sample(
        self,
        source: str,
        regions: list[Element],
        block_trees: list[BlockTree] | None,
        term_frequency,
    ) -> tuple[list[Element], list[int]]:
        params = self.params
        if params.sod_based_sampling:
            run = select_sample(
                source,
                regions,
                self.recognizers,
                config=SampleSelectionConfig(
                    sample_size=params.sample_size,
                    alpha=params.alpha,
                    enforce_alpha=params.enforce_alpha,
                ),
                term_frequency=term_frequency,
                block_trees=block_trees,
            )
            return (
                [page.root for page in run.sample],
                [page.index for page in run.sample],
            )
        # Random-selection baseline: annotate a random page subset.
        rng = DeterministicRng(params.sampling_seed).fork("random-sample", source)
        indexes = sorted(
            rng.sample(list(range(len(regions))), params.sample_size)
        )
        annotator = PageAnnotator()
        sample: list[Element] = []
        for index in indexes:
            page = AnnotatedPage(root=regions[index], index=index)
            for recognizer in self.recognizers:
                annotator.annotate(page, recognizer)
            sample.append(page.root)
        return sample, indexes

    def _enrich(self, wrapper: Wrapper, result: SourceResult) -> None:
        """Feed extracted values back into the gazetteers (Eq. 4)."""
        gazetteers = self.gazetteers()
        values_by_type: dict[str, list[str]] = {}
        for instance in result.objects:
            for attribute, values in instance.flat().items():
                values_by_type.setdefault(attribute, []).extend(values)
        for type_name, gazetteer in gazetteers.items():
            values = values_by_type.get(type_name, [])
            if values:
                enrich_dictionary(gazetteer, values, wrapper)


def _wrapper_preference(wrapper: Wrapper) -> tuple[int, int, int]:
    """Ordering key: matched first, then fewer conflicts, then more slots."""
    return (
        1 if wrapper.match.matched else 0,
        -wrapper.conflicts,
        len(wrapper.template.field_slots()),
    )


class ObjectRunnerSystem:
    """Adapter exposing ObjectRunner behind the comparison interface."""

    def __init__(
        self,
        ontology: Ontology | None = None,
        corpus: Corpus | None = None,
        gazetteer_classes: dict[str, str] | None = None,
        params: RunParams | None = None,
        extra_gazetteer_entries: dict[str, dict[str, float]] | None = None,
    ):
        self._ontology = ontology
        self._corpus = corpus
        self._gazetteer_classes = gazetteer_classes
        self._params = params
        self._extra_gazetteer_entries = extra_gazetteer_entries

    @property
    def name(self) -> str:
        return "objectrunner"

    def run(
        self, source: str, pages: list[Element], sod: SodType
    ) -> SystemOutput:
        """Run the full pipeline on prepared pages of one source."""
        runner = ObjectRunner(
            sod=sod,
            ontology=self._ontology,
            corpus=self._corpus,
            gazetteer_classes=self._gazetteer_classes,
            params=self._params,
            extra_gazetteer_entries=self._extra_gazetteer_entries,
        )
        result = runner.run_source_prepared(source, pages)
        if result.discarded:
            return SystemOutput(
                system=self.name,
                source=source,
                failed=True,
                failure_reason=result.discard_reason,
            )
        return SystemOutput(
            system=self.name,
            source=source,
            objects=result.objects,
            wrap_seconds=result.timings.wrapping,
        )
