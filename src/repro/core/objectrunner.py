"""The ObjectRunner façade over the staged pipeline.

Typical use::

    runner = ObjectRunner(
        sod=parse_sod("concert(artist, date<kind=predefined>, ...)"),
        ontology=ontology,
        corpus=corpus,
        gazetteer_classes={"artist": "Artist", "theater": "Theater"},
    )
    result = runner.run_source("zvents", raw_html_pages)
    for instance in result.objects:
        print(instance.values)

The runner owns recognizer setup and the cross-cutting services —
preprocessing cache, observers, worker pool — and delegates the actual
dataflow to :class:`~repro.core.pipeline.Pipeline` over the stages
registered in :mod:`repro.core.stages`.  Subscribe a
:class:`~repro.core.pipeline.PipelineObserver` (for example a
:class:`~repro.core.pipeline.TraceObserver`) to watch stage-level timings
and counters of every run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable

from repro.baselines.interface import SystemOutput
from repro.core.cache import PreprocessCache
from repro.core.faults import (
    ISOLATE,
    FaultInjector,
    RetryPolicy,
    SleepFn,
    SourceFailure,
)
from repro.core.params import RunParams
from repro.core.sharding import stable_shard
from repro.core.pipeline import (
    DEFAULT_STAGE_ORDER,
    REGISTRY_STAGE_ORDER,
    Pipeline,
    PipelineContext,
    PipelineObserver,
    StageEventCollector,
    TimingObserver,
    build_stages,
)
from repro.core.results import MultiSourceResult, SourceResult
from repro.corpus.store import Corpus
from repro.errors import (
    MultiSourceError,
    ProcessBackendConfigError,
    SodError,
)
from repro.htmlkit.dom import Element
from repro.kb.ontology import Ontology
from repro.metrics.observer import MetricsObserver
from repro.metrics.registry import MetricsRegistry
from repro.recognizers.base import Recognizer
from repro.recognizers.build import DictionaryBuilder
from repro.recognizers.gazetteer import GazetteerRecognizer
from repro.recognizers.predefined import predefined_names, predefined_recognizer
from repro.recognizers.registry import RecognizerRegistry
from repro.recognizers.rules import FullNodeRecognizer
from repro.registry.store import (
    StagedRegistryView,
    StagedWrites,
    WrapperRegistry,
)
from repro.sod.types import (
    KIND_IS_INSTANCE_OF,
    KIND_PREDEFINED,
    KIND_REGEX,
    SodType,
    entity_types,
)
from repro.wrapper.generate import Wrapper


@dataclass(frozen=True)
class _ProcessShardTask:
    """Everything one worker process needs to run its shard serially.

    Every field is picklable: the runner is *rebuilt* in the worker (with
    its own :class:`PreprocessCache`, :class:`MetricsObserver` and
    wrapper-registry handle) rather than shipped, because the live runner
    holds locks and open observers.  ``params`` arrives pre-flattened to
    a serial thread backend so workers never recurse into fan-out.
    """

    sod: SodType
    registry: RecognizerRegistry
    ontology: Ontology | None
    corpus: Corpus | None
    gazetteer_classes: dict[str, str]
    extra_gazetteer_entries: dict[str, dict[str, float]]
    params: RunParams
    retry_policy: RetryPolicy | None
    registry_root: str | None
    items: tuple[tuple[str, tuple[str, ...]], ...]
    isolate: bool


@dataclass(frozen=True)
class _ProcessShardResult:
    """What one worker ships home: outcomes plus mergeable state.

    ``outcomes`` aligns with the task's item prefix (a fail-fast worker
    stops at its first failure); ``registries`` hold per-source metrics
    for :meth:`MetricsObserver.adopt_source`; ``writes`` hold each
    completed source's buffered registry writes for the order-pinned
    apply; ``registry_stats``/``cache_stats`` are the worker's lifetime
    counters, folded into the parent's reporting.
    """

    outcomes: tuple["SourceResult | SourceFailure", ...]
    registries: dict[str, "MetricsRegistry"]
    writes: dict[str, StagedWrites]
    registry_stats: dict[str, int] | None
    cache_stats: dict[str, int]


def _run_process_shard(task: _ProcessShardTask) -> _ProcessShardResult:
    """Run one shard inside a worker process (module-level for pickling).

    The worker mirrors the serial batch path: per-source staged registry
    views over a private registry handle, one :class:`MetricsObserver`,
    sources in shard input order.  Nothing is written to the shared
    registry here — writes are exported and applied by the parent in
    global input order, which is what keeps an N-way process run
    byte-identical to the serial one.
    """
    observer = MetricsObserver()
    wrapper_registry = (
        WrapperRegistry(task.registry_root) if task.registry_root else None
    )
    runner = ObjectRunner(
        sod=task.sod,
        registry=task.registry,
        ontology=task.ontology,
        corpus=task.corpus,
        gazetteer_classes=task.gazetteer_classes,
        params=task.params,
        extra_gazetteer_entries=task.extra_gazetteer_entries,
        observers=(observer,),
        retry_policy=task.retry_policy,
        wrapper_registry=wrapper_registry,
    )
    observer.note_source_order(source for source, __ in task.items)
    outcomes: list[SourceResult | SourceFailure] = []
    writes: dict[str, StagedWrites] = {}
    for source, raw_pages in task.items:
        view = (
            StagedRegistryView(wrapper_registry)
            if wrapper_registry is not None
            else None
        )
        try:
            outcomes.append(runner._run_item(source, list(raw_pages), view))
        except Exception as exc:
            outcomes.append(SourceFailure.from_exception(source, exc))
            if not task.isolate:
                break
        if view is not None:
            writes[source] = view.export()
    return _ProcessShardResult(
        outcomes=tuple(outcomes),
        registries={
            source: observer.source_registry(source)
            for source in observer.sources()
        },
        writes=writes,
        registry_stats=(
            wrapper_registry.stats() if wrapper_registry is not None else None
        ),
        cache_stats=runner.cache.stats(),
    )


class ObjectRunner:
    """Targeted extraction for one SOD over any number of sources."""

    def __init__(
        self,
        sod: SodType,
        registry: RecognizerRegistry | None = None,
        ontology: Ontology | None = None,
        corpus: Corpus | None = None,
        gazetteer_classes: dict[str, str] | None = None,
        params: RunParams | None = None,
        extra_gazetteer_entries: dict[str, dict[str, float]] | None = None,
        observers: Iterable[PipelineObserver] = (),
        cache: PreprocessCache | None = None,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        sleep: SleepFn | None = None,
        wrapper_registry: WrapperRegistry | None = None,
    ):
        self.sod = sod
        self.params = params or RunParams()
        self.registry = registry or RecognizerRegistry()
        #: Content-addressed wrapper store; when set, single-pass runs take
        #: the registry-first path (match -> induce on miss -> extract)
        #: instead of inducing unconditionally.
        self.wrapper_registry = wrapper_registry
        #: Optional deterministic fault harness: wraps every stage of
        #: every pipeline this runner builds, and observes retry events.
        self.fault_injector = fault_injector
        #: Optional override of the params-derived transient-retry policy.
        self.retry_policy = retry_policy
        self._sleep = sleep
        self._ontology = ontology
        self._corpus = corpus
        self._gazetteer_classes = dict(gazetteer_classes or {})
        #: Per-source dictionary completion (paper Section IV-A): extra
        #: entries merged into each built gazetteer, keyed by type name.
        self._extra_gazetteer_entries = dict(extra_gazetteer_entries or {})
        #: Observers subscribed to every pipeline run of this runner.
        self.observers: list[PipelineObserver] = list(observers)
        #: Content-hash cache of tidied/cleaned page trees, shared across
        #: passes, sources and (if injected) runners.
        self.cache = cache if cache is not None else PreprocessCache()
        for observer in self.observers:
            if isinstance(observer, MetricsObserver):
                observer.observe_cache(self.cache)
        if self.params.backend == "process":
            self._check_process_backend_support()
        self._setup_recognizers()

    # -- recognizer setup -------------------------------------------------

    def _setup_recognizers(self) -> None:
        """Resolve a recognizer for every entity type of the SOD.

        Predefined kinds instantiate the built-in recognizers; isInstanceOf
        kinds build gazetteers on the fly from the ontology/corpus; regex
        kinds must already be registered by the caller.
        """
        builder = DictionaryBuilder(
            ontology=self._ontology,
            corpus=self._corpus,
            neighborhood_radius=self.params.neighborhood_radius,
        )
        self.recognizers: list[Recognizer] = []
        for entity in entity_types(self.sod):
            key = entity.name.lower()
            if self.registry.names() and key in self.registry.names():
                recognizer = self.registry.get(entity.name)
                if entity.cover_node and not isinstance(
                    recognizer, FullNodeRecognizer
                ):
                    recognizer = FullNodeRecognizer(recognizer)
                    self.registry.register(recognizer, name=entity.name)
                self.recognizers.append(recognizer)
                continue
            if entity.kind == KIND_PREDEFINED:
                base = entity.recognizer or entity.name
                if base.lower() not in predefined_names():
                    raise SodError(
                        f"entity {entity.name!r} declares predefined recognizer "
                        f"{base!r}, which does not exist"
                    )
                recognizer = predefined_recognizer(base, type_name=entity.name)
            elif entity.kind == KIND_IS_INSTANCE_OF:
                class_name = self._gazetteer_classes.get(
                    entity.name, entity.name.capitalize()
                )
                recognizer = builder.build(class_name, type_name=entity.name)
                for value, confidence in self._extra_gazetteer_entries.get(
                    entity.name, {}
                ).items():
                    recognizer.add(value, confidence)
            elif entity.kind == KIND_REGEX:
                recognizer = self.registry.get(entity.name)
            else:  # pragma: no cover - kinds validated by the SOD layer
                raise SodError(f"unknown recognizer kind {entity.kind!r}")
            if entity.cover_node:
                recognizer = FullNodeRecognizer(recognizer)
            self.registry.register(recognizer, name=entity.name)
            self.recognizers.append(recognizer)

    def gazetteers(self) -> dict[str, GazetteerRecognizer]:
        """The gazetteer recognizers in use, by entity-type name."""
        return {
            recognizer.type_name: recognizer
            for recognizer in self.recognizers
            if isinstance(recognizer, GazetteerRecognizer)
        }

    # -- pipeline assembly ------------------------------------------------

    def add_observer(self, observer: PipelineObserver) -> None:
        """Subscribe an observer to every subsequent pipeline run.

        Under the process backend the same construction-time rule
        applies: only :class:`MetricsObserver` observers can follow
        their measurements across the boundary, so anything else is
        rejected here, at subscription time.
        """
        if self.params.backend == "process" and not isinstance(
            observer, MetricsObserver
        ):
            raise ProcessBackendConfigError(
                "observers",
                "the process backend supports only MetricsObserver "
                f"observers; got {type(observer).__name__}",
            )
        self.observers.append(observer)
        if isinstance(observer, MetricsObserver):
            observer.observe_cache(self.cache)

    def _build_pipeline(
        self,
        stage_names: Iterable[str] = DEFAULT_STAGE_ORDER,
        extra_observers: Iterable[PipelineObserver] = (),
    ) -> Pipeline:
        """A pipeline with the runner's observers (timings always first)."""
        observers = [TimingObserver(), *self.observers, *extra_observers]
        stages = build_stages(stage_names)
        if self.fault_injector is not None:
            stages = self.fault_injector.wrap_all(stages)
            observers.append(self.fault_injector)
        return Pipeline(
            stages,
            observers,
            retry_policy=self.retry_policy,
            sleep=self._sleep,
        )

    def _context(
        self,
        source: str,
        raw_pages: Iterable[str] = (),
        pages: Iterable[Element] = (),
        pass_index: int = 0,
        total_passes: int = 1,
        registry: "WrapperRegistry | StagedRegistryView | None" = None,
    ) -> PipelineContext:
        """A fresh context carrying this runner's shared services."""
        return PipelineContext(
            source=source,
            params=self.params,
            sod=self.sod,
            recognizers=self.recognizers,
            ontology=self._ontology,
            raw_pages=list(raw_pages),
            pages=list(pages),
            cache=self.cache,
            pass_index=pass_index,
            total_passes=total_passes,
            registry=registry,
        )

    # -- entry points ------------------------------------------------------

    def prepare_pages(self, raw_pages: list[str]) -> list[Element]:
        """Tidy and clean raw HTML pages (through the runner's cache)."""
        return self.cache.clean_pages(raw_pages).pages

    def _active_registry(self) -> WrapperRegistry | None:
        """The wrapper registry, unless enrichment disables the fast path.

        Enrichment passes deliberately *re-induce* with the dictionaries
        the previous pass grew; a registry hit would defeat that loop, so
        enrichment runs always take the classic pipeline.
        """
        if self.params.enrich_dictionaries:
            return None
        return self.wrapper_registry

    def _run_registry(
        self,
        source: str,
        registry: "WrapperRegistry | StagedRegistryView",
        raw_pages: Iterable[str] = (),
        pages: Iterable[Element] = (),
    ) -> SourceResult:
        """Registry-first run with one demote-and-reinduce retry.

        If the post-extraction check demoted a stale registry wrapper,
        the source re-runs once: the second attempt misses (the entry is
        gone), induces a fresh wrapper and stores it.

        A discard raised during induction never reaches the store stage
        (the pipeline stops at the discarding stage), so the write-back
        happens here: the discard is stored as a registry tombstone under
        the fingerprint from match time, and warm runs replay it instead
        of re-paying the doomed induction.
        """
        from repro.core.stages.registry import (
            DEMOTED_KEY,
            FINGERPRINT_KEY,
            ORIGIN_KEY,
        )

        result = SourceResult(source=source)
        for __ in range(2):
            ctx = self._context(
                source, raw_pages=raw_pages, pages=pages, registry=registry
            )
            result = self._build_pipeline(REGISTRY_STAGE_ORDER).run(ctx)
            if (
                result.discarded
                and ctx.artifacts.get(ORIGIN_KEY) == "induced"
                and FINGERPRINT_KEY in ctx.artifacts
            ):
                registry.put_discard(
                    ctx.sod,
                    ctx.artifacts[FINGERPRINT_KEY],
                    source=source,
                    stage=result.discard_stage,
                    reason=result.discard_reason,
                )
            if not ctx.artifacts.get(DEMOTED_KEY):
                break
        return result

    def run_source(self, source: str, raw_pages: list[str]) -> SourceResult:
        """Run the full pipeline on raw HTML pages of one source.

        With a ``wrapper_registry`` the run is registry-first: a stored
        wrapper for this (SOD, template) skips segmentation, annotation
        and wrapper generation entirely, and a freshly induced wrapper is
        stored for the next run.

        With ``enrich_dictionaries`` and ``enrichment_passes > 1`` the
        whole pipeline re-runs on fresh copies of the pages: every pass
        annotates with the dictionaries the previous pass grew, so
        coverage — and with it the wrapper — improves (the paper's
        "use current annotations to discover new annotations" loop).
        Tidying/cleaning is only paid once: later passes draw deep copies
        from the preprocessing cache.
        """
        registry = self._active_registry()
        if registry is not None:
            return self._run_registry(source, registry, raw_pages=raw_pages)
        passes = max(1, self.params.enrichment_passes)
        if not self.params.enrich_dictionaries:
            passes = 1
        result = SourceResult(source=source)
        for pass_index in range(passes):
            ctx = self._context(
                source,
                raw_pages=raw_pages,
                pass_index=pass_index,
                total_passes=passes,
            )
            result = self._build_pipeline().run(ctx)
            if result.discarded:
                break
        return result

    def run_source_prepared(
        self, source: str, pages: list[Element]
    ) -> SourceResult:
        """Run on already tidied/cleaned pages (shared-harness entry)."""
        registry = self._active_registry()
        if registry is not None:
            return self._run_registry(source, registry, pages=pages)
        ctx = self._context(source, pages=pages)
        return self._build_pipeline().run(ctx)

    def extract_with(self, wrapper: Wrapper, raw_pages: list[str]) -> SourceResult:
        """Apply an existing (possibly persisted) wrapper to fresh pages.

        Wrapping is the expensive step; this is the wrap-once /
        extract-often path: load a wrapper with
        :func:`repro.wrapper.serialize.wrapper_from_dict` and run it over a
        re-crawl without re-annotating or re-inferring anything.  Only the
        pre-processing and extraction stages run, so ``timings.wrapping``
        stays zero.
        """
        ctx = self._context(wrapper.source, raw_pages=raw_pages)
        ctx.wrapper = wrapper
        ctx.result.wrapper = wrapper
        ctx.result.support_used = wrapper.support
        ctx.result.conflicts = wrapper.conflicts
        pipeline = self._build_pipeline(stage_names=("preprocess", "extraction"))
        return pipeline.run(ctx)

    def run_sources(
        self,
        sources: dict[str, list[str]],
        deduplicate_across: bool = False,
        dedup_keys: tuple[str, ...] = (),
    ) -> "MultiSourceResult":
        """Run the pipeline over several sources of the same domain.

        With ``params.max_workers > 1`` independent sources wrap
        concurrently on a thread pool; results keep the input order, so
        the outcome is identical to a serial run.  Enrichment runs force
        serial execution: gazetteer growth feeds later sources, which is
        inherently order-dependent.

        Unexpected per-source failures (anything except a quality-gate
        discard) follow ``params.failure_policy``: under ``isolate`` the
        failure is recorded on ``MultiSourceResult.failures`` and every
        surviving source completes exactly as it would have in a
        fault-free run; under ``fail_fast`` pending sources are cancelled
        and :class:`~repro.errors.MultiSourceError` is raised, carrying
        the results of the sources that completed before the failing one
        (in input order) as ``partial``.

        With ``deduplicate_across=True``, the pooled objects pass through
        the de-duplication stage of the paper's Figure 1 architecture —
        the Web's redundancy means the same real-world item often appears
        on several sources.  ``dedup_keys`` names the identifying
        attributes (defaults to exact agreement on all shared attributes).
        """
        from repro.core.dedup import DedupConfig, deduplicate

        items = list(sources.items())
        if self.params.shard is not None:
            # Deterministic hash-mod membership: the same source lands in
            # the same shard in every process, under every PYTHONHASHSEED.
            items = [
                (source, raw_pages)
                for source, raw_pages in items
                if self.params.shard.contains(source)
            ]
        # Pin the metrics merge order to the input order before fanning
        # out, so parallel runs snapshot identically to serial ones.
        for observer in self.observers:
            if isinstance(observer, MetricsObserver):
                observer.note_source_order(source for source, __ in items)
        isolate = self.params.failure_policy == ISOLATE
        workers = max(1, int(self.params.max_workers))
        if self.params.enrich_dictionaries:
            workers = 1
        if (
            self.params.backend == "process"
            and workers > 1
            and len(items) > 1
        ):
            outcomes = self._run_items_process(items, workers, isolate)
        else:
            # Per-source staged registry views: every source sees the
            # registry as it was at batch start, and buffered writes apply
            # in input order afterwards — hit/miss never depends on thread
            # scheduling, so parallel batches snapshot byte-identically to
            # serial ones.
            registry = self._active_registry()
            views: list[StagedRegistryView | None] = [
                StagedRegistryView(registry) if registry is not None else None
                for __ in items
            ]
            if workers > 1 and len(items) > 1:
                outcomes = self._run_items_parallel(
                    items, views, workers, isolate
                )
            else:
                outcomes = self._run_items_serial(items, views, isolate)
        results: dict[str, SourceResult] = {}
        failures: dict[str, SourceFailure] = {}
        pooled = []
        for (source, __), outcome in zip(items, outcomes):
            if isinstance(outcome, SourceFailure):
                failures[source] = outcome
                continue
            results[source] = outcome
            pooled.extend(outcome.objects)
        merged = 0
        if deduplicate_across:
            outcome = deduplicate(
                pooled, DedupConfig(key_attributes=dedup_keys)
            )
            pooled = outcome.objects
            merged = outcome.merged
        return MultiSourceResult(
            results=results,
            objects=pooled,
            duplicates_merged=merged,
            failures=failures,
        )

    def _run_item(
        self,
        source: str,
        raw_pages: list[str],
        view: StagedRegistryView | None,
    ) -> SourceResult:
        """One batch item: through its staged registry view when present."""
        if view is not None:
            return self._run_registry(source, view, raw_pages=raw_pages)
        return self.run_source(source, raw_pages)

    @staticmethod
    def _apply_registry_views(
        views: list["StagedRegistryView | None"], upto: int
    ) -> None:
        """Apply the first ``upto`` sources' buffered registry writes.

        Input order, conflicts resolved canonically — the batch's
        registry bytes are a pure function of the applied-source set.
        On a fail-fast abort only
        the sources drained before the failure apply, matching what a
        serial run would have written.
        """
        for view in views[:upto]:
            if view is not None:
                view.apply_to(view.base)

    def _run_items_serial(
        self,
        items: list[tuple[str, list[str]]],
        views: list["StagedRegistryView | None"],
        isolate: bool,
    ) -> list["SourceResult | SourceFailure"]:
        """One source after another, applying the failure policy."""
        outcomes: list[SourceResult | SourceFailure] = []
        for (source, raw_pages), view in zip(items, views):
            try:
                outcomes.append(self._run_item(source, raw_pages, view))
            except Exception as exc:
                failure = SourceFailure.from_exception(source, exc)
                if not isolate:
                    self._apply_registry_views(views, len(outcomes))
                    raise self._abort_error(failure, outcomes, items) from exc
                outcomes.append(failure)
        self._apply_registry_views(views, len(outcomes))
        return outcomes

    def _run_items_parallel(
        self,
        items: list[tuple[str, list[str]]],
        views: list["StagedRegistryView | None"],
        workers: int,
        isolate: bool,
    ) -> list["SourceResult | SourceFailure"]:
        """Sources on a thread pool, applying the failure policy.

        Futures are drained in input order, so the policy's view of
        "first failure" is deterministic regardless of thread scheduling.
        On fail-fast abort, not-yet-started futures are cancelled and the
        pool is joined (no orphaned work survives the raise); sources
        after the failing one that happened to finish are discarded so
        the partial result matches the serial run byte for byte.
        """
        outcomes: list[SourceResult | SourceFailure] = []
        abort: tuple[SourceFailure, BaseException] | None = None
        with ThreadPoolExecutor(
            max_workers=min(workers, len(items))
        ) as pool:
            futures = [
                pool.submit(self._run_item, source, raw_pages, view)
                for (source, raw_pages), view in zip(items, views)
            ]
            for (source, __), future in zip(items, futures):
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    failure = SourceFailure.from_exception(source, exc)
                    if isolate:
                        outcomes.append(failure)
                        continue
                    for pending in futures:
                        pending.cancel()
                    abort = (failure, exc)
                    break
            # Leaving the ``with`` block joins the pool: running futures
            # finish, cancelled ones never start.
        self._apply_registry_views(views, len(outcomes))
        if abort is not None:
            failure, cause = abort
            raise self._abort_error(failure, outcomes, items) from cause
        return outcomes

    def _check_process_backend_support(self) -> None:
        """Reject runner features that cannot cross a process boundary.

        Fault injectors and custom sleep callables hold process-local
        state (locks, recorded calls) the workers could not honor;
        non-metrics observers would silently see nothing.  Failing loudly
        beats a run that quietly measures less than it claims.

        Runs at construction time (``__init__``/:meth:`add_observer`
        when ``params.backend == "process"``), so a misconfigured
        ``repro extract --backend process`` fails with a typed
        :class:`ProcessBackendConfigError` naming the offending field
        before any worker spawns.  The dispatch path re-checks as a
        backstop for callers that mutate runner attributes directly.
        """
        if self.fault_injector is not None:
            raise ProcessBackendConfigError(
                "fault_injector",
                "the process backend does not support a fault injector; "
                "use backend='thread' for fault-injection runs",
            )
        if self._sleep is not None:
            raise ProcessBackendConfigError(
                "sleep",
                "the process backend does not support a custom sleep "
                "callable; use backend='thread'",
            )
        unsupported = [
            type(observer).__name__
            for observer in self.observers
            if not isinstance(observer, MetricsObserver)
        ]
        if unsupported:
            raise ProcessBackendConfigError(
                "observers",
                "the process backend supports only MetricsObserver "
                f"observers; got {', '.join(sorted(unsupported))}",
            )

    def _run_items_process(
        self,
        items: list[tuple[str, list[str]]],
        workers: int,
        isolate: bool,
    ) -> list["SourceResult | SourceFailure"]:
        """Sources fanned out to worker processes, one hash-mod shard each.

        Every worker rebuilds the runner from a picklable spec and runs
        its shard serially with its own ``PreprocessCache``,
        ``MetricsRegistry`` per source and ``StagedRegistryView`` per
        source; the parent merges in global input order — per-source
        metrics through :meth:`MetricsObserver.adopt_source`, registry
        writes with conflicts resolved canonically, cache and registry
        counters summed — so the batch output is byte-identical to the
        serial run.

        Failure policy matches the serial semantics: under ``fail_fast``
        every worker stops at its shard's first failure, and the parent
        keeps exactly the sources preceding the *globally* first failure
        in input order (those are guaranteed complete in every shard).
        """
        self._check_process_backend_support()
        registry = self._active_registry()
        shard_items: list[list[tuple[str, tuple[str, ...]]]] = [
            [] for __ in range(workers)
        ]
        for source, raw_pages in items:
            shard_items[stable_shard(source, workers)].append(
                (source, tuple(raw_pages))
            )
        child_params = self.params.with_overrides(
            backend="thread", max_workers=1, shard=None
        )
        tasks = [
            _ProcessShardTask(
                sod=self.sod,
                registry=self.registry,
                ontology=self._ontology,
                corpus=self._corpus,
                gazetteer_classes=self._gazetteer_classes,
                extra_gazetteer_entries=self._extra_gazetteer_entries,
                params=child_params,
                retry_policy=self.retry_policy,
                registry_root=str(registry.root) if registry else None,
                items=tuple(chunk),
                isolate=isolate,
            )
            for chunk in shard_items
            if chunk
        ]
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            shard_results = list(pool.map(_run_process_shard, tasks))
        outcome_by_source: dict[str, SourceResult | SourceFailure] = {}
        writes_by_source: dict[str, StagedWrites] = {}
        metrics_observers = [
            observer
            for observer in self.observers
            if isinstance(observer, MetricsObserver)
        ]
        for task, result in zip(tasks, shard_results):
            for (source, __), outcome in zip(task.items, result.outcomes):
                outcome_by_source[source] = outcome
            # Keyed per-source stores, not dict.update: each source lives
            # in exactly one shard, so the merged mapping cannot depend
            # on shard layout (reprolint P604).
            for source, staged in result.writes.items():
                writes_by_source[source] = staged
            for observer in metrics_observers:
                for source, shipped in result.registries.items():
                    observer.adopt_source(source, shipped)
                observer.adopt_cache_stats(result.cache_stats)
            if registry is not None and result.registry_stats is not None:
                registry.adopt_stats(result.registry_stats)
        # The globally-first failure, in input order, decides the cut.
        cut = len(items)
        first_failure: SourceFailure | None = None
        if not isolate:
            for position, (source, __) in enumerate(items):
                outcome = outcome_by_source.get(source)
                if isinstance(outcome, SourceFailure):
                    cut = position
                    first_failure = outcome
                    break
        outcomes: list[SourceResult | SourceFailure] = []
        for source, __ in items[:cut]:
            outcomes.append(outcome_by_source[source])
        if registry is not None:
            kept = items if isolate else items[:cut]
            for source, __ in kept:
                staged = writes_by_source.get(source)
                if staged is not None:
                    staged.apply_to(registry)
        if first_failure is not None:
            raise self._abort_error(first_failure, outcomes, items)
        return outcomes

    def _abort_error(
        self,
        failure: SourceFailure,
        outcomes: list["SourceResult | SourceFailure"],
        items: list[tuple[str, list[str]]],
    ) -> MultiSourceError:
        """The fail-fast error, with completed sources attached as partial."""
        results: dict[str, SourceResult] = {}
        pooled = []
        for (source, __), outcome in zip(items, outcomes):
            if isinstance(outcome, SourceResult):
                results[source] = outcome
                pooled.extend(outcome.objects)
        partial = MultiSourceResult(
            results=results,
            objects=pooled,
            failures={failure.source: failure},
        )
        stage = failure.stage or "run"
        return MultiSourceError(
            f"source {failure.source!r} failed at {stage}: {failure.error} "
            f"({len(results)} of {len(items)} sources completed before "
            "the abort)",
            partial=partial,
            failure=failure,
        )


class ObjectRunnerSystem:
    """Adapter exposing ObjectRunner behind the comparison interface.

    Consumes pipeline stage events (through a
    :class:`~repro.core.pipeline.StageEventCollector`) for its timing
    figures instead of reaching into result internals; extra observers —
    say, a benchmark-wide collector — can be injected at construction.
    """

    def __init__(
        self,
        ontology: Ontology | None = None,
        corpus: Corpus | None = None,
        gazetteer_classes: dict[str, str] | None = None,
        params: RunParams | None = None,
        extra_gazetteer_entries: dict[str, dict[str, float]] | None = None,
        observers: Iterable[PipelineObserver] = (),
        wrapper_registry: WrapperRegistry | None = None,
    ):
        self._ontology = ontology
        self._corpus = corpus
        self._gazetteer_classes = gazetteer_classes
        self._params = params
        self._extra_gazetteer_entries = extra_gazetteer_entries
        self._observers = list(observers)
        self._wrapper_registry = wrapper_registry

    @property
    def name(self) -> str:
        return "objectrunner"

    def run(
        self, source: str, pages: list[Element], sod: SodType
    ) -> SystemOutput:
        """Run the full pipeline on prepared pages of one source."""
        collector = StageEventCollector()
        runner = ObjectRunner(
            sod=sod,
            ontology=self._ontology,
            corpus=self._corpus,
            gazetteer_classes=self._gazetteer_classes,
            params=self._params,
            extra_gazetteer_entries=self._extra_gazetteer_entries,
            observers=(collector, *self._observers),
            wrapper_registry=self._wrapper_registry,
        )
        result = runner.run_source_prepared(source, pages)
        final_event = collector.completed[-1] if collector.completed else None
        if final_event is not None and final_event.discarded:
            return SystemOutput(
                system=self.name,
                source=source,
                failed=True,
                failure_reason=final_event.discard_reason,
            )
        return SystemOutput(
            system=self.name,
            source=source,
            objects=result.objects,
            wrap_seconds=collector.stage_seconds("wrapping"),
        )
