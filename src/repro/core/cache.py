"""Content-hash-keyed memoization of tidied/cleaned page trees.

Tidying (tag-soup repair) and cleaning are deterministic functions of the
raw HTML, yet they dominate pre-processing cost and the monolithic runner
re-ran them on every enrichment pass and every repeated benchmark run.
:class:`PreprocessCache` computes each page's tree once, keyed by a hash
of the raw bytes, and hands out a fresh deep copy on every request — the
annotation stage mutates trees in place, so cached originals must never
escape.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.htmlkit.clean import clean_tree
from repro.htmlkit.dom import Element, clone
from repro.htmlkit.tidy import tidy


@dataclass
class CachedPages:
    """Outcome of one :meth:`PreprocessCache.clean_pages` call."""

    pages: list[Element]
    hits: int = 0
    misses: int = 0


class PreprocessCache:
    """LRU cache of cleaned page trees, keyed by raw-content hash.

    Thread-safe: a single cache may serve a parallel multi-source run.
    The expensive tidy/clean computation happens outside the lock, so
    concurrent misses on *different* pages do not serialize.  Two threads
    racing on the *same* page may both compute it; the loser detects the
    winner's entry under the second lock, discards its own tree (keeping
    the winner's LRU recency intact) and counts the redundant computation
    as a ``race`` instead of a second ``miss`` — so ``misses`` equals the
    number of computations that actually populated the cache, and
    ``hits + misses`` accounts for every request served without
    redundant work.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max(1, max_entries)
        self._entries: OrderedDict[str, Element] = OrderedDict()
        self._lock = threading.Lock()
        #: Lifetime hit/miss totals, for diagnostics.
        self.hits = 0
        self.misses = 0
        #: Same-key compute races lost: the tree was computed redundantly
        #: because another thread inserted the key first.
        self.races = 0

    @staticmethod
    def key_for(raw: str) -> str:
        """Content-hash key of one raw HTML page."""
        return hashlib.sha256(raw.encode("utf-8", "surrogatepass")).hexdigest()

    def clean_page(self, raw: str) -> Element:
        """The tidied+cleaned tree for ``raw``, always a fresh mutable copy."""
        tree, __ = self._clean_one(raw)
        return tree

    def clean_pages(self, raw_pages: list[str]) -> CachedPages:
        """Clean many pages at once, reporting per-call hit/miss counts."""
        outcome = CachedPages(pages=[])
        for raw in raw_pages:
            tree, hit = self._clean_one(raw)
            outcome.pages.append(tree)
            if hit:
                outcome.hits += 1
            else:
                outcome.misses += 1
        return outcome

    def _clean_one(self, raw: str) -> tuple[Element, bool]:
        key = self.key_for(raw)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            copy = clone(cached)
            assert isinstance(copy, Element)
            return copy, True
        tree = clean_tree(tidy(raw))
        with self._lock:
            winner = self._entries.get(key)
            if winner is not None:
                # Another thread computed and inserted this key while we
                # were computing: keep the winner's tree and LRU recency.
                self.races += 1
                tree = winner
            else:
                self.misses += 1
                self._entries[key] = tree
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        copy = clone(tree)
        assert isinstance(copy, Element)
        return copy, False

    def clear(self) -> None:
        """Drop every cached tree (hit/miss totals are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of trees currently cached."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Lifetime ``hits``/``misses``/``races``/``entries`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "races": self.races,
                "entries": len(self._entries),
            }
