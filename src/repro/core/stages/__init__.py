"""Concrete pipeline stages, one per box of the paper's Figure 1.

Importing this package registers every standard stage with the global
registry in :mod:`repro.core.pipeline`, so
:func:`repro.core.pipeline.build_stages` can assemble pipelines by name:

========================  =============================  ==================
Paper section             Stage class                    Registry name
========================  =============================  ==================
III-B pre-processing      :class:`PreprocessStage`       ``preprocess``
III-B page segmentation   :class:`SegmentationStage`     ``segmentation``
III-C / Algorithm 1       :class:`AnnotationStage`       ``annotation``
IV   / Algorithm 2        :class:`WrapperGenerationStage` ``wrapping``
IV-B extraction           :class:`ExtractionStage`       ``extraction``
IV-A feedback (Eq. 4)     :class:`EnrichmentStage`       ``enrichment``
========================  =============================  ==================

The registry-first path (``REGISTRY_STAGE_ORDER``) adds three stages
around the classics: ``registry_match`` (wrapper lookup by template
fingerprint, a hit skips induction), ``registry_check`` (post-extract
demotion of stale wrappers) and ``registry_store`` (persist freshly
induced wrappers).
"""

from repro.core.stages.annotate import AnnotationStage
from repro.core.stages.enrich import EnrichmentStage
from repro.core.stages.extract import ExtractionStage
from repro.core.stages.preprocess import PreprocessStage, SegmentationStage
from repro.core.stages.registry import (
    RegistryCheckStage,
    RegistryMatchStage,
    RegistryStoreStage,
)
from repro.core.stages.wrap import WrapperGenerationStage, prefer_wrapper

__all__ = [
    "PreprocessStage",
    "SegmentationStage",
    "AnnotationStage",
    "WrapperGenerationStage",
    "ExtractionStage",
    "EnrichmentStage",
    "RegistryMatchStage",
    "RegistryCheckStage",
    "RegistryStoreStage",
    "prefer_wrapper",
]
