"""Extraction: apply the learned wrapper to every page of the source.

Each page is segmented with the learned record identity, records align
against the template, and slot values assemble into instance trees shaped
like the SOD.  The stage reads ``ctx.wrapper``, which is set either by the
wrapper-generation stage upstream or directly by the wrap-once /
extract-often entry point (:meth:`repro.core.objectrunner.ObjectRunner.
extract_with`).
"""

from __future__ import annotations

from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.wrapper.extraction import extract_objects


@register_stage
class ExtractionStage(Stage):
    """Extract object instances from all pages with the wrapper."""

    name = "extraction"
    timing_field = "extraction"
    reads = ("wrapper", "pages", "source")
    writes = ("result",)

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.result.objects`` from ``ctx.pages``."""
        assert ctx.wrapper is not None, "extraction requires a wrapper"
        ctx.result.objects = extract_objects(
            ctx.wrapper, ctx.pages, source=ctx.source
        )
        ctx.count("objects_extracted", len(ctx.result.objects))
