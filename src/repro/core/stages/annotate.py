"""Annotation and wrapper-sample selection (paper Algorithm 1).

Recognizers run over the regions' text nodes in decreasing selectivity
order, and the top-k most annotated pages become the wrapper-training
sample.  The per-block annotation-rate gate (threshold alpha) may discard
the source outright — signalled by the underlying
:class:`~repro.errors.SourceDiscardedError` propagating to the pipeline.
With ``params.sod_based_sampling`` off, a deterministic random page
subset is annotated instead (the random baseline of Table II).
"""

from __future__ import annotations

from repro.annotation.annotator import AnnotatedPage, PageAnnotator
from repro.annotation.sampling import SampleSelectionConfig, select_sample
from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.htmlkit.dom import Element
from repro.utils.rng import DeterministicRng


@register_stage
class AnnotationStage(Stage):
    """Annotate pages and select the wrapper-training sample."""

    name = "annotation"
    timing_field = "annotation"
    reads = ("params", "ontology", "source", "regions", "recognizers",
             "block_trees", "wrapper")
    writes = ("sample_regions", "result")

    def enabled(self, ctx: PipelineContext) -> bool:
        """Skip when a wrapper is already in play (registry hit/preset)."""
        return ctx.wrapper is None

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.sample_regions`` and the result's sample indexes."""
        if ctx.params.sod_based_sampling:
            sample, indexes = self._sod_based_sample(ctx)
        else:
            sample, indexes = self._random_sample(ctx)
        ctx.sample_regions = sample
        ctx.result.sample_page_indexes = indexes
        ctx.count("sample_pages_selected", len(sample))

    def _sod_based_sample(
        self, ctx: PipelineContext
    ) -> tuple[list[Element], list[int]]:
        """Algorithm 1: greedy annotation with candidate narrowing."""
        params = ctx.params
        term_frequency = None
        if ctx.ontology is not None:
            term_frequency = ctx.ontology.term_frequency
        run = select_sample(
            ctx.source,
            ctx.regions,
            list(ctx.recognizers),
            config=SampleSelectionConfig(
                sample_size=params.sample_size,
                alpha=params.alpha,
                enforce_alpha=params.enforce_alpha,
            ),
            term_frequency=term_frequency,
            block_trees=ctx.block_trees,
        )
        ctx.count("pages_annotated", len(run.all_pages))
        return (
            [page.root for page in run.sample],
            [page.index for page in run.sample],
        )

    def _random_sample(
        self, ctx: PipelineContext
    ) -> tuple[list[Element], list[int]]:
        """Random-selection baseline: annotate a random page subset."""
        params = ctx.params
        rng = DeterministicRng(params.sampling_seed).fork(
            "random-sample", ctx.source
        )
        indexes = sorted(
            rng.sample(list(range(len(ctx.regions))), params.sample_size)
        )
        annotator = PageAnnotator()
        sample: list[Element] = []
        for index in indexes:
            page = AnnotatedPage(root=ctx.regions[index], index=index)
            for recognizer in ctx.recognizers:
                annotator.annotate(page, recognizer)
            sample.append(page.root)
        ctx.count("pages_annotated", len(indexes))
        return sample, indexes
