"""Wrapper generation with automatic parameter variation (Section IV).

Every support value in ``params.support_values`` is tried; the matched
wrapper with the fewest conflicting annotations wins (the paper's
self-validation loop).  Ties on the full preference tuple break toward
the *smaller* support — more records agreed on the template — rather than
silently keeping whichever was attempted first, and every attempted
support is recorded on the result for diagnostics.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.errors import SourceDiscardedError
from repro.wrapper.generate import (
    Wrapper,
    WrapperConfig,
    annotation_types_on,
    generate_wrapper,
)
from repro.wrapper.tokens import TokenTable, tokenize_element


def wrapper_preference(wrapper: Wrapper) -> tuple[int, int, int]:
    """Ordering key: matched first, then fewer conflicts, then more slots."""
    return (
        1 if wrapper.match.matched else 0,
        -wrapper.conflicts,
        len(wrapper.template.field_slots()),
    )


def prefer_wrapper(best: Wrapper | None, candidate: Wrapper) -> Wrapper:
    """The better of ``best`` and ``candidate`` under the preference key.

    Strictly greater preference wins; on an exactly equal preference tuple
    the smaller support wins deterministically (independent of the order
    supports were attempted in).
    """
    if best is None:
        return candidate
    best_key = wrapper_preference(best)
    candidate_key = wrapper_preference(candidate)
    if candidate_key > best_key:
        return candidate
    if candidate_key == best_key and candidate.support < best.support:
        return candidate
    return best


@register_stage
class WrapperGenerationStage(Stage):
    """Generate the wrapper, varying the support parameter."""

    name = "wrapping"
    timing_field = "wrapping"
    reads = ("params", "source", "sample_regions", "sod", "wrapper")
    writes = ("wrapper", "result", "token_table")

    def enabled(self, ctx: PipelineContext) -> bool:
        """Skip when a wrapper is already in play (registry hit/preset)."""
        return ctx.wrapper is None

    def run(self, ctx: PipelineContext) -> None:
        """Set ``ctx.wrapper`` to the preferred wrapper across supports."""
        params = ctx.params
        # The sample is fixed across the support loop: tokenize it once
        # into one shared role table and scan its annotation types once,
        # instead of redoing both per support value.
        table = TokenTable()
        token_pages = [
            tokenize_element(region, page_index=index, table=table)
            for index, region in enumerate(ctx.sample_regions)
        ]
        ctx.token_table = table
        annotation_types = annotation_types_on(ctx.sample_regions)
        best: Wrapper | None = None
        last_error: SourceDiscardedError | None = None
        attempted: list[int] = []
        for support in params.support_values:
            attempted.append(support)
            config = WrapperConfig(
                support=support,
                use_annotations=True,
                generalization_threshold=params.generalization_threshold,
                chaos_ratio=params.chaos_ratio,
            )
            try:
                wrapper = generate_wrapper(
                    ctx.source,
                    ctx.sample_regions,
                    ctx.sod,
                    config,
                    token_pages=token_pages,
                    annotation_types=annotation_types,
                )
            except SourceDiscardedError as exc:
                last_error = exc
                continue
            ctx.count("wrappers_generated")
            best = prefer_wrapper(best, wrapper)
            if best.match.matched and best.conflicts == 0:
                break
        ctx.result.supports_attempted = attempted
        ctx.count("supports_tried", len(attempted))
        if best is None:
            assert last_error is not None
            raise last_error
        ctx.wrapper = best
        ctx.result.wrapper = best
        ctx.result.support_used = best.support
        ctx.result.conflicts = best.conflicts
        ctx.count("template_slots_built", len(best.template.field_slots()))
