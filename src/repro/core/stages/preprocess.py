"""Pre-processing stages: tidy/clean and VIPS-style segmentation.

Tidying repairs tag soup into a well-formed tree and cleaning drops
scripts, styles, hidden and empty elements (paper Section III-B).  Both
are deterministic, so the stage memoizes through the context's
:class:`~repro.core.cache.PreprocessCache` — enrichment passes beyond the
first and repeated runs over the same pages cost one deep copy instead of
a full re-parse.

Segmentation estimates a render box for every element and selects, by
majority across pages, the largest and most central block — the region
holding the records.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.htmlkit.clean import clean_tree
from repro.htmlkit.dom import Element
from repro.htmlkit.tidy import tidy
from repro.vision.segmentation import (
    find_block_by_signature,
    main_content_block,
    segment_page,
)


@register_stage
class PreprocessStage(Stage):
    """Tidy and clean every raw page (content-hash cached)."""

    name = "preprocess"
    timing_field = "preprocess"
    reads = ("raw_pages", "cache", "pages")
    writes = ("pages",)

    def enabled(self, ctx: PipelineContext) -> bool:
        """Skip when the caller already supplied prepared page trees."""
        return not ctx.pages

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.pages`` with cleaned trees for ``ctx.raw_pages``."""
        if ctx.cache is None:
            ctx.pages = [clean_tree(tidy(raw)) for raw in ctx.raw_pages]
        else:
            outcome = ctx.cache.clean_pages(ctx.raw_pages)
            ctx.pages = outcome.pages
            ctx.count("preprocess_cache_hits", outcome.hits)
            ctx.count("preprocess_cache_misses", outcome.misses)
        ctx.count("pages_prepared", len(ctx.pages))


@register_stage
class SegmentationStage(Stage):
    """Select the main content block shared by the source's pages.

    With ``params.use_segmentation`` off, the whole pages become the
    regions (the ablation configuration).
    """

    name = "segmentation"
    timing_field = "preprocess"
    reads = ("pages", "params", "wrapper")
    writes = ("regions", "block_trees")

    def enabled(self, ctx: PipelineContext) -> bool:
        """Skip when a wrapper is already in play (registry hit/preset)."""
        return ctx.wrapper is None

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.regions`` (and ``ctx.block_trees`` when segmenting)."""
        ctx.regions = list(ctx.pages)
        if not ctx.params.use_segmentation:
            return
        ctx.block_trees = [segment_page(page) for page in ctx.pages]
        ctx.count("pages_segmented", len(ctx.block_trees))
        signature = main_content_block(ctx.block_trees)
        if signature is None:
            return
        resolved: list[Element] = []
        for page, tree in zip(ctx.pages, ctx.block_trees):
            block = find_block_by_signature(tree, signature)
            resolved.append(block.element if block else page)
        ctx.regions = resolved
        ctx.count("content_blocks_resolved", len(resolved))
