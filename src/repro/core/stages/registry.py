"""Registry stages: match -> (induce on miss) -> extract -> check/store.

The registry-first path (``REGISTRY_STAGE_ORDER``) splits the monolithic
induce-then-extract flow around the wrapper registry:

- :class:`RegistryMatchStage` runs right after pre-processing.  It
  fingerprints the tidied pages and looks the (SOD, template) signature
  up in the registry; a hit installs the stored wrapper on the context,
  which disables segmentation, annotation and wrapper generation for the
  rest of the run — induction is skipped entirely.
- :class:`RegistryCheckStage` runs after extraction, only for registry
  wrappers.  If the wrapper extracted objects from fewer than a fraction
  ``alpha`` of the pages (the same threshold Algorithm 1 applies to
  annotation rates), the template has drifted: the entry is demoted so
  the next request re-induces.
- :class:`RegistryStoreStage` persists a freshly induced wrapper under
  the fingerprint computed at match time, completing the wrap-once /
  extract-often loop.

All three stages are inert (``enabled`` returns False) when the context
carries no registry, so the classic pipeline is byte-identical to the
pre-registry code path.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.errors import SourceDiscardedError
from repro.htmlkit.fingerprint import pages_fingerprint
from repro.registry.store import StoredDiscard, signature_for

#: ``ctx.artifacts`` key holding the fingerprint computed at match time.
FINGERPRINT_KEY = "registry_fingerprint"

#: ``ctx.artifacts`` key recording where the wrapper came from:
#: ``"registry"`` (hit) or ``"induced"`` (miss -> wrapper generation).
ORIGIN_KEY = "wrapper_origin"

#: ``ctx.artifacts`` key set by the check stage when it demoted the
#: wrapper; callers re-run the source to induce a fresh one.
DEMOTED_KEY = "registry_demoted"


@register_stage
class RegistryMatchStage(Stage):
    """Resolve the source's template against the wrapper registry."""

    name = "registry_match"
    timing_field = "registry"
    reads = ("registry", "pages", "sod", "source", "wrapper")
    writes = ("wrapper", "result")

    def enabled(self, ctx: PipelineContext) -> bool:
        """Run only on the registry path, and not with a preset wrapper."""
        return ctx.registry is not None and ctx.wrapper is None

    def run(self, ctx: PipelineContext) -> None:
        """Fingerprint the pages and install the stored wrapper on a hit.

        A stored discard tombstone is also a hit: the recorded discard is
        replayed verbatim, so a warm run reports the same stage and
        reason as the cold run that first discarded the source — without
        re-paying the doomed induction.
        """
        fingerprint = pages_fingerprint(ctx.pages)
        ctx.artifacts[FINGERPRINT_KEY] = fingerprint
        stored = ctx.registry.lookup(ctx.sod, fingerprint)
        if stored is None:
            ctx.artifacts[ORIGIN_KEY] = "induced"
            ctx.count("registry_misses")
            return
        ctx.artifacts[ORIGIN_KEY] = "registry"
        ctx.count("registry_hits")
        if isinstance(stored, StoredDiscard):
            raise SourceDiscardedError(
                ctx.source, stage=stored.stage, reason=stored.reason
            )
        ctx.wrapper = stored
        ctx.result.wrapper = stored
        ctx.result.support_used = stored.support
        ctx.result.conflicts = stored.conflicts


@register_stage
class RegistryCheckStage(Stage):
    """Demote a registry wrapper that no longer extracts at threshold.

    The paper's Algorithm 1 discards sources whose annotation rate falls
    below ``alpha``; the same threshold applied post-extraction catches
    *stale* wrappers — the template changed since induction, so the
    stored wrapper covers too few pages.  Demotion removes the registry
    entry and flags the context so the caller re-induces.
    """

    name = "registry_check"
    timing_field = "registry"
    reads = ("registry", "pages", "params", "result", "sod")
    writes = ()

    def enabled(self, ctx: PipelineContext) -> bool:
        """Run only when the wrapper in play came from the registry."""
        return (
            ctx.registry is not None
            and ctx.artifacts.get(ORIGIN_KEY) == "registry"
        )

    def run(self, ctx: PipelineContext) -> None:
        """Demote the stored wrapper when its extraction rate is < alpha."""
        if not ctx.pages:
            return
        covered = {instance.page_index for instance in ctx.result.objects}
        rate = len(covered) / len(ctx.pages)
        if rate >= ctx.params.alpha:
            return
        signature = signature_for(ctx.sod, ctx.artifacts[FINGERPRINT_KEY])
        ctx.registry.demote(signature)
        ctx.artifacts[DEMOTED_KEY] = True
        ctx.count("registry_demotions")


@register_stage
class RegistryStoreStage(Stage):
    """Persist a freshly induced wrapper in the registry."""

    name = "registry_store"
    timing_field = "registry"
    reads = ("registry", "wrapper", "sod")
    writes = ()

    def enabled(self, ctx: PipelineContext) -> bool:
        """Run only after a miss that went through wrapper generation."""
        return (
            ctx.registry is not None
            and ctx.wrapper is not None
            and ctx.artifacts.get(ORIGIN_KEY) == "induced"
        )

    def run(self, ctx: PipelineContext) -> None:
        """Store the induced wrapper under the fingerprint from match time."""
        ctx.registry.put(
            ctx.sod, ctx.artifacts[FINGERPRINT_KEY], ctx.wrapper
        )
        ctx.count("registry_stores")
