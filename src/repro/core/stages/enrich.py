"""Dictionary enrichment: feed extracted values back into gazetteers.

The paper's Eq. 4 feedback loop — extracted values enter the gazetteers
with a confidence blending wrapper quality (few conflicts) and overlap
with already-known values.  With ``enrichment_passes > 1`` the runner
re-runs the whole pipeline on the grown dictionaries.
"""

from __future__ import annotations

from repro.core.pipeline import PipelineContext, Stage, register_stage
from repro.wrapper.enrichment import enrich_dictionary


@register_stage
class EnrichmentStage(Stage):
    """Grow the gazetteers from this run's extracted values (Eq. 4)."""

    name = "enrichment"
    timing_field = "enrichment"
    reads = ("params", "wrapper", "result")
    writes = ()

    def enabled(self, ctx: PipelineContext) -> bool:
        """Only runs when dictionary enrichment is switched on."""
        return ctx.params.enrich_dictionaries

    def run(self, ctx: PipelineContext) -> None:
        """Merge extracted values into the matching gazetteers."""
        assert ctx.wrapper is not None, "enrichment requires a wrapper"
        gazetteers = ctx.gazetteers()
        values_by_type: dict[str, list[str]] = {}
        for instance in ctx.result.objects:
            for attribute, values in instance.flat().items():
                values_by_type.setdefault(attribute, []).extend(values)
        added = 0
        for type_name, gazetteer in gazetteers.items():
            values = values_by_type.get(type_name, [])
            if not values:
                continue
            before = len(gazetteer)
            enrich_dictionary(gazetteer, values, ctx.wrapper)
            added += len(gazetteer) - before
        ctx.count("dictionary_entries_added", added)
