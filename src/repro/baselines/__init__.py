"""Baseline systems the paper compares against: ExAlg and RoadRunner.

Both are reimplemented from their papers (no prototypes survive in usable
form) behind a common interface, so the comparison harness can run
ObjectRunner, ExAlg and RoadRunner on identical sources.
"""

from repro.baselines.exalg import ExAlgSystem
from repro.baselines.interface import ExtractionSystem, SystemOutput, TableRecord
from repro.baselines.roadrunner import RoadRunnerSystem

__all__ = [
    "ExtractionSystem",
    "SystemOutput",
    "TableRecord",
    "ExAlgSystem",
    "RoadRunnerSystem",
]
